"""Parallel campaign orchestration: runner, scenario grids, outcomes.

The paper's BIST is valuable because the *same* hardware and DSP verify the
transmitter under every waveform the SDR supports — which in practice means
campaigns with dozens to hundreds of profile × fault scenarios.  Scenarios
are embarrassingly parallel (each one builds its own transmitter, converter
and engine), so this module provides:

* :class:`CampaignRunner` — executes scenarios concurrently on a
  ``concurrent.futures`` process pool (serially in-process for
  ``max_workers=1``) with deterministic per-scenario seeding and structured
  error capture, so a single failing scenario no longer aborts the campaign;
* :class:`ScenarioGrid` — expands cartesian products of waveform profiles ×
  transmitter impairments × converter faults into scenario lists;
* :class:`ScenarioOutcome` / :class:`CampaignExecution` — structured results
  (report or error per scenario, wall-clock, worker identity) that aggregate
  into the classic :class:`~repro.bist.campaign.CampaignResult` and the
  statistical :class:`~repro.bist.report.CampaignSummary`.

Determinism contract: the worker rebuilds everything from the picklable
scenario description, so serial and parallel execution produce bit-identical
reports for the same scenarios, configuration and seed policy.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import time
import traceback
import zlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import (
    BudgetExhaustedError,
    CampaignExecutionError,
    ConfigurationError,
    ValidationError,
)
from ..signals.standards import WaveformProfile
from ..transmitter.config import ImpairmentConfig
from .campaign import (
    CampaignResult,
    CampaignScenario,
    ConverterSpec,
    default_converter,
    execute_scenario,
)
from .engine import BistConfig
from .report import BistReport, CampaignSummary

__all__ = [
    "CampaignRunner",
    "CampaignExecution",
    "ExecutionBudget",
    "ScenarioOutcome",
    "ScenarioGrid",
    "derive_scenario_seed",
    "pa_saturation_sweep",
    "iq_imbalance_sweep",
    "dc_offset_sweep",
    "skew_sweep",
    "dcde_error_sweep",
    "channel_mismatch_sweep",
]

#: Seed policies understood by :class:`CampaignRunner`.
_SEED_POLICIES = ("shared", "per-scenario")


def derive_scenario_seed(base_seed: int | None, index: int, label: str) -> int | None:
    """Deterministic, decorrelated seed for scenario ``index`` / ``label``.

    Stable across processes and Python invocations (it avoids the salted
    built-in ``hash``), so parallel workers and the serial path derive the
    same value.  ``None`` base seeds stay ``None`` (fully random scenarios).
    """
    if base_seed is None:
        return None
    digest = zlib.crc32(f"{index}:{label}".encode("utf-8"))
    return (int(base_seed) * 0x9E3779B1 + digest) % (2**32)


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of executing one scenario: a report, or a captured error.

    Attributes
    ----------
    index:
        Position of the scenario in the submitted sequence (outcomes are
        always returned in submission order regardless of completion order).
    label:
        The scenario's resolved label.
    report:
        The BIST report, or ``None`` when the scenario raised.
    error:
        ``"ExceptionType: message"`` when the scenario raised, else ``None``.
    traceback_text:
        Full formatted traceback of the failure (``""`` on success).
    duration_seconds:
        Wall-clock execution time of this scenario.
    worker:
        Identifier of the process that executed the scenario (``"store"``
        for cache hits, ``"dedup"`` for fingerprint-duplicate fan-outs,
        ``"compiled-pid-..."`` for compiled group execution).
    cached:
        Whether the outcome was served from a campaign store instead of
        being executed.
    deduplicated:
        Whether the outcome was fanned out from another scenario in the
        same run that shares its fingerprint (identical fingerprints imply
        bit-identical reports, so duplicates execute once).
    """

    index: int
    label: str
    report: BistReport | None = None
    error: str | None = None
    traceback_text: str = ""
    duration_seconds: float = 0.0
    worker: str = ""
    cached: bool = False
    deduplicated: bool = False

    @property
    def ok(self) -> bool:
        """Whether the scenario produced a report."""
        return self.report is not None

    def summary(self) -> str:
        """One-line textual summary of the outcome."""
        if self.ok:
            return (
                f"{self.label}: {self.report.verdict.value.upper()} "
                f"({self.duration_seconds:.2f} s)"
            )
        return f"{self.label}: ERROR ({self.error})"

    def to_dict(self) -> dict:
        """Plain JSON-friendly dictionary (exact round trip via :meth:`from_dict`)."""
        return {
            "index": self.index,
            "label": self.label,
            "report": None if self.report is None else self.report.to_dict(),
            "error": self.error,
            "traceback_text": self.traceback_text,
            "duration_seconds": self.duration_seconds,
            "worker": self.worker,
            "cached": self.cached,
            "deduplicated": self.deduplicated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioOutcome":
        """Rebuild an outcome serialized with :meth:`to_dict`."""
        report_data = data.get("report")
        return cls(
            index=data["index"],
            label=data["label"],
            report=None if report_data is None else BistReport.from_dict(report_data),
            error=data.get("error"),
            traceback_text=data.get("traceback_text", ""),
            duration_seconds=data.get("duration_seconds", 0.0),
            worker=data.get("worker", ""),
            cached=data.get("cached", False),
            deduplicated=data.get("deduplicated", False),
        )


@dataclass(frozen=True)
class CampaignExecution:
    """Structured result of a :class:`CampaignRunner` run.

    Unlike :class:`~repro.bist.campaign.CampaignResult`, this keeps failed
    scenarios (as error outcomes) alongside the successful reports.
    ``compiler_stats`` carries the :class:`~repro.bist.compiler.CompilerStats`
    of a ``compile=True`` run (``None`` for uncompiled runs and archives
    written before the compiler existed).
    """

    outcomes: tuple
    compiler_stats: object | None = None

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ValidationError("a campaign execution needs at least one outcome")

    @property
    def entries(self) -> list[tuple]:
        """``(label, report)`` pairs of the successful scenarios, in order."""
        return [(outcome.label, outcome.report) for outcome in self.outcomes if outcome.ok]

    @property
    def reports(self) -> list[BistReport]:
        """Reports of the successful scenarios, in submission order."""
        return [outcome.report for outcome in self.outcomes if outcome.ok]

    @property
    def errors(self) -> list[tuple]:
        """``(label, error)`` pairs of the scenarios that raised."""
        return [
            (outcome.label, outcome.error) for outcome in self.outcomes if not outcome.ok
        ]

    @property
    def all_passed(self) -> bool:
        """Whether every scenario produced a passing report."""
        return not self.errors and all(report.passed for report in self.reports)

    @property
    def total_duration_seconds(self) -> float:
        """Sum of the per-scenario wall clocks (the serial-equivalent cost)."""
        return float(sum(outcome.duration_seconds for outcome in self.outcomes))

    @property
    def cache_hits(self) -> int:
        """Scenarios served from the campaign store instead of executing."""
        return sum(outcome.cached for outcome in self.outcomes)

    @property
    def dedup_hits(self) -> int:
        """Scenarios served by fanning out an identical-fingerprint result."""
        return sum(outcome.deduplicated for outcome in self.outcomes)

    @property
    def cache_misses(self) -> int:
        """Scenarios that actually executed (neither cached nor deduplicated)."""
        return len(self.outcomes) - self.cache_hits - self.dedup_hits

    def to_result(self) -> CampaignResult:
        """Convert to the classic :class:`CampaignResult`.

        Raises :class:`~repro.errors.CampaignExecutionError` when any
        scenario raised, since a ``CampaignResult`` cannot represent errors.
        """
        if self.errors:
            details = "; ".join(f"{label}: {error}" for label, error in self.errors)
            raise CampaignExecutionError(
                f"{len(self.errors)} scenario(s) failed to execute: {details}"
            )
        return CampaignResult(entries=tuple(self.entries))

    def summary(self) -> CampaignSummary:
        """Aggregate statistics over reports, captured errors and cache counters."""
        return CampaignSummary.from_entries(
            self.entries,
            errors=self.errors,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            deduplicated=self.dedup_hits,
            compiler_stats=(
                None if self.compiler_stats is None else self.compiler_stats.to_dict()
            ),
        )

    def to_dict(self) -> dict:
        """Plain JSON-friendly dictionary (exact round trip via :meth:`from_dict`).

        This is the campaign archive format: every outcome — including the
        complete per-scenario reports with their PSD arrays — survives a
        ``json.dumps`` / ``json.loads`` cycle, so fault-campaign results can
        be stored as artifacts and re-analysed without re-running the BIST.
        """
        payload = {"outcomes": [outcome.to_dict() for outcome in self.outcomes]}
        if self.compiler_stats is not None:
            payload["compiler_stats"] = self.compiler_stats.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignExecution":
        """Rebuild an execution serialized with :meth:`to_dict`."""
        stats_data = data.get("compiler_stats")
        if stats_data is not None:
            from .compiler import CompilerStats

            stats = CompilerStats.from_dict(stats_data)
        else:
            stats = None
        return cls(
            outcomes=tuple(ScenarioOutcome.from_dict(outcome) for outcome in data["outcomes"]),
            compiler_stats=stats,
        )


class ExecutionBudget:
    """Mutable cap on *fresh* scenario executions across runner calls.

    Incremental campaigns — adaptive threshold searches in particular —
    issue many small :meth:`CampaignRunner.run` calls; one budget object
    threaded through them bounds the total simulation cost.  Only scenarios
    that actually execute are charged: store cache hits are free, so a
    resumed campaign replays its archived prefix without consuming budget
    and spends it on new work only.

    The charge happens *before* a batch executes and is all-or-nothing:
    when the remaining budget cannot cover the whole batch,
    :class:`~repro.errors.BudgetExhaustedError` is raised first, leaving the
    store without partially-executed batches.
    """

    def __init__(self, max_scenarios: int) -> None:
        if not isinstance(max_scenarios, int) or isinstance(max_scenarios, bool) or max_scenarios < 1:
            raise ValidationError(
                f"max_scenarios must be a positive integer, got {max_scenarios!r}"
            )
        self._max_scenarios = max_scenarios
        self._spent = 0

    @property
    def max_scenarios(self) -> int:
        """The configured cap."""
        return self._max_scenarios

    @property
    def spent(self) -> int:
        """Fresh executions charged so far."""
        return self._spent

    @property
    def remaining(self) -> int:
        """Executions still available."""
        return self._max_scenarios - self._spent

    def charge(self, count: int) -> None:
        """Consume ``count`` executions or raise :class:`BudgetExhaustedError`."""
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise ValidationError(f"count must be a non-negative integer, got {count!r}")
        if self._spent + count > self._max_scenarios:
            raise BudgetExhaustedError(
                f"execution budget exhausted: {self._spent} of "
                f"{self._max_scenarios} scenario(s) spent, cannot charge {count} more"
            )
        self._spent += count


@dataclass(frozen=True)
class _ScenarioTask:
    """Picklable unit of work shipped to pool workers."""

    index: int
    label: str
    scenario: CampaignScenario
    bist_config: BistConfig
    converter_factory: object
    seed: int | None | type(...) = ...


def _execute_task(task: _ScenarioTask) -> ScenarioOutcome:
    """Worker entry point: run one scenario, never raise."""
    start = time.perf_counter()
    worker = f"pid-{os.getpid()}"
    try:
        report = execute_scenario(
            task.scenario,
            bist_config=task.bist_config,
            converter_factory=task.converter_factory,
            seed=task.seed,
        )
        return ScenarioOutcome(
            index=task.index,
            label=task.label,
            report=report,
            duration_seconds=time.perf_counter() - start,
            worker=worker,
        )
    except Exception as exc:  # noqa: BLE001 - error isolation is the contract
        return ScenarioOutcome(
            index=task.index,
            label=task.label,
            error=f"{type(exc).__name__}: {exc}",
            traceback_text=traceback.format_exc(),
            duration_seconds=time.perf_counter() - start,
            worker=worker,
        )


def _execute_chunk(tasks) -> list[ScenarioOutcome]:
    """Worker entry point: run a chunk of scenarios, never raise.

    Chunked submission amortises the per-future pickle/IPC overhead over
    several scenarios; each scenario still executes through
    :func:`_execute_task`, so chunking cannot change any individual result.
    """
    return [_execute_task(task) for task in tasks]


class CampaignRunner:
    """Execute campaign scenarios, optionally on a process pool.

    Parameters
    ----------
    bist_config:
        Campaign-level engine configuration (defaults to ``BistConfig()``).
    converter_factory:
        Callable ``(acquisition_bandwidth_hz) -> BpTiadc`` used for scenarios
        without their own :class:`~repro.bist.campaign.ConverterSpec`.
        Must be picklable for ``max_workers > 1`` — prefer a
        ``ConverterSpec`` over a lambda.
    max_workers:
        1 (default) executes serially in-process; larger values distribute
        scenarios over a ``ProcessPoolExecutor`` with that many workers.
    seed_policy:
        ``"shared"`` (default) runs every scenario with the configuration's
        own seed — the historical behaviour; ``"per-scenario"`` derives a
        deterministic, decorrelated seed per scenario with
        :func:`derive_scenario_seed` and reseeds the cost-function instants,
        the transmitter realisation and (for :class:`ConverterSpec`
        factories) the converter jitter from it, so fault statistics are not
        correlated through a common noise realisation.  An arbitrary factory
        callable keeps its own internal seeding either way.  Both policies
        are deterministic and produce identical results for serial and
        parallel execution.
    progress_callback:
        Optional ``callable(ScenarioOutcome)`` invoked as each scenario
        completes (completion order, which differs from submission order
        under parallel execution).  Cache hits are reported through the
        callback too, before any pending scenario executes.
    store:
        Optional :class:`~repro.store.CampaignStore`.  When set, every
        scenario is fingerprinted (see
        :func:`repro.store.scenario_fingerprint`); scenarios whose
        fingerprint is already archived are served from the store without
        executing (``cached=True`` outcomes), and every freshly executed
        successful outcome is flushed to the store as it completes — so an
        interrupted campaign resumes from where it stopped and re-runs are
        incremental.  Requires declarative :class:`ConverterSpec` converter
        factories (arbitrary callables cannot be fingerprinted).
    dedup:
        Whether :meth:`run` collapses identical-fingerprint scenarios within
        one grid onto a single execution, fanning the result out to every
        duplicate label (``deduplicated=True`` outcomes).  Identical
        fingerprints guarantee bit-identical reports, so dedup never changes
        results; it is skipped silently when the converter factory is not a
        declarative :class:`ConverterSpec` (nothing can be fingerprinted).
    chunk_size:
        Scenarios shipped to a pool worker per future.  ``None`` (default)
        auto-tunes to roughly four chunks per worker, which amortises the
        per-future pickle/IPC overhead on large grids while keeping the
        pool load-balanced; serial==parallel bit-identity is unaffected.
    """

    def __init__(
        self,
        bist_config: BistConfig | None = None,
        converter_factory=None,
        max_workers: int = 1,
        seed_policy: str = "shared",
        progress_callback=None,
        store=None,
        dedup: bool = True,
        chunk_size: int | None = None,
    ) -> None:
        if not isinstance(max_workers, int) or max_workers < 1:
            raise ValidationError("max_workers must be a positive integer")
        if seed_policy not in _SEED_POLICIES:
            raise ValidationError(
                f"seed_policy must be one of {_SEED_POLICIES}, got {seed_policy!r}"
            )
        if chunk_size is not None and (
            not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1
        ):
            raise ValidationError("chunk_size must be a positive integer or None")
        self._bist_config = bist_config if bist_config is not None else BistConfig()
        # The nominal ConverterSpec builds the same converter as
        # default_converter but stays reseedable under "per-scenario".
        self._converter_factory = (
            converter_factory if converter_factory is not None else ConverterSpec()
        )
        self._max_workers = max_workers
        self._seed_policy = seed_policy
        self._progress_callback = progress_callback
        self._store = store
        self._dedup = bool(dedup)
        self._chunk_size = chunk_size

    @property
    def max_workers(self) -> int:
        """The configured worker count."""
        return self._max_workers

    def _effective_chunk_size(self, num_tasks: int) -> int:
        """Scenarios per pool future: explicit override or ~4 chunks/worker."""
        if self._chunk_size is not None:
            return self._chunk_size
        return max(1, -(-num_tasks // (self._max_workers * 4)))

    def _build_tasks(self, scenarios, indices=None) -> list[_ScenarioTask]:
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ValidationError("a campaign needs at least one scenario")
        if indices is None:
            indices = range(len(scenarios))
        else:
            indices = tuple(indices)
            if len(indices) != len(scenarios):
                raise ValidationError(
                    f"indices must match the scenario count: got {len(indices)} "
                    f"indices for {len(scenarios)} scenario(s)"
                )
            if any(not isinstance(index, int) or isinstance(index, bool) or index < 0
                   for index in indices):
                raise ValidationError("indices must be non-negative integers")
            if len(set(indices)) != len(indices):
                raise ValidationError("indices must be unique")
        tasks = []
        for index, scenario in zip(indices, scenarios):
            if not isinstance(scenario, CampaignScenario):
                raise ValidationError("all scenarios must be CampaignScenario instances")
            try:
                label = scenario.resolved_label()
            except ValidationError:
                # An unresolvable profile name must surface as a per-scenario
                # error outcome, not abort the whole campaign during set-up.
                label = scenario.label if scenario.label is not None else str(scenario.profile)
            if self._seed_policy == "per-scenario":
                seed = derive_scenario_seed(self._bist_config.seed, index, label)
            else:
                seed = ...
            tasks.append(
                _ScenarioTask(
                    index=index,
                    label=label,
                    scenario=scenario,
                    bist_config=self._bist_config,
                    converter_factory=self._converter_factory,
                    seed=seed,
                )
            )
        return tasks

    def run(
        self,
        scenarios,
        budget: ExecutionBudget | None = None,
        compile: bool = False,
        indices=None,
    ) -> CampaignExecution:
        """Execute every scenario; errors are captured, not raised.

        Returns a :class:`CampaignExecution` whose outcomes are in submission
        order regardless of the order in which workers finished them.  With a
        campaign store attached, archived scenarios are served as cache hits
        (no execution) and fresh outcomes are flushed to the store as they
        complete, so an interrupted run resumes incrementally.  Scenarios
        sharing a fingerprint within the batch execute once and fan out
        (see the ``dedup`` constructor flag).

        ``budget`` charges an :class:`ExecutionBudget` for the scenarios that
        will actually execute (cache hits and fingerprint duplicates are
        free), raising :class:`~repro.errors.BudgetExhaustedError` before any
        of them runs when the batch would overrun the cap.

        ``compile=True`` routes the batch through the
        :class:`~repro.bist.compiler.CampaignCompiler`: fingerprint-adjacent
        scenarios (same effective profile/configuration geometry) execute
        in-process as stacked kernels sharing reconstruction-plan structures,
        while heterogeneous remainders fall back to this runner's normal
        serial/pool path.  Results are bit-identical either way; the
        returned execution carries the compiler's statistics.

        ``indices`` (when given) assigns each scenario its position in a
        larger submission — outcomes carry those indices and the
        ``per-scenario`` seed policy derives seeds from them, so a
        *partition* of a grid executed remotely (see
        :mod:`repro.service`) produces outcomes bit-identical to the same
        scenarios executed inside the full grid.  Defaults to
        ``0..len(scenarios)-1`` (the historical behaviour).
        """
        tasks = self._build_tasks(scenarios, indices=indices)
        cached, pending, fingerprints = self._consult_store(tasks)
        pending, duplicates = self._dedup_pending(pending, fingerprints)
        if budget is not None and pending:
            if not isinstance(budget, ExecutionBudget):
                raise ValidationError("budget must be an ExecutionBudget")
            budget.charge(len(pending))
        compiler_stats = None
        executed: list[ScenarioOutcome] = []
        if compile and len(pending) >= 2:
            from .compiler import CampaignCompiler

            compiler = CampaignCompiler()
            groups, pending = compiler.group(pending)
            for group in groups:
                executed.extend(
                    compiler.execute_group(
                        group, on_outcome=lambda o: self._complete(o, fingerprints)
                    )
                )
            compiler_stats = compiler.stats
        if not pending:
            pass
        elif self._max_workers == 1 or len(pending) == 1:
            executed.extend(self._run_serial(pending, fingerprints))
        else:
            executed.extend(self._run_parallel(pending, fingerprints))
        fanned = self._fan_out_duplicates(executed, duplicates)
        outcomes = sorted(cached + executed + fanned, key=lambda outcome: outcome.index)
        return CampaignExecution(outcomes=tuple(outcomes), compiler_stats=compiler_stats)

    def _dedup_pending(self, pending, fingerprints) -> tuple[list, dict]:
        """Collapse identical-fingerprint pending tasks onto one execution.

        Returns ``(primaries, duplicates)`` where ``duplicates`` maps a
        primary task's index to the duplicate tasks whose outcomes will be
        fanned out from it.  Fingerprints already computed by the store
        consult are reused; without a store they are computed here.  Tasks
        whose scenario content cannot be fingerprinted run undeduplicated,
        and a non-declarative converter factory disables dedup for the whole
        batch (nothing can be fingerprinted safely).
        """
        if not self._dedup or len(pending) < 2:
            return list(pending), {}
        from ..store.fingerprint import scenario_fingerprint

        primaries: list[_ScenarioTask] = []
        primary_of: dict[str, int] = {}
        duplicates: dict[int, list[_ScenarioTask]] = {}
        for task in pending:
            fingerprint = fingerprints.get(task.index)
            if fingerprint is None:
                try:
                    fingerprint = scenario_fingerprint(
                        task.scenario,
                        bist_config=task.bist_config,
                        converter_factory=task.converter_factory,
                        seed=task.seed,
                    )
                except ValidationError:
                    # Invalid scenario content: let the execution path surface
                    # the per-scenario error outcome, undeduplicated.
                    primaries.append(task)
                    continue
                except ConfigurationError:
                    # Arbitrary converter factory: fingerprints are
                    # unavailable, so dedup quietly stands down (the
                    # historical serial path allowed such factories).
                    return list(pending), {}
                fingerprints[task.index] = fingerprint
            if fingerprint in primary_of:
                duplicates.setdefault(primary_of[fingerprint], []).append(task)
            else:
                primary_of[fingerprint] = task.index
                primaries.append(task)
        return primaries, duplicates

    def _fan_out_duplicates(self, executed, duplicates) -> list[ScenarioOutcome]:
        """Clone each primary outcome onto its duplicate labels.

        Identical fingerprints imply bit-identical execution, so the report
        (or the error) is shared verbatim; the fan-out costs no wall clock
        and is not re-archived (the store already holds the fingerprint from
        the primary's flush).
        """
        if not duplicates:
            return []
        by_index = {outcome.index: outcome for outcome in executed}
        fanned = []
        for primary_index, tasks in duplicates.items():
            source = by_index.get(primary_index)
            if source is None:
                continue
            for task in tasks:
                outcome = ScenarioOutcome(
                    index=task.index,
                    label=task.label,
                    report=source.report,
                    error=source.error,
                    traceback_text=source.traceback_text,
                    duration_seconds=0.0,
                    worker="dedup",
                    deduplicated=True,
                )
                self._notify(outcome)
                fanned.append(outcome)
        return fanned

    def _consult_store(self, tasks) -> tuple:
        """Split tasks into store-served outcomes and tasks still to run."""
        if self._store is None:
            return [], list(tasks), {}
        from ..store.fingerprint import scenario_fingerprint

        cached = []
        pending = []
        fingerprints: dict[int, str] = {}
        for task in tasks:
            try:
                fingerprint = scenario_fingerprint(
                    task.scenario,
                    bist_config=task.bist_config,
                    converter_factory=task.converter_factory,
                    seed=task.seed,
                )
            except ValidationError:
                # A scenario with invalid *content* (e.g. unresolvable
                # profile) must surface as a per-scenario error outcome from
                # the execution path, not abort the campaign during the
                # store consult; it simply runs uncached.  A campaign-level
                # misconfiguration (non-ConverterSpec factory) still raises
                # ConfigurationError loudly, mirroring _check_picklable.
                pending.append(task)
                continue
            fingerprints[task.index] = fingerprint
            hit = self._store.get(fingerprint)
            if hit is not None and hit.ok:
                # Re-home the archived report under the current campaign's
                # index/label; wall clock and worker describe the cache hit,
                # not the original execution.
                outcome = ScenarioOutcome(
                    index=task.index,
                    label=task.label,
                    report=hit.report,
                    duration_seconds=0.0,
                    worker="store",
                    cached=True,
                )
                self._notify(outcome)
                cached.append(outcome)
            else:
                pending.append(task)
        return cached, pending, fingerprints

    def _notify(self, outcome: ScenarioOutcome) -> None:
        if self._progress_callback is not None:
            self._progress_callback(outcome)

    def _complete(self, outcome: ScenarioOutcome, fingerprints: dict) -> None:
        """Archive a fresh outcome (incremental flush), then notify."""
        if self._store is not None and outcome.ok and outcome.index in fingerprints:
            self._store.put(fingerprints[outcome.index], outcome)
        self._notify(outcome)

    def _run_serial(self, tasks, fingerprints=None) -> list[ScenarioOutcome]:
        fingerprints = fingerprints if fingerprints is not None else {}
        outcomes = []
        for task in tasks:
            outcome = _execute_task(task)
            self._complete(outcome, fingerprints)
            outcomes.append(outcome)
        return outcomes

    def _check_picklable(self, tasks) -> None:
        for task in tasks:
            try:
                pickle.dumps(task)
            except Exception as exc:
                raise ConfigurationError(
                    f"scenario {task.label!r} cannot be shipped to a worker process "
                    f"({type(exc).__name__}: {exc}); use a picklable converter factory "
                    "such as ConverterSpec instead of a lambda, or run with "
                    "max_workers=1"
                ) from exc

    #: Pool rounds attempted when worker processes die (a dead worker fails
    #: every outstanding future, so innocent scenarios deserve a fresh pool).
    _MAX_POOL_ROUNDS = 2

    def _run_parallel(self, tasks, fingerprints=None) -> list[ScenarioOutcome]:
        fingerprints = fingerprints if fingerprints is not None else {}
        self._check_picklable(tasks)
        outcomes: dict[int, ScenarioOutcome] = {}
        pending = list(tasks)
        for _ in range(self._MAX_POOL_ROUNDS):
            if not pending:
                break
            pending = self._pool_round(pending, outcomes, fingerprints)
        for task in pending:
            # Scenarios still unplaced after the retry rounds: the pool kept
            # breaking around them (e.g. a scenario that OOM-kills its
            # worker), so record them as errored rather than rerun forever.
            outcome = ScenarioOutcome(
                index=task.index,
                label=task.label,
                error=(
                    "BrokenProcessPool: a worker process died while this scenario "
                    f"was outstanding (after {self._MAX_POOL_ROUNDS} pool rounds)"
                ),
            )
            self._notify(outcome)
            outcomes[outcome.index] = outcome
        return [outcomes[index] for index in sorted(outcomes)]

    def _pool_round(self, tasks, outcomes, fingerprints) -> list:
        """One process-pool pass; returns tasks lost to worker deaths.

        Tasks are shipped in chunks (see ``chunk_size``) so the pickle/IPC
        cost of a future is amortised over several scenarios; each chunk's
        outcomes are completed as the chunk finishes, so progress callbacks
        and store flushes still fire incrementally.
        """
        workers = min(self._max_workers, len(tasks))
        chunk_size = self._effective_chunk_size(len(tasks))
        chunks = [tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)]
        broken = []
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_execute_chunk, chunk): chunk for chunk in chunks}
            for future in concurrent.futures.as_completed(futures):
                chunk = futures[future]
                error = future.exception()
                if error is None:
                    chunk_outcomes = future.result()
                elif isinstance(error, BrokenProcessPool):
                    # A worker died and the executor failed every outstanding
                    # future; most of these scenarios never ran, so they get
                    # another pool round instead of a spurious error.
                    broken.extend(chunk)
                    continue
                else:
                    # The chunk itself could not be executed (e.g. it failed
                    # to unpickle in the worker); synthesise error outcomes.
                    chunk_outcomes = [
                        ScenarioOutcome(
                            index=task.index,
                            label=task.label,
                            error=f"{type(error).__name__}: {error}",
                            traceback_text="".join(
                                traceback.format_exception(type(error), error, error.__traceback__)
                            ),
                        )
                        for task in chunk
                    ]
                for outcome in chunk_outcomes:
                    self._complete(outcome, fingerprints)
                    outcomes[outcome.index] = outcome
        return broken


# --------------------------------------------------------------------------- #
# Scenario grids
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Axis:
    """One labelled grid axis value."""

    label: str | None
    value: object


class ScenarioGrid:
    """Cartesian scenario-list builder: profiles × impairments × converters.

    A grid always has a profile axis; the impairment and converter axes are
    optional (an empty axis contributes a single nominal point and no label
    segment).  Scenario labels are ``profile[/impairment][/converter]``.

    Example
    -------
    >>> grid = (
    ...     ScenarioGrid()
    ...     .add_profiles("paper-qpsk-1ghz", "uhf-8psk-400mhz")
    ...     .add_impairment("nominal", ImpairmentConfig())
    ...     .add_impairments(pa_saturation_sweep([0.75, 1.5]))
    ...     .add_converters(skew_sweep([0.0, 2e-12]))
    ... )
    >>> len(grid)
    12
    """

    def __init__(self, num_symbols: int | None = None) -> None:
        self._profiles: list[_Axis] = []
        self._impairments: list[_Axis] = []
        self._converters: list[_Axis] = []
        self._num_symbols = num_symbols

    # -- profile axis ------------------------------------------------------ #
    def add_profile(
        self, profile: WaveformProfile | str, label: str | None = None
    ) -> "ScenarioGrid":
        """Append one waveform profile (name or object) to the profile axis."""
        if not isinstance(profile, (str, WaveformProfile)):
            raise ValidationError("profile must be a WaveformProfile or a profile name")
        if label is None:
            label = profile if isinstance(profile, str) else profile.name
        self._profiles.append(_Axis(label=label, value=profile))
        return self

    def add_profiles(self, *profiles) -> "ScenarioGrid":
        """Append several profiles at once."""
        for profile in profiles:
            self.add_profile(profile)
        return self

    # -- impairment axis --------------------------------------------------- #
    def add_impairment(self, label: str, impairments: ImpairmentConfig) -> "ScenarioGrid":
        """Append one labelled transmitter-impairment point."""
        if not isinstance(impairments, ImpairmentConfig):
            raise ValidationError("impairments must be an ImpairmentConfig")
        self._impairments.append(_Axis(label=str(label), value=impairments))
        return self

    def add_impairments(self, items) -> "ScenarioGrid":
        """Append several ``(label, ImpairmentConfig)`` pairs (or a mapping)."""
        pairs = items.items() if hasattr(items, "items") else items
        for label, impairments in pairs:
            self.add_impairment(label, impairments)
        return self

    # -- converter axis ---------------------------------------------------- #
    def add_converter(self, label: str, spec: ConverterSpec) -> "ScenarioGrid":
        """Append one labelled converter-fault point."""
        if not isinstance(spec, ConverterSpec):
            raise ValidationError("spec must be a ConverterSpec")
        self._converters.append(_Axis(label=str(label), value=spec))
        return self

    def add_converters(self, items) -> "ScenarioGrid":
        """Append several ``(label, ConverterSpec)`` pairs (or a mapping)."""
        pairs = items.items() if hasattr(items, "items") else items
        for label, spec in pairs:
            self.add_converter(label, spec)
        return self

    # -- expansion --------------------------------------------------------- #
    def __len__(self) -> int:
        return (
            len(self._profiles)
            * max(1, len(self._impairments))
            * max(1, len(self._converters))
        )

    def build(self) -> tuple:
        """Expand the grid into a tuple of :class:`CampaignScenario`."""
        if not self._profiles:
            raise ValidationError("a scenario grid needs at least one profile")
        impairment_axis = self._impairments or [_Axis(label=None, value=ImpairmentConfig())]
        converter_axis = self._converters or [_Axis(label=None, value=None)]
        scenarios = []
        labels = set()
        duplicates = []
        for profile_point in self._profiles:
            for impairment_point in impairment_axis:
                for converter_point in converter_axis:
                    parts = [profile_point.label]
                    if impairment_point.label is not None:
                        parts.append(impairment_point.label)
                    if converter_point.label is not None:
                        parts.append(converter_point.label)
                    label = "/".join(parts)
                    if label in labels:
                        duplicates.append(label)
                        continue
                    labels.add(label)
                    scenarios.append(
                        CampaignScenario(
                            profile=profile_point.value,
                            impairments=impairment_point.value,
                            label=label,
                            num_symbols=self._num_symbols,
                            converter=converter_point.value,
                        )
                    )
        if duplicates:
            # Ambiguous campaign rows would make outcome labels (and hence
            # fault-dictionary keys) collide silently; refuse loudly instead.
            shown = ", ".join(repr(label) for label in sorted(set(duplicates)))
            raise ConfigurationError(
                f"scenario grid produced {len(duplicates)} duplicate label(s): {shown}; "
                "every (profile, impairment, converter) axis point needs a unique label "
                "— rename the colliding axis entries (e.g. include the parameter value "
                "in the label) so each campaign row stays addressable"
            )
        return tuple(scenarios)


# --------------------------------------------------------------------------- #
# Sweep helpers: labelled axis values for the common fault dimensions
#
# These are thin wrappers over the first-class fault models of
# :mod:`repro.faults.models`: each helper parameterises the matching family
# at its exact physical value (severity 1 with nominal == worst) and lets the
# model inject itself, so grids and fault campaigns share one injection path.
# The fault-model imports are deferred to the function bodies because
# ``repro.faults`` itself builds on this module's :class:`CampaignRunner`.
# --------------------------------------------------------------------------- #
def pa_saturation_sweep(saturation_amplitudes, smoothness: float = 2.0) -> list[tuple]:
    """PA-compression fault axis: Rapp amplifiers at decreasing headroom."""
    from ..faults.models import PaCompressionFault

    return [
        (
            f"pa-sat-{amplitude:g}",
            PaCompressionFault(
                nominal_saturation=amplitude,
                worst_saturation=amplitude,
                smoothness=smoothness,
            ).apply_transmitter(ImpairmentConfig()),
        )
        for amplitude in saturation_amplitudes
    ]


def iq_imbalance_sweep(points) -> list[tuple]:
    """IQ-imbalance fault axis from ``(gain_db, phase_deg)`` pairs."""
    from ..faults.models import IqImbalanceFault

    return [
        (
            f"iq-{gain_db:g}dB-{phase_deg:g}deg",
            IqImbalanceFault(
                max_gain_imbalance_db=gain_db, max_phase_imbalance_deg=phase_deg
            ).apply_transmitter(ImpairmentConfig()),
        )
        for gain_db, phase_deg in points
    ]


def dc_offset_sweep(offsets) -> list[tuple]:
    """LO-leakage fault axis: I-branch DC offsets."""
    from ..faults.models import LoLeakageFault

    return [
        (
            f"dc-{offset:g}",
            LoLeakageFault(max_i_offset=offset).apply_transmitter(ImpairmentConfig()),
        )
        for offset in offsets
    ]


def skew_sweep(skews_seconds, base: ConverterSpec | None = None) -> list[tuple]:
    """Converter fault axis: channel-1 static skew values."""
    from ..faults.models import TiadcSkewFault

    base = base if base is not None else ConverterSpec()
    return [
        (
            f"skew-{skew * 1e12:g}ps",
            TiadcSkewFault(max_skew_seconds=skew).apply_converter(base),
        )
        for skew in skews_seconds
    ]


def dcde_error_sweep(errors_seconds, base: ConverterSpec | None = None) -> list[tuple]:
    """Converter fault axis: DCDE static (programmed-vs-real) delay errors."""
    from ..faults.models import DcdeErrorFault

    base = base if base is not None else ConverterSpec()
    return [
        (
            f"dcde-{error * 1e12:g}ps",
            DcdeErrorFault(max_static_error_seconds=error).apply_converter(base),
        )
        for error in errors_seconds
    ]


def channel_mismatch_sweep(points, base: ConverterSpec | None = None) -> list[tuple]:
    """Converter fault axis: ``(gain_error, offset)`` static mismatch pairs."""
    from ..faults.models import TiadcMismatchFault

    base = base if base is not None else ConverterSpec()
    return [
        (
            f"mismatch-g{gain_error:g}-o{offset:g}",
            TiadcMismatchFault(max_gain_error=gain_error, max_offset=offset).apply_converter(base),
        )
        for gain_error, offset in points
    ]
