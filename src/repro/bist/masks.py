"""Spectral emission masks and compliance checking.

Spectral-mask verification is the paper's stated target application: "Our
initial efforts are focused to the characterization of the transmitter (Tx)
chain with respect to compliance to the spectral mask."  A mask is a
piecewise-linear limit on the transmitted PSD versus frequency offset from
the channel centre, normalised to the in-band peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.spectrum import SpectrumEstimate
from ..errors import MaskError, ValidationError
from ..signals.standards import WaveformProfile
from ..utils.validation import check_1d_array

__all__ = ["SpectralMask", "MaskViolation", "MaskCheckResult"]


@dataclass(frozen=True)
class MaskViolation:
    """One frequency bin that exceeds the mask.

    Attributes
    ----------
    frequency_offset_hz:
        Offset of the offending bin from the channel centre.
    measured_db:
        Measured PSD relative to the in-band peak (dB).
    limit_db:
        Mask limit at that offset (dB).
    margin_db:
        ``limit_db - measured_db`` (negative = violation magnitude).
    """

    frequency_offset_hz: float
    measured_db: float
    limit_db: float

    @property
    def margin_db(self) -> float:
        """Limit minus measurement; negative when violating."""
        return self.limit_db - self.measured_db

    def to_dict(self) -> dict:
        """Plain JSON-friendly dictionary (see :meth:`from_dict`)."""
        return {
            "frequency_offset_hz": self.frequency_offset_hz,
            "measured_db": self.measured_db,
            "limit_db": self.limit_db,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MaskViolation":
        """Rebuild a violation serialized with :meth:`to_dict`."""
        return cls(
            frequency_offset_hz=data["frequency_offset_hz"],
            measured_db=data["measured_db"],
            limit_db=data["limit_db"],
        )


@dataclass(frozen=True)
class MaskCheckResult:
    """Outcome of checking one spectrum against a mask.

    Attributes
    ----------
    passed:
        True when no bin exceeds the mask.
    worst_margin_db:
        The smallest margin observed (negative when failing).
    worst_offset_hz:
        Frequency offset at which the worst margin occurs.
    violations:
        All violating bins (empty when passing).
    """

    passed: bool
    worst_margin_db: float
    worst_offset_hz: float
    violations: tuple

    def to_dict(self) -> dict:
        """Plain JSON-friendly dictionary (see :meth:`from_dict`)."""
        return {
            "passed": self.passed,
            "worst_margin_db": self.worst_margin_db,
            "worst_offset_hz": self.worst_offset_hz,
            "violations": [violation.to_dict() for violation in self.violations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MaskCheckResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        return cls(
            passed=bool(data["passed"]),
            worst_margin_db=data["worst_margin_db"],
            worst_offset_hz=data["worst_offset_hz"],
            violations=tuple(MaskViolation.from_dict(v) for v in data["violations"]),
        )


@dataclass(frozen=True)
class SpectralMask:
    """A symmetric piecewise-linear spectral emission mask.

    The mask is defined by breakpoints ``(offset_hz, limit_db)`` with the
    limit expressed relative to the in-band peak PSD; between breakpoints the
    limit is linearly interpolated, beyond the last breakpoint it stays at
    the final value.  The mask applies symmetrically on both sides of the
    channel centre.

    Parameters
    ----------
    name:
        Identifier used in reports.
    offsets_hz:
        Monotonically increasing non-negative frequency offsets.
    limits_db:
        Relative PSD limits at the breakpoints (same length as the offsets).
    """

    name: str
    offsets_hz: np.ndarray
    limits_db: np.ndarray

    def __post_init__(self) -> None:
        offsets = check_1d_array(self.offsets_hz, "offsets_hz", min_length=2, dtype=float)
        limits = check_1d_array(self.limits_db, "limits_db", min_length=2, dtype=float)
        if offsets.size != limits.size:
            raise MaskError("offsets_hz and limits_db must have the same length")
        if offsets[0] < 0.0:
            raise MaskError("mask offsets must be non-negative")
        if np.any(np.diff(offsets) <= 0.0):
            raise MaskError("mask offsets must be strictly increasing")
        object.__setattr__(self, "offsets_hz", offsets)
        object.__setattr__(self, "limits_db", limits)

    @classmethod
    def from_profile(cls, profile: WaveformProfile) -> "SpectralMask":
        """Build the mask declared by a multistandard waveform profile."""
        if not isinstance(profile, WaveformProfile):
            raise ValidationError("profile must be a WaveformProfile")
        if not profile.mask_points_db:
            raise MaskError(f"profile {profile.name!r} declares no spectral mask")
        offsets, limits = zip(*profile.mask_points_db)
        return cls(name=f"{profile.name}-mask", offsets_hz=np.array(offsets), limits_db=np.array(limits))

    def limit_at(self, frequency_offsets_hz) -> np.ndarray:
        """Mask limit (dB relative to in-band peak) at the given offsets."""
        offsets = np.abs(np.asarray(frequency_offsets_hz, dtype=float))
        return np.interp(offsets, self.offsets_hz, self.limits_db)

    @property
    def span_hz(self) -> float:
        """Largest offset covered by an explicit breakpoint."""
        return float(self.offsets_hz[-1])

    def check(
        self,
        estimate: SpectrumEstimate,
        channel_centre_hz: float,
        exclude_in_band_hz: float | None = None,
    ) -> MaskCheckResult:
        """Check a PSD estimate against the mask.

        Parameters
        ----------
        estimate:
            PSD of the transmitter output (absolute frequencies).
        channel_centre_hz:
            Centre frequency of the wanted channel.
        exclude_in_band_hz:
            Half-width of the region around the centre that is exempt from
            checking (the wanted signal itself); defaults to the first mask
            breakpoint with a negative limit, or the first offset otherwise.

        Returns
        -------
        MaskCheckResult
        """
        offsets = estimate.frequencies_hz - float(channel_centre_hz)
        relative_db = estimate.normalised_db()
        limits = self.limit_at(offsets)

        if exclude_in_band_hz is None:
            below_zero = self.limits_db < 0.0
            if np.any(below_zero):
                exclude_in_band_hz = float(self.offsets_hz[np.argmax(below_zero)])
            else:
                exclude_in_band_hz = float(self.offsets_hz[0])

        considered = (np.abs(offsets) >= exclude_in_band_hz) & (np.abs(offsets) <= self.span_hz)
        if not np.any(considered):
            raise MaskError(
                "the PSD estimate does not cover any frequency where the mask applies; "
                "acquire a wider spectrum"
            )

        margins = limits - relative_db
        margins = np.where(considered, margins, np.inf)
        worst_index = int(np.argmin(margins))
        violating = considered & (margins < 0.0)
        violations = tuple(
            MaskViolation(
                frequency_offset_hz=float(offsets[index]),
                measured_db=float(relative_db[index]),
                limit_db=float(limits[index]),
            )
            for index in np.flatnonzero(violating)
        )
        return MaskCheckResult(
            passed=not violations,
            worst_margin_db=float(margins[worst_index]),
            worst_offset_hz=float(offsets[worst_index]),
            violations=violations,
        )
