"""Transmitter measurements computed from the reconstructed output waveform.

Once the BP-TIADC samples have been calibrated and the bandpass waveform
reconstructed, the BIST DSP derives the quantities the test specification
actually talks about: the output spectrum (for mask compliance), the
adjacent-channel power ratio, the occupied bandwidth, and the error vector
magnitude against the known transmitted symbols.

The reconstructor produced by :mod:`repro.sampling` is a *continuous-time*
model (it can be evaluated anywhere), so the measurement code first renders
it onto a dense uniform grid far above the carrier Nyquist rate; everything
downstream is conventional DSP on that grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.filters import lowpass_fir
from ..dsp.interpolation import sinc_interpolate
from ..dsp.metrics import error_vector_magnitude
from ..dsp.spectrum import (
    SpectrumEstimate,
    adjacent_channel_power_ratio,
    band_power,
    occupied_bandwidth,
    welch_psd,
)
from ..errors import MeasurementError, ValidationError
from ..sampling.reconstruction import NonuniformReconstructor
from ..signals.ofdm import OfdmDemodulator, OfdmGridMetrics, build_used_grid, ofdm_grid_metrics
from ..transmitter.chain import TransmissionResult
from ..utils.validation import check_integer, check_positive

__all__ = [
    "OFDM_DENSE_OVERSAMPLING",
    "dense_measurement_rate",
    "uniform_render_grid",
    "render_uniform",
    "reconstructed_envelope",
    "envelope_from_dense_samples",
    "measure_spectrum",
    "measure_spectrum_from_samples",
    "measure_acpr",
    "measure_occupied_bandwidth",
    "measure_evm",
    "measure_ofdm_evm",
    "TxMeasurements",
]

#: Dense-render rate multiple of the band's upper edge used by the OFDM
#: measurement paths.  OFDM acquisition windows are sized in whole OFDM
#: symbols and are an order of magnitude longer than single-carrier ones;
#: 2.5 x f_high still comfortably oversamples the band-limited
#: reconstruction while keeping the render affordable.  Single-carrier
#: measurements keep :func:`render_uniform`'s 4 x f_high default.
OFDM_DENSE_OVERSAMPLING = 2.5


def dense_measurement_rate(band_f_high: float, envelope_rate: float | None) -> float | None:
    """The dense-render rate the BIST engine uses for its measurement grid.

    Single-carrier bursts (``envelope_rate is None``) return ``None``,
    meaning :func:`render_uniform`'s default of ``4 x f_high``; OFDM bursts
    render at :data:`OFDM_DENSE_OVERSAMPLING` times the band's upper edge,
    snapped *up* to an exact integer multiple of the envelope rate so the
    same render feeds both the spectrum and the EVM demodulation without
    decimation drift.  Factored out so the campaign compiler can predict the
    engine's measurement grid exactly (bitwise) without running it.
    """
    if envelope_rate is None:
        return None
    envelope_rate = check_positive(envelope_rate, "envelope_rate")
    return float(np.ceil(OFDM_DENSE_OVERSAMPLING * band_f_high / envelope_rate) * envelope_rate)


def uniform_render_grid(
    reconstructor: NonuniformReconstructor,
    start_time: float,
    stop_time: float,
    sample_rate: float | None = None,
) -> tuple[np.ndarray, float]:
    """The dense uniform grid :func:`render_uniform` would evaluate on.

    Split out so callers can obtain the exact ``(times, sample_rate)`` pair —
    bitwise identical with what :func:`render_uniform` computes internally —
    without paying for the evaluation.  The campaign compiler uses this to
    group scenarios by their dense measurement grid and to drive the stacked
    evaluation over it.
    """
    if not isinstance(reconstructor, NonuniformReconstructor):
        raise ValidationError("reconstructor must be a NonuniformReconstructor")
    valid_low, valid_high = reconstructor.valid_time_range()
    start_time = max(float(start_time), valid_low)
    stop_time = min(float(stop_time), valid_high)
    if stop_time <= start_time:
        raise MeasurementError(
            "the requested rendering interval does not overlap the reconstructor's valid range"
        )
    band = reconstructor.kernel.band
    if sample_rate is None:
        sample_rate = 4.0 * band.f_high
    sample_rate = check_positive(sample_rate, "sample_rate")
    num_samples = int(np.floor((stop_time - start_time) * sample_rate))
    if num_samples < 64:
        raise MeasurementError("rendering interval too short for a meaningful measurement")
    times = start_time + np.arange(num_samples) / sample_rate
    return times, sample_rate


def render_uniform(
    reconstructor: NonuniformReconstructor,
    start_time: float,
    stop_time: float,
    sample_rate: float | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Render the reconstructed waveform onto a dense uniform grid.

    Parameters
    ----------
    reconstructor:
        The calibrated nonuniform reconstructor.
    start_time, stop_time:
        Interval to render; it is clipped to the reconstructor's valid range.
    sample_rate:
        Dense grid rate; defaults to four times the band's upper edge, which
        comfortably avoids aliasing of the reconstructed bandpass signal.

    Returns
    -------
    tuple
        ``(times, samples, sample_rate)``.

    Notes
    -----
    The render evaluates through a precompiled
    :class:`~repro.sampling.reconstruction.ReconstructionPlan`; the BIST
    engine renders each dense grid once and shares the samples between the
    output-power and spectrum measurements (see
    :func:`measure_spectrum_from_samples`), so prefer reusing the returned
    samples over calling this twice for the same interval.  The evaluation
    runs on whichever array backend the reconstructor's plans were built
    against (:mod:`repro.backend`); the returned samples are always host
    NumPy — the measurement DSP below this boundary is conventional host
    code.
    """
    times, sample_rate = uniform_render_grid(
        reconstructor, start_time, stop_time, sample_rate=sample_rate
    )
    return times, reconstructor.evaluate(times), sample_rate


def reconstructed_envelope(
    reconstructor: NonuniformReconstructor,
    carrier_frequency_hz: float,
    start_time: float,
    stop_time: float,
    envelope_rate: float,
    dense_rate: float | None = None,
    filter_taps: int = 129,
) -> tuple[np.ndarray, np.ndarray]:
    """Extract the complex envelope of the reconstructed output around a carrier.

    The reconstruction is rendered densely, multiplied by the conjugate
    carrier, low-pass filtered to reject the ``2 * fc`` image and decimated to
    ``envelope_rate``.

    Returns
    -------
    tuple
        ``(times, envelope)`` where ``envelope`` is complex at ``envelope_rate``.
    """
    carrier_frequency_hz = check_positive(carrier_frequency_hz, "carrier_frequency_hz")
    envelope_rate = check_positive(envelope_rate, "envelope_rate")
    if dense_rate is None:
        # Snap the dense rendering rate to an exact integer multiple of the
        # requested envelope rate so the decimation below is drift-free.
        band = reconstructor.kernel.band
        dense_rate = np.ceil(4.0 * band.f_high / envelope_rate) * envelope_rate
    times, samples, dense = render_uniform(
        reconstructor, start_time, stop_time, sample_rate=dense_rate
    )
    return envelope_from_dense_samples(
        times,
        samples,
        dense,
        carrier_frequency_hz=carrier_frequency_hz,
        envelope_rate=envelope_rate,
        filter_taps=filter_taps,
    )


def envelope_from_dense_samples(
    times: np.ndarray,
    samples: np.ndarray,
    dense_rate: float,
    carrier_frequency_hz: float,
    envelope_rate: float,
    filter_taps: int = 129,
) -> tuple[np.ndarray, np.ndarray]:
    """Complex envelope of an already-rendered dense passband record.

    Split out of :func:`reconstructed_envelope` so callers that have
    rendered the reconstruction once (the BIST engine shares a single dense
    render between the spectrum and OFDM EVM measurements) do not pay for a
    second full reconstruction pass.  ``dense_rate`` should be an integer
    multiple of ``envelope_rate`` for drift-free decimation.
    """
    carrier_frequency_hz = check_positive(carrier_frequency_hz, "carrier_frequency_hz")
    envelope_rate = check_positive(envelope_rate, "envelope_rate")
    analytic = samples * np.exp(-2j * np.pi * carrier_frequency_hz * times)
    cutoff = min(envelope_rate / 2.0, carrier_frequency_hz * 0.8)
    taps = lowpass_fir(
        cutoff, dense_rate, num_taps=check_integer(filter_taps, "filter_taps", minimum=31)
    )
    filtered = np.convolve(analytic, taps.astype(complex))
    bulk = (len(taps) - 1) // 2
    filtered = filtered[bulk : bulk + samples.size]
    decimation = max(1, int(round(dense_rate / envelope_rate)))
    # Factor 2: the complex mixing halves the envelope amplitude.
    return times[::decimation], 2.0 * filtered[::decimation]


def measure_spectrum(
    reconstructor: NonuniformReconstructor,
    start_time: float,
    stop_time: float,
    segment_length: int | None = None,
    resolution_hz: float | None = None,
    dense_rate: float | None = None,
) -> SpectrumEstimate:
    """Welch PSD of the reconstructed transmitter output.

    Either ``segment_length`` or a target ``resolution_hz`` may be given; by
    default the resolution is set to 1/256 of the reconstructed bandwidth so
    that in-band structure (mask skirts, adjacent channels) is resolved
    regardless of the dense rendering rate.
    """
    _, samples, rate = render_uniform(reconstructor, start_time, stop_time, sample_rate=dense_rate)
    return measure_spectrum_from_samples(
        samples,
        rate,
        bandwidth_hz=reconstructor.kernel.band.bandwidth,
        segment_length=segment_length,
        resolution_hz=resolution_hz,
    )


def measure_spectrum_from_samples(
    samples: np.ndarray,
    sample_rate: float,
    bandwidth_hz: float,
    segment_length: int | None = None,
    resolution_hz: float | None = None,
) -> SpectrumEstimate:
    """Welch PSD of an already-rendered uniform waveform.

    Split out of :func:`measure_spectrum` so callers that have rendered the
    reconstruction once (the BIST engine shares a single dense render between
    the output-power and spectrum measurements) do not pay for a second full
    reconstruction pass.
    """
    samples = np.asarray(samples, dtype=float)
    sample_rate = check_positive(sample_rate, "sample_rate")
    if segment_length is None:
        if resolution_hz is None:
            resolution_hz = check_positive(bandwidth_hz, "bandwidth_hz") / 256.0
        segment_length = int(2 ** np.ceil(np.log2(sample_rate / resolution_hz)))
    segment_length = min(int(segment_length), samples.size)
    return welch_psd(samples, sample_rate, segment_length=segment_length)


def measure_acpr(
    spectrum: SpectrumEstimate,
    channel_centre_hz: float,
    channel_bandwidth_hz: float,
    channel_spacing_hz: float | None = None,
) -> dict[str, float]:
    """ACPR of the reconstructed output (wrapper over the DSP primitive)."""
    return adjacent_channel_power_ratio(
        spectrum,
        channel_centre_hz=channel_centre_hz,
        channel_bandwidth_hz=channel_bandwidth_hz,
        offset_hz=channel_spacing_hz,
    )


def measure_occupied_bandwidth(
    spectrum: SpectrumEstimate,
    channel_centre_hz: float,
    search_half_width_hz: float,
    power_fraction: float = 0.99,
) -> float:
    """Occupied bandwidth (Hz) measured inside a window around the carrier."""
    low = channel_centre_hz - search_half_width_hz
    high = channel_centre_hz + search_half_width_hz
    mask = (spectrum.frequencies_hz >= low) & (spectrum.frequencies_hz <= high)
    if np.count_nonzero(mask) < 16:
        raise MeasurementError("spectrum does not cover the requested measurement window")
    windowed = SpectrumEstimate(
        frequencies_hz=spectrum.frequencies_hz[mask],
        psd=spectrum.psd[mask],
        resolution_hz=spectrum.resolution_hz,
        two_sided=spectrum.two_sided,
    )
    bandwidth, _, _ = occupied_bandwidth(windowed, power_fraction=power_fraction)
    return bandwidth


def measure_evm(
    reconstructor: NonuniformReconstructor,
    burst: TransmissionResult,
    max_symbols: int = 256,
) -> float:
    """EVM (percent) of the reconstructed output against the transmitted symbols.

    The reconstructed output is demodulated with the transmitter's own
    matched filter, sampled at the known symbol instants, scaled/rotated onto
    the reference constellation by a least-squares complex gain (the BIST
    knows the transmitted data), and compared symbol by symbol.
    """
    if not isinstance(burst, TransmissionResult):
        raise ValidationError("burst must be a TransmissionResult")
    config = burst.config
    envelope_rate = config.envelope_sample_rate
    valid_low, valid_high = reconstructor.valid_time_range()
    times, envelope = reconstructed_envelope(
        reconstructor,
        carrier_frequency_hz=config.carrier_frequency_hz,
        start_time=valid_low,
        stop_time=valid_high,
        envelope_rate=envelope_rate,
    )
    # Matched filter using the transmitter's SRRC taps.
    matched = np.convolve(envelope, np.conj(burst_pulse_taps(burst)[::-1]))
    group_delay = (burst_pulse_taps(burst).size - 1) // 2
    matched = matched[group_delay : group_delay + envelope.size]

    # Symbol instants: the transmitted symbol n sits at time n * Tsym
    # (the transmitter trimmed its shaping transients), offset by the SRRC
    # group delay already removed above.  The matched-filter output is
    # band-limited, so it is evaluated at the exact symbol instants by sinc
    # interpolation rather than nearest-sample picking (which would add
    # timing-error ISI of up to half an envelope sample).
    symbol_period = 1.0 / config.symbol_rate_hz
    num_symbols = min(int(max_symbols), burst.symbols.size)
    symbol_times = np.arange(num_symbols) * symbol_period
    margin = 2.0 / envelope_rate
    usable = (symbol_times >= times[0] + margin) & (symbol_times <= times[-1] - margin)
    if np.count_nonzero(usable) < 16:
        raise MeasurementError("too few symbols fall inside the reconstructed interval for EVM")
    symbol_times = symbol_times[usable]
    reference = burst.symbols[:num_symbols][usable]

    received = sinc_interpolate(
        matched, envelope_rate, symbol_times, start_time=times[0], num_taps=32
    )

    # Least-squares complex gain onto the reference constellation.
    gain = np.vdot(received, reference) / np.vdot(received, received)
    aligned = received * gain
    return error_vector_magnitude(reference, aligned, as_percent=True)


def measure_ofdm_evm(
    reconstructor: NonuniformReconstructor,
    burst: TransmissionResult,
    timing_backoff: int | None = None,
    dense_render: tuple | None = None,
) -> OfdmGridMetrics:
    """Per-subcarrier EVM and spectral flatness of a reconstructed OFDM burst.

    The reconstructed output is mixed down to the complex envelope,
    band-limit interpolated onto the exact sample grid of every OFDM symbol
    that falls completely inside the reconstructor's valid interval, and
    demodulated with the synchronized :class:`~repro.signals.ofdm.OfdmDemodulator`
    (the burst starts at t = 0, so symbol boundaries are known exactly).
    The received grid is compared against the known transmitted grid after
    a least-squares common complex-gain alignment.

    Parameters
    ----------
    reconstructor:
        The calibrated nonuniform reconstructor.
    burst:
        The transmission whose data grid is the reference; its
        configuration must carry OFDM parameters.
    timing_backoff:
        FFT-window advance into the cyclic prefix, in critical samples
        (phase-compensated exactly); defaults to a quarter of the CP, which
        keeps the window inside the ISI-free region under small residual
        timing error in either direction.
    dense_render:
        Optional ``(times, samples, sample_rate)`` dense render of the
        reconstruction over its valid interval (as returned by
        :func:`render_uniform`), letting the caller share one render
        between this and the spectrum measurement; the rate should be an
        integer multiple of the burst's envelope rate.  When ``None``, the
        reconstruction is rendered here at
        :data:`OFDM_DENSE_OVERSAMPLING` times the band's upper edge.
    """
    if not isinstance(burst, TransmissionResult):
        raise ValidationError("burst must be a TransmissionResult")
    config = burst.config
    params = config.ofdm
    if params is None:
        raise MeasurementError("measure_ofdm_evm needs an OFDM burst (config.ofdm is None)")
    if timing_backoff is None:
        timing_backoff = params.cp_length // 4
    envelope_rate = config.envelope_sample_rate
    if dense_render is None:
        valid_low, valid_high = reconstructor.valid_time_range()
        band = reconstructor.kernel.band
        dense_rate = (
            np.ceil(OFDM_DENSE_OVERSAMPLING * band.f_high / envelope_rate) * envelope_rate
        )
        dense_render = render_uniform(
            reconstructor, valid_low, valid_high, sample_rate=dense_rate
        )
    dense_times, dense_samples, dense_rate = dense_render
    times, envelope = envelope_from_dense_samples(
        dense_times,
        dense_samples,
        dense_rate,
        carrier_frequency_hz=config.carrier_frequency_hz,
        envelope_rate=envelope_rate,
    )

    symbol_duration = params.symbol_duration_seconds(config.symbol_rate_hz)
    margin = 4.0 / envelope_rate
    first_symbol = int(np.ceil((times[0] + margin) / symbol_duration))
    last_symbol = int(np.floor((times[-1] - margin) / symbol_duration)) - 1
    total_symbols = burst.symbols.size // params.num_data_subcarriers
    last_symbol = min(last_symbol, total_symbols - 1)
    num_symbols = last_symbol - first_symbol + 1
    if num_symbols < 2:
        raise MeasurementError(
            "fewer than two whole OFDM symbols fall inside the reconstructed "
            "interval; acquire a longer record or shorten the OFDM symbol"
        )

    # Resample the envelope onto the exact OFDM sample grid of the kept
    # symbols (band-limited interpolation; the grids are not phase-aligned).
    samples_per_symbol = params.symbol_length * config.samples_per_symbol
    grid_times = first_symbol * symbol_duration + (
        np.arange(num_symbols * samples_per_symbol) / envelope_rate
    )
    stream = sinc_interpolate(
        envelope, envelope_rate, grid_times, start_time=times[0], num_taps=32
    )

    demodulator = OfdmDemodulator(params, oversampling=config.samples_per_symbol)
    received = demodulator.demodulate(
        stream, num_symbols=num_symbols, timing_backoff=timing_backoff
    )
    reference = build_used_grid(params, burst.symbols)[first_symbol : last_symbol + 1]
    return ofdm_grid_metrics(params, reference, received)


def burst_pulse_taps(burst: TransmissionResult) -> np.ndarray:
    """The SRRC taps used by the transmitter that produced ``burst``."""
    from ..signals.pulse_shaping import root_raised_cosine_taps

    config = burst.config
    return root_raised_cosine_taps(
        config.samples_per_symbol, config.pulse_span_symbols, config.rolloff
    )


@dataclass(frozen=True)
class TxMeasurements:
    """Bundle of transmitter measurements extracted from one reconstruction.

    Attributes
    ----------
    output_power:
        Mean power of the reconstructed passband waveform.
    acpr_db:
        ACPR dictionary (``lower_db`` / ``upper_db`` / ``worst_db``).
    occupied_bandwidth_hz:
        99 % occupied bandwidth.
    evm_percent:
        RMS EVM against the transmitted symbols (``None`` when not measured).
        For OFDM bursts this is the aggregate over every used subcarrier.
    spectrum:
        The Welch PSD estimate the other quantities were derived from.
    per_subcarrier_evm_percent:
        Per-subcarrier RMS EVM (ascending subcarrier order) for OFDM
        bursts; ``None`` for single-carrier measurements.
    subcarrier_indices:
        Signed used-subcarrier indices matching the per-subcarrier EVM
        entries (``None`` for single-carrier).
    spectral_flatness_db:
        Per-subcarrier received-power spread (dB) for OFDM bursts;
        ``None`` for single-carrier.
    """

    output_power: float
    acpr_db: dict
    occupied_bandwidth_hz: float
    evm_percent: float | None
    spectrum: SpectrumEstimate
    per_subcarrier_evm_percent: tuple | None = None
    subcarrier_indices: tuple | None = None
    spectral_flatness_db: float | None = None

    def to_dict(self) -> dict:
        """Plain JSON-friendly dictionary (see :meth:`from_dict`)."""
        return {
            "output_power": self.output_power,
            "acpr_db": dict(self.acpr_db),
            "occupied_bandwidth_hz": self.occupied_bandwidth_hz,
            "evm_percent": self.evm_percent,
            "spectrum": self.spectrum.to_dict(),
            "per_subcarrier_evm_percent": (
                None
                if self.per_subcarrier_evm_percent is None
                else [float(v) for v in self.per_subcarrier_evm_percent]
            ),
            "subcarrier_indices": (
                None
                if self.subcarrier_indices is None
                else [int(k) for k in self.subcarrier_indices]
            ),
            "spectral_flatness_db": self.spectral_flatness_db,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TxMeasurements":
        """Rebuild measurements serialized with :meth:`to_dict`.

        Archives written before the OFDM family simply lack the
        per-subcarrier keys and load with those fields ``None``.
        """
        per_subcarrier = data.get("per_subcarrier_evm_percent")
        indices = data.get("subcarrier_indices")
        return cls(
            output_power=data["output_power"],
            acpr_db=dict(data["acpr_db"]),
            occupied_bandwidth_hz=data["occupied_bandwidth_hz"],
            evm_percent=data["evm_percent"],
            spectrum=SpectrumEstimate.from_dict(data["spectrum"]),
            per_subcarrier_evm_percent=(
                None if per_subcarrier is None else tuple(float(v) for v in per_subcarrier)
            ),
            subcarrier_indices=None if indices is None else tuple(int(k) for k in indices),
            spectral_flatness_db=data.get("spectral_flatness_db"),
        )
