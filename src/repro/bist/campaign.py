"""Multistandard BIST campaigns.

An SDR must be verified under every waveform it supports; a campaign runs
the BIST engine across a set of waveform profiles and impairment scenarios
(fault injection) and aggregates the reports.  This is the "flexible,
scalable across a large set of complex specifications" promise of the paper:
the same hardware and the same DSP pipeline are reused for every profile by
merely re-parameterising the acquisition.

This module holds the campaign *data model* (scenarios, converter
specifications, per-scenario execution) and the backward-compatible
:class:`BistCampaign` facade; the parallel orchestration machinery lives in
:mod:`repro.bist.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..adc.adc import AdcChannel
from ..adc.mismatch import ChannelMismatch
from ..adc.quantizer import UniformQuantizer
from ..adc.tiadc import BpTiadc, DigitallyControlledDelayElement
from ..errors import ConfigurationError, ValidationError
from ..signals.standards import WaveformProfile, get_profile
from ..transmitter.chain import HomodyneTransmitter
from ..transmitter.config import ImpairmentConfig, TransmitterConfig
from ..utils.serialization import field_dict, known_field_kwargs
from .engine import BistConfig, TransmitterBist
from .report import BistReport, CampaignSummary

__all__ = [
    "CampaignScenario",
    "CampaignResult",
    "BistCampaign",
    "ConverterSpec",
    "default_converter",
    "scenario_bandwidth",
    "scenario_num_samples_fast",
    "scenario_bist_config",
    "build_scenario_engine",
    "execute_scenario",
    "MIN_OFDM_SYMBOLS_IN_WINDOW",
]


def default_converter(
    acquisition_bandwidth_hz: float,
    resolution_bits: int = 10,
    skew_jitter_rms_seconds: float = 3.0e-12,
    dcde_static_error_seconds: float = 0.0,
    channel1_skew_seconds: float = 0.0,
    full_scale: float = 3.0,
    seed: int | None = 99,
) -> BpTiadc:
    """Build the paper's BP-TIADC: two 10-bit channels, 3 ps rms skew jitter.

    ``dcde_static_error_seconds`` and ``channel1_skew_seconds`` inject the
    unknown timing errors that make the programmed delay differ from the
    physical one — the situation the LMS calibration exists to handle.
    """
    return ConverterSpec(
        resolution_bits=resolution_bits,
        skew_jitter_rms_seconds=skew_jitter_rms_seconds,
        dcde_static_error_seconds=dcde_static_error_seconds,
        channel1_skew_seconds=channel1_skew_seconds,
        full_scale=full_scale,
        seed=seed,
    ).build(acquisition_bandwidth_hz)


@dataclass(frozen=True)
class ConverterSpec:
    """Declarative, picklable description of the BIST acquisition converter.

    :class:`BistCampaign` historically accepted an arbitrary
    ``converter_factory`` callable; lambdas and closures cannot cross process
    boundaries, so the parallel :class:`~repro.bist.runner.CampaignRunner`
    needs a *value* that builds the converter instead.  A ``ConverterSpec``
    captures the same knobs as :func:`default_converter` plus the channel-1
    static gain/offset mismatch and an optional channel-1 input-bandwidth
    limitation (``channel1_bandwidth_hz`` with the ``bandwidth_reference_hz``
    carrier it is evaluated at), and is itself the factory: calling it with
    the acquisition bandwidth returns the :class:`~repro.adc.tiadc.BpTiadc`.

    With the mismatch fields at zero the built converter is identical to the
    one produced by :func:`default_converter` with the same arguments.
    """

    resolution_bits: int = 10
    skew_jitter_rms_seconds: float = 3.0e-12
    dcde_static_error_seconds: float = 0.0
    channel1_skew_seconds: float = 0.0
    channel1_gain_error: float = 0.0
    channel1_offset: float = 0.0
    channel1_bandwidth_hz: float | None = None
    bandwidth_reference_hz: float | None = None
    full_scale: float = 3.0
    seed: int | None = 99

    def build(self, acquisition_bandwidth_hz: float) -> BpTiadc:
        """Construct the converter for the given per-channel rate."""
        channel1_mismatch = ChannelMismatch(
            offset=self.channel1_offset,
            gain_error=self.channel1_gain_error,
            skew_seconds=self.channel1_skew_seconds,
        )
        if self.channel1_bandwidth_hz is not None:
            # Channel-1 input-bandwidth limitation, folded into an equivalent
            # gain/skew mismatch at the acquisition carrier (see
            # ChannelMismatch.with_input_bandwidth).
            if self.bandwidth_reference_hz is None:
                raise ConfigurationError(
                    "channel1_bandwidth_hz needs bandwidth_reference_hz (the acquisition "
                    "carrier the single-pole rolloff is evaluated at)"
                )
            channel1_mismatch = channel1_mismatch.with_input_bandwidth(
                self.channel1_bandwidth_hz, self.bandwidth_reference_hz
            )
        return BpTiadc(
            sample_rate=acquisition_bandwidth_hz,
            dcde=DigitallyControlledDelayElement(
                static_error_seconds=self.dcde_static_error_seconds
            ),
            channel0=AdcChannel(
                quantizer=UniformQuantizer(self.resolution_bits, self.full_scale),
                mismatch=ChannelMismatch(),
                seed=None,
            ),
            channel1=AdcChannel(
                quantizer=UniformQuantizer(self.resolution_bits, self.full_scale),
                mismatch=channel1_mismatch,
                seed=None,
            ),
            skew_jitter_rms_seconds=self.skew_jitter_rms_seconds,
            seed=self.seed,
        )

    def __call__(self, acquisition_bandwidth_hz: float) -> BpTiadc:
        return self.build(acquisition_bandwidth_hz)

    def to_dict(self) -> dict:
        """Plain JSON-friendly dictionary (exact round trip via :meth:`from_dict`).

        Every field is a scalar, so the dictionary doubles as the spec's
        canonical form for campaign-store fingerprinting (see
        :mod:`repro.store.fingerprint`).
        """
        return field_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ConverterSpec":
        """Rebuild a spec serialized with :meth:`to_dict` (unknown keys ignored)."""
        return cls(**known_field_kwargs(cls, data))


@dataclass(frozen=True)
class CampaignScenario:
    """One campaign entry: a waveform profile plus an impairment scenario.

    Attributes
    ----------
    profile:
        The waveform profile (or its name) to test under.
    impairments:
        Transmitter impairments to inject; the fault-free default exercises
        the "good unit" path.
    label:
        Human-readable scenario label (defaults to the profile name).
    num_symbols:
        Optional explicit burst length in symbols.
    converter:
        Optional per-scenario converter specification; when set it overrides
        the campaign-level converter factory, which lets a scenario grid
        sweep acquisition-side faults (channel skew, DCDE error, gain/offset
        mismatch) alongside transmitter-side ones.
    """

    profile: WaveformProfile | str
    impairments: ImpairmentConfig = field(default_factory=ImpairmentConfig)
    label: str | None = None
    num_symbols: int | None = None
    converter: ConverterSpec | None = None

    def resolved_profile(self) -> WaveformProfile:
        """The profile object (resolving a name if necessary)."""
        if isinstance(self.profile, str):
            return get_profile(self.profile)
        return self.profile

    def resolved_label(self) -> str:
        """The label shown in the campaign summary."""
        return self.label if self.label is not None else self.resolved_profile().name


def scenario_bandwidth(profile: WaveformProfile, bist_config: BistConfig) -> float:
    """Acquisition bandwidth used for a profile.

    The configuration's bandwidth is used whenever it comfortably contains
    the profile's occupied bandwidth; narrowband profiles scale the
    acquisition down to keep the two-rate scheme meaningful.
    """
    nominal = bist_config.acquisition_bandwidth_hz
    needed = 4.0 * profile.occupied_bandwidth_hz
    return min(nominal, max(needed, 2.5 * profile.occupied_bandwidth_hz))


#: Whole OFDM symbols the fast acquisition window is sized to contain (the
#: per-subcarrier EVM averages over them; fewer than two is unusable).
MIN_OFDM_SYMBOLS_IN_WINDOW = 6


def scenario_num_samples_fast(
    profile: WaveformProfile, bandwidth_hz: float, base_config: BistConfig
) -> int:
    """Fast-acquisition sample count adapted to the profile's waveform family.

    Single-carrier profiles keep the configured count.  OFDM symbols are
    long compared to the acquisition window (one symbol spans
    ``fft + cp`` critical samples at a rate comparable to the acquisition
    bandwidth), so the window is grown — never shrunk — until it holds
    :data:`MIN_OFDM_SYMBOLS_IN_WINDOW` whole symbols plus the
    reconstruction-kernel margin the valid interval loses at each edge.
    """
    if profile.family != "ofdm":
        return base_config.num_samples_fast
    symbol_duration = profile.ofdm.symbol_duration_seconds(profile.symbol_rate_hz)
    needed = int(
        np.ceil(MIN_OFDM_SYMBOLS_IN_WINDOW * symbol_duration * bandwidth_hz)
    ) + base_config.num_taps + 16
    return max(base_config.num_samples_fast, needed)


def scenario_bist_config(
    scenario: CampaignScenario,
    base_config: BistConfig,
    seed: int | None | type(...) = ...,
) -> BistConfig:
    """The per-scenario engine configuration derived from a campaign-level one.

    The acquisition bandwidth adapts to the profile (see
    :func:`scenario_bandwidth`) and the programmed DCDE delay is clamped so
    the Kohlenberg reconstruction filter stays away from its poles for the
    profile's carrier.  ``seed`` (when not left at the ``...`` sentinel)
    overrides the base configuration's seed, which is how the runner applies
    deterministic per-scenario seeding.
    """
    profile = scenario.resolved_profile()
    bandwidth = scenario_bandwidth(profile, base_config)
    clamped_delay = min(
        base_config.programmed_delay_seconds,
        0.35 / ((2.0 * profile.carrier_frequency_hz / bandwidth + 2.0) * bandwidth),
    )
    config = replace(
        base_config,
        acquisition_bandwidth_hz=bandwidth,
        programmed_delay_seconds=clamped_delay,
        num_samples_fast=scenario_num_samples_fast(profile, bandwidth, base_config),
    )
    if seed is not ...:
        config = replace(config, seed=seed)
    return config


def build_scenario_engine(
    scenario: CampaignScenario,
    bist_config: BistConfig | None = None,
    converter_factory=None,
    seed: int | None | type(...) = ...,
    plan_structure_cache=None,
):
    """Construct the engine and burst for one scenario without running it.

    Factored out of :func:`execute_scenario` so the campaign compiler can
    drive the engine's :meth:`~repro.bist.engine.TransmitterBist.prepare` /
    :meth:`~repro.bist.engine.TransmitterBist.finish` halves separately while
    keeping the seed-derivation arithmetic in exactly one place.  Returns
    ``(engine, burst)`` where ``burst`` is ``None`` unless the scenario pins
    an explicit ``num_symbols`` (matching ``execute_scenario``'s behaviour of
    letting the engine transmit for its required duration otherwise).
    """
    if not isinstance(scenario, CampaignScenario):
        raise ValidationError("scenario must be a CampaignScenario")
    base_config = bist_config if bist_config is not None else BistConfig()
    profile = scenario.resolved_profile()
    config = scenario_bist_config(scenario, base_config, seed=seed)
    factory = scenario.converter
    if factory is None:
        factory = converter_factory if converter_factory is not None else ConverterSpec()
    if seed is ... :
        transmitter_config = TransmitterConfig.from_profile(profile, impairments=scenario.impairments)
    else:
        transmitter_seed = None if seed is None else (int(seed) + 0x5DEECE66) % (2**32)
        transmitter_config = TransmitterConfig.from_profile(
            profile, impairments=scenario.impairments, seed=transmitter_seed
        )
        if isinstance(factory, ConverterSpec):
            converter_seed = None if seed is None else (int(seed) + 0x2545F491) % (2**32)
            factory = replace(factory, seed=converter_seed)
    transmitter = HomodyneTransmitter(transmitter_config)
    converter = factory(config.acquisition_bandwidth_hz)
    engine = TransmitterBist(
        transmitter,
        converter,
        profile=profile,
        config=config,
        plan_structure_cache=plan_structure_cache,
    )
    if scenario.num_symbols is not None:
        burst = transmitter.transmit(num_symbols=scenario.num_symbols)
    else:
        burst = None
    return engine, burst


def execute_scenario(
    scenario: CampaignScenario,
    bist_config: BistConfig | None = None,
    converter_factory=None,
    seed: int | None | type(...) = ...,
) -> BistReport:
    """Run the complete BIST for one campaign scenario.

    This is the (pure, picklable-argument) unit of work the campaign runner
    distributes: it builds a fresh transmitter and converter for the
    scenario, derives the per-scenario engine configuration and executes the
    full acquisition/calibration/measurement loop.

    Parameters
    ----------
    scenario:
        The scenario to execute.
    bist_config:
        Campaign-level engine configuration (defaults to ``BistConfig()``).
    converter_factory:
        Callable ``(acquisition_bandwidth_hz) -> BpTiadc``; used when the
        scenario carries no :class:`ConverterSpec` of its own.  Defaults to
        a nominal :class:`ConverterSpec`.
    seed:
        Optional override of the run's randomness (the ``...`` sentinel keeps
        the historical defaults).  The override reseeds the engine's
        cost-function instants, the transmitter (symbols, noise, phase noise)
        and — when the effective factory is a :class:`ConverterSpec` — the
        converter's jitter realisation, each on a distinct derived stream;
        an arbitrary factory callable is used as-is.
    """
    engine, burst = build_scenario_engine(
        scenario, bist_config=bist_config, converter_factory=converter_factory, seed=seed
    )
    return engine.run(burst)


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated result of a campaign run."""

    entries: tuple

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValidationError("a campaign result needs at least one entry")

    @property
    def reports(self) -> list[BistReport]:
        """The individual BIST reports, in execution order."""
        return [report for _, report in self.entries]

    @property
    def all_passed(self) -> bool:
        """Whether every scenario passed."""
        return all(report.passed for report in self.reports)

    def failures(self) -> list[str]:
        """Labels of the scenarios that failed."""
        return [label for label, report in self.entries if not report.passed]

    def summary(self) -> CampaignSummary:
        """Aggregate statistics (per-profile pass rates, margins, skew errors)."""
        return CampaignSummary.from_entries(self.entries)

    def summary_table(self) -> str:
        """A fixed-width text table of the campaign outcome."""
        header = f"{'scenario':<32} {'verdict':<8} {'ACPR dB':>9} {'OBW MHz':>9} {'EVM %':>7}"
        lines = [header, "-" * len(header)]
        for label, report in self.entries:
            evm = report.measurements.evm_percent
            lines.append(
                f"{label:<32} {report.verdict.value:<8} "
                f"{report.measurements.acpr_db['worst_db']:>9.1f} "
                f"{report.measurements.occupied_bandwidth_hz / 1e6:>9.2f} "
                f"{'  n/a' if evm is None else f'{evm:>7.2f}'}"
            )
        return "\n".join(lines)


class BistCampaign:
    """Run the BIST across several waveform profiles / fault scenarios.

    This is the stable, high-level facade; execution is delegated to
    :class:`~repro.bist.runner.CampaignRunner`, which supports process-pool
    parallelism and structured per-scenario error capture.

    Parameters
    ----------
    scenarios:
        The scenarios to execute.
    bist_config:
        Engine configuration shared by every scenario (the per-channel
        acquisition rate adapts automatically to narrowband profiles so that
        the uniqueness conditions stay comfortable).
    converter_factory:
        Callable ``(acquisition_bandwidth_hz) -> BpTiadc`` building the
        converter for each scenario; defaults to :func:`default_converter`.
        Must be picklable (e.g. a :class:`ConverterSpec`) when running with
        ``max_workers > 1``.
    max_workers:
        Default worker count for :meth:`run`; 1 executes serially in-process,
        larger values fan scenarios out over a process pool.
    """

    def __init__(
        self,
        scenarios,
        bist_config: BistConfig | None = None,
        converter_factory=None,
        max_workers: int = 1,
    ) -> None:
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ValidationError("a campaign needs at least one scenario")
        for scenario in scenarios:
            if not isinstance(scenario, CampaignScenario):
                raise ValidationError("all scenarios must be CampaignScenario instances")
        self._scenarios = scenarios
        self._bist_config = bist_config if bist_config is not None else BistConfig()
        self._converter_factory = (
            converter_factory if converter_factory is not None else default_converter
        )
        self._max_workers = max_workers

    @property
    def scenarios(self) -> tuple:
        """The campaign's scenarios, in execution order."""
        return self._scenarios

    def _scenario_bandwidth(self, profile: WaveformProfile) -> float:
        """Acquisition bandwidth used for a profile (see :func:`scenario_bandwidth`)."""
        return scenario_bandwidth(profile, self._bist_config)

    def run(self, max_workers: int | None = None) -> CampaignResult:
        """Execute every scenario and aggregate the reports.

        Raises :class:`~repro.errors.CampaignExecutionError` if any scenario
        raised instead of producing a report; use
        :meth:`~repro.bist.runner.CampaignRunner.run` directly for structured
        per-scenario error capture.
        """
        from .runner import CampaignRunner

        runner = CampaignRunner(
            bist_config=self._bist_config,
            converter_factory=self._converter_factory,
            max_workers=self._max_workers if max_workers is None else max_workers,
        )
        return runner.run(self._scenarios).to_result()
