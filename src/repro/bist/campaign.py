"""Multistandard BIST campaigns.

An SDR must be verified under every waveform it supports; a campaign runs
the BIST engine across a set of waveform profiles and impairment scenarios
(fault injection) and aggregates the reports.  This is the "flexible,
scalable across a large set of complex specifications" promise of the paper:
the same hardware and the same DSP pipeline are reused for every profile by
merely re-parameterising the acquisition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..adc.adc import AdcChannel
from ..adc.mismatch import ChannelMismatch
from ..adc.quantizer import UniformQuantizer
from ..adc.tiadc import BpTiadc, DigitallyControlledDelayElement
from ..errors import ValidationError
from ..signals.standards import WaveformProfile, get_profile
from ..transmitter.chain import HomodyneTransmitter
from ..transmitter.config import ImpairmentConfig, TransmitterConfig
from .engine import BistConfig, TransmitterBist
from .report import BistReport

__all__ = ["CampaignScenario", "CampaignResult", "BistCampaign", "default_converter"]


def default_converter(
    acquisition_bandwidth_hz: float,
    resolution_bits: int = 10,
    skew_jitter_rms_seconds: float = 3.0e-12,
    dcde_static_error_seconds: float = 0.0,
    channel1_skew_seconds: float = 0.0,
    full_scale: float = 3.0,
    seed: int | None = 99,
) -> BpTiadc:
    """Build the paper's BP-TIADC: two 10-bit channels, 3 ps rms skew jitter.

    ``dcde_static_error_seconds`` and ``channel1_skew_seconds`` inject the
    unknown timing errors that make the programmed delay differ from the
    physical one — the situation the LMS calibration exists to handle.
    """
    return BpTiadc(
        sample_rate=acquisition_bandwidth_hz,
        dcde=DigitallyControlledDelayElement(static_error_seconds=dcde_static_error_seconds),
        channel0=AdcChannel(
            quantizer=UniformQuantizer(resolution_bits, full_scale),
            mismatch=ChannelMismatch(),
            seed=None,
        ),
        channel1=AdcChannel(
            quantizer=UniformQuantizer(resolution_bits, full_scale),
            mismatch=ChannelMismatch(skew_seconds=channel1_skew_seconds),
            seed=None,
        ),
        skew_jitter_rms_seconds=skew_jitter_rms_seconds,
        seed=seed,
    )


@dataclass(frozen=True)
class CampaignScenario:
    """One campaign entry: a waveform profile plus an impairment scenario.

    Attributes
    ----------
    profile:
        The waveform profile (or its name) to test under.
    impairments:
        Transmitter impairments to inject; the fault-free default exercises
        the "good unit" path.
    label:
        Human-readable scenario label (defaults to the profile name).
    num_symbols:
        Optional explicit burst length in symbols.
    """

    profile: WaveformProfile | str
    impairments: ImpairmentConfig = field(default_factory=ImpairmentConfig)
    label: str | None = None
    num_symbols: int | None = None

    def resolved_profile(self) -> WaveformProfile:
        """The profile object (resolving a name if necessary)."""
        if isinstance(self.profile, str):
            return get_profile(self.profile)
        return self.profile

    def resolved_label(self) -> str:
        """The label shown in the campaign summary."""
        return self.label if self.label is not None else self.resolved_profile().name


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated result of a campaign run."""

    entries: tuple

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValidationError("a campaign result needs at least one entry")

    @property
    def reports(self) -> list[BistReport]:
        """The individual BIST reports, in execution order."""
        return [report for _, report in self.entries]

    @property
    def all_passed(self) -> bool:
        """Whether every scenario passed."""
        return all(report.passed for report in self.reports)

    def failures(self) -> list[str]:
        """Labels of the scenarios that failed."""
        return [label for label, report in self.entries if not report.passed]

    def summary_table(self) -> str:
        """A fixed-width text table of the campaign outcome."""
        header = f"{'scenario':<32} {'verdict':<8} {'ACPR dB':>9} {'OBW MHz':>9} {'EVM %':>7}"
        lines = [header, "-" * len(header)]
        for label, report in self.entries:
            evm = report.measurements.evm_percent
            lines.append(
                f"{label:<32} {report.verdict.value:<8} "
                f"{report.measurements.acpr_db['worst_db']:>9.1f} "
                f"{report.measurements.occupied_bandwidth_hz / 1e6:>9.2f} "
                f"{'  n/a' if evm is None else f'{evm:>7.2f}'}"
            )
        return "\n".join(lines)


class BistCampaign:
    """Run the BIST across several waveform profiles / fault scenarios.

    Parameters
    ----------
    scenarios:
        The scenarios to execute.
    bist_config:
        Engine configuration shared by every scenario (the per-channel
        acquisition rate adapts automatically to narrowband profiles so that
        the uniqueness conditions stay comfortable).
    converter_factory:
        Callable ``(acquisition_bandwidth_hz) -> BpTiadc`` building the
        converter for each scenario; defaults to :func:`default_converter`.
    """

    def __init__(
        self,
        scenarios,
        bist_config: BistConfig | None = None,
        converter_factory=None,
    ) -> None:
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ValidationError("a campaign needs at least one scenario")
        for scenario in scenarios:
            if not isinstance(scenario, CampaignScenario):
                raise ValidationError("all scenarios must be CampaignScenario instances")
        self._scenarios = scenarios
        self._bist_config = bist_config if bist_config is not None else BistConfig()
        self._converter_factory = (
            converter_factory if converter_factory is not None else default_converter
        )

    def _scenario_bandwidth(self, profile: WaveformProfile) -> float:
        """Acquisition bandwidth used for a profile.

        The default configuration's bandwidth is used whenever it comfortably
        contains the profile's occupied bandwidth; narrowband profiles scale
        the acquisition down to keep the two-rate scheme meaningful.
        """
        nominal = self._bist_config.acquisition_bandwidth_hz
        needed = 4.0 * profile.occupied_bandwidth_hz
        return min(nominal, max(needed, 2.5 * profile.occupied_bandwidth_hz))

    def run(self) -> CampaignResult:
        """Execute every scenario and aggregate the reports."""
        entries = []
        for scenario in self._scenarios:
            profile = scenario.resolved_profile()
            bandwidth = self._scenario_bandwidth(profile)
            config = BistConfig(
                acquisition_bandwidth_hz=bandwidth,
                num_samples_fast=self._bist_config.num_samples_fast,
                num_samples_slow=self._bist_config.num_samples_slow,
                programmed_delay_seconds=min(
                    self._bist_config.programmed_delay_seconds,
                    0.35 / ((2.0 * profile.carrier_frequency_hz / bandwidth + 2.0) * bandwidth),
                ),
                num_taps=self._bist_config.num_taps,
                lms_initial_step_seconds=self._bist_config.lms_initial_step_seconds,
                lms_max_iterations=self._bist_config.lms_max_iterations,
                num_cost_points=self._bist_config.num_cost_points,
                correct_static_mismatch=self._bist_config.correct_static_mismatch,
                measure_evm_enabled=self._bist_config.measure_evm_enabled,
                seed=self._bist_config.seed,
            )
            transmitter = HomodyneTransmitter(
                TransmitterConfig.from_profile(profile, impairments=scenario.impairments)
            )
            converter = self._converter_factory(bandwidth)
            engine = TransmitterBist(transmitter, converter, profile=profile, config=config)
            if scenario.num_symbols is not None:
                burst = transmitter.transmit(num_symbols=scenario.num_symbols)
            else:
                burst = None
            report = engine.run(burst)
            entries.append((scenario.resolved_label(), report))
        return CampaignResult(entries=tuple(entries))
