"""Lint: test module basenames must be unique across every test directory.

The test tree has no ``__init__.py`` packages, so pytest imports each test
module by its *basename* (rootdir-relative imports are off).  Two files
named ``test_cli.py`` in different directories would collide in
``sys.modules`` and one of them would silently shadow the other — an entire
test file skipped without a failure.  This check fails CI the moment a
duplicate basename appears.

Run with:  python tools/check_test_basenames.py [TESTS_DIR]
"""

from __future__ import annotations

import sys
from collections import defaultdict
from pathlib import Path


def find_duplicates(tests_dir: Path) -> dict:
    """Map of duplicated basename -> sorted list of colliding paths."""
    by_basename = defaultdict(list)
    for path in sorted(tests_dir.rglob("test_*.py")):
        by_basename[path.name].append(path)
    return {
        name: paths for name, paths in sorted(by_basename.items()) if len(paths) > 1
    }


def main(argv: list | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tests_dir = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "tests"
    if not tests_dir.is_dir():
        print(f"error: no test directory at {tests_dir}", file=sys.stderr)
        return 2
    duplicates = find_duplicates(tests_dir)
    if not duplicates:
        count = sum(1 for _ in tests_dir.rglob("test_*.py"))
        print(f"ok: {count} test module(s), all basenames unique")
        return 0
    for name, paths in duplicates.items():
        print(f"duplicate test basename {name!r}:", file=sys.stderr)
        for path in paths:
            print(f"  {path}", file=sys.stderr)
    print(
        "\ntest modules are imported by basename (no __init__.py packages); "
        "rename the colliding files so every basename is unique",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
