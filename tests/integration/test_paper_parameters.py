"""Integration tests at the paper's exact operating point (Section V).

These tests exercise the full acquisition + calibration + reconstruction
pipeline with the hardware models configured exactly as in the paper: QPSK
10 MHz / SRRC 0.5 / fc = 1 GHz transmitter, two 10-bit ADCs at B = 90 MHz and
B1 = 45 MHz, 3 ps rms time-skew jitter, D = 180 ps, 61-tap Kaiser-windowed
reconstruction, and N = 300 random evaluation instants.
"""

import numpy as np
import pytest

from repro.adc import AdcChannel, BpTiadc, DigitallyControlledDelayElement, UniformQuantizer
from repro.calibration import LmsSkewEstimator, SineFitSkewEstimator, SkewCostFunction
from repro.dsp import relative_reconstruction_error
from repro.sampling import (
    BandpassBand,
    IdealNonuniformSampler,
    NonuniformReconstructor,
    band_order,
    delay_upper_bound,
)
from repro.signals import single_tone
from repro.transmitter import HomodyneTransmitter, TransmitterConfig


CARRIER = 1.0e9
BANDWIDTH = 90.0e6
DELAY = 180.0e-12
BAND = BandpassBand.from_centre(CARRIER, BANDWIDTH)


def paper_converter(sample_rate=BANDWIDTH, seed=77):
    """The paper's BP-TIADC: two 10-bit ADCs with 3 ps rms skew jitter."""
    return BpTiadc(
        sample_rate=sample_rate,
        dcde=DigitallyControlledDelayElement(resolution_seconds=1e-13),
        channel0=AdcChannel(quantizer=UniformQuantizer(10, 3.0), seed=seed + 1),
        channel1=AdcChannel(quantizer=UniformQuantizer(10, 3.0), seed=seed + 2),
        skew_jitter_rms_seconds=3.0e-12,
        seed=seed,
    )


@pytest.fixture(scope="module")
def paper_acquisitions():
    """Fast (B) and slow (B/2) acquisitions of one paper-configured burst."""
    transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=41))
    burst = transmitter.transmit_for_duration(5.2e-6)
    fast_adc = paper_converter(BANDWIDTH)
    fast_adc.program_delay(DELAY)
    slow_adc = fast_adc.with_sample_rate(BANDWIDTH / 2.0)
    fast = fast_adc.acquire(burst.rf_output, BAND, num_samples=400)
    slow = slow_adc.acquire(burst.rf_output, BAND, num_samples=200)
    return burst, fast, slow


class TestSectionVConstants:
    def test_band_orders(self):
        assert band_order(BAND) == (22, 23)
        # The B1 = 45 MHz acquisition band stays centred on the carrier, so its
        # low edge is 977.5 MHz and k1 = ceil(2 * 977.5 / 45) = 44.
        slow_band = BandpassBand.from_centre(CARRIER, BANDWIDTH / 2.0)
        assert band_order(slow_band) == (44, 45)

    def test_search_bound_483ps(self):
        assert delay_upper_bound(BAND) == pytest.approx(483e-12, rel=2e-3)

    def test_uniqueness_conditions_for_90_45_mhz(self, paper_acquisitions):
        _, fast, slow = paper_acquisitions
        cost = SkewCostFunction(fast, slow, num_evaluation_points=50, seed=1)
        assert cost.upper_bound == pytest.approx(483e-12, rel=2e-3)


class TestLmsOnHardwareModel:
    def test_lms_reaches_sub_picosecond_accuracy(self, paper_acquisitions):
        _, fast, slow = paper_acquisitions
        cost = SkewCostFunction(fast, slow, num_evaluation_points=300, seed=3)
        estimator = LmsSkewEstimator(cost, initial_step_seconds=1e-12, max_iterations=60)
        result = estimator.estimate(50e-12)
        assert result.converged
        assert abs(result.estimate - fast.delay) < 1.0e-12

    def test_reconstruction_error_about_one_percent(self, paper_acquisitions):
        """Table I: reconstruction with the LMS estimate lands near 1 % error."""
        burst, fast, slow = paper_acquisitions
        cost = SkewCostFunction(fast, slow, num_evaluation_points=300, seed=4)
        estimate = LmsSkewEstimator(cost, initial_step_seconds=1e-12).estimate(50e-12).estimate
        reconstructor = NonuniformReconstructor(fast, assumed_delay=estimate, num_taps=60)
        low, high = reconstructor.valid_time_range()
        times = np.random.default_rng(9).uniform(low, high, 300)
        error = relative_reconstruction_error(
            burst.rf_output.evaluate(times), reconstructor.evaluate(times)
        )
        assert error < 0.05  # percent-level, dominated by the 3 ps skew jitter

    def test_estimate_insensitive_to_starting_point(self, paper_acquisitions):
        _, fast, slow = paper_acquisitions
        cost = SkewCostFunction(fast, slow, num_evaluation_points=200, seed=5)
        estimates = [
            LmsSkewEstimator(cost, initial_step_seconds=1e-12).estimate(start).estimate
            for start in (50e-12, 400e-12)
        ]
        assert abs(estimates[0] - estimates[1]) < 0.5e-12


class TestSineFitBaselineComparison:
    def test_both_methods_reach_table1_accuracy(self):
        """Table I order of magnitude: both estimators resolve D to a few ps or better.

        The LMS additionally needs no dedicated test tone (it runs on the
        operational modulated signal), which is the paper's main qualitative
        argument for it; that property is asserted separately below.
        """
        true_delay = DELAY
        sine_fit_errors = {}
        for fraction in (0.4, 0.46):
            tone_frequency = BAND.f_low + fraction * BANDWIDTH
            tone = single_tone(tone_frequency, amplitude=0.9)
            adc = paper_converter(seed=int(fraction * 100))
            adc.program_delay(true_delay)
            sample_set = adc.acquire(tone, BAND, num_samples=400)
            estimator = SineFitSkewEstimator(tone_frequency_hz=tone_frequency)
            sine_fit_errors[fraction] = abs(
                estimator.estimate(sample_set).estimate - adc.true_delay
            )

        # LMS on the modulated signal with the same hardware impairments.
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=43))
        burst = transmitter.transmit_for_duration(5.2e-6)
        fast_adc = paper_converter(seed=91)
        fast_adc.program_delay(true_delay)
        slow_adc = fast_adc.with_sample_rate(BANDWIDTH / 2.0)
        fast = fast_adc.acquire(burst.rf_output, BAND, num_samples=400)
        slow = slow_adc.acquire(burst.rf_output, BAND, num_samples=200)
        cost = SkewCostFunction(fast, slow, num_evaluation_points=300, seed=7)
        lms_error = abs(
            LmsSkewEstimator(cost, initial_step_seconds=1e-12).estimate(50e-12).estimate
            - fast.delay
        )
        assert lms_error < 1.5e-12  # sub-1.5 ps, Table I territory
        assert all(error < 5.0e-12 for error in sine_fit_errors.values())

    def test_sine_fit_requires_dedicated_stimulus(self, paper_acquisitions):
        """The baseline cannot run on the operational modulated signal."""
        _, fast, _ = paper_acquisitions
        tone_frequency = BAND.f_low + 0.46 * BANDWIDTH
        estimator = SineFitSkewEstimator(tone_frequency_hz=tone_frequency)
        result = estimator.estimate(fast)
        assert abs(result.estimate - fast.delay) > 2e-12


class TestIdealVsHardwareAcquisition:
    def test_quantisation_and_jitter_raise_error_floor(self):
        """The impaired hardware reconstructs worse than the ideal sampler."""
        tone = single_tone(1.005e9, amplitude=0.8)
        ideal = IdealNonuniformSampler(BAND, delay=DELAY).acquire(tone, num_samples=400)
        adc = paper_converter(seed=13)
        adc.program_delay(DELAY)
        hardware = adc.acquire(tone, BAND, num_samples=400)
        rng = np.random.default_rng(2)

        ideal_reconstructor = NonuniformReconstructor(ideal, num_taps=60)
        hardware_reconstructor = NonuniformReconstructor(
            hardware, assumed_delay=hardware.delay, num_taps=60
        )
        low, high = ideal_reconstructor.valid_time_range()
        times = rng.uniform(low, high, 200)
        ideal_error = relative_reconstruction_error(
            tone.evaluate(times), ideal_reconstructor.evaluate(times)
        )
        hardware_error = relative_reconstruction_error(
            tone.evaluate(times), hardware_reconstructor.evaluate(times)
        )
        assert hardware_error > ideal_error
        assert hardware_error < 0.05
