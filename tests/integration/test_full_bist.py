"""End-to-end BIST integration: campaigns across profiles and fault injection."""

import pytest

from repro.bist import (
    BistCampaign,
    BistConfig,
    CampaignScenario,
    Verdict,
    default_converter,
)
from repro.rf import IqImbalance, RappAmplifier
from repro.transmitter import ImpairmentConfig


def small_bist_config():
    return BistConfig(
        num_samples_fast=256,
        num_samples_slow=128,
        lms_max_iterations=40,
        num_cost_points=120,
        measure_evm_enabled=False,
    )


@pytest.fixture(scope="module")
def campaign_result():
    scenarios = [
        CampaignScenario(profile="paper-qpsk-1ghz", label="paper-nominal"),
        CampaignScenario(
            profile="paper-qpsk-1ghz",
            label="paper-saturated-pa",
            impairments=ImpairmentConfig().with_amplifier(
                RappAmplifier(gain_db=0.0, saturation_amplitude=0.75, smoothness=1.2)
            ),
        ),
        CampaignScenario(profile="lband-64qam-1p5ghz", label="lband-nominal"),
    ]
    campaign = BistCampaign(
        scenarios,
        bist_config=small_bist_config(),
        converter_factory=lambda bandwidth: default_converter(
            bandwidth, dcde_static_error_seconds=4e-12, seed=31
        ),
    )
    return campaign.run()


@pytest.mark.slow
class TestCampaign:
    def test_all_scenarios_executed(self, campaign_result):
        assert len(campaign_result.reports) == 3

    def test_nominal_units_pass(self, campaign_result):
        by_label = dict(campaign_result.entries)
        assert by_label["paper-nominal"].passed
        assert by_label["lband-nominal"].passed

    def test_saturated_pa_detected(self, campaign_result):
        by_label = dict(campaign_result.entries)
        faulty = by_label["paper-saturated-pa"]
        assert not faulty.passed
        spectral = [faulty.check("acpr").verdict, faulty.check("spectral_mask").verdict]
        assert Verdict.FAIL in spectral
        assert campaign_result.failures() == ["paper-saturated-pa"]
        assert not campaign_result.all_passed

    def test_skew_calibrated_in_every_scenario(self, campaign_result):
        for _, report in campaign_result.entries:
            assert report.calibration.converged
            assert report.calibration.estimation_error_seconds < 2e-12

    def test_summary_table_renders(self, campaign_result):
        table = campaign_result.summary_table()
        assert "paper-nominal" in table
        assert "paper-saturated-pa" in table
        assert "fail" in table
        assert "pass" in table


class TestFaultSensitivity:
    def test_iq_imbalance_detected_via_evm(self):
        """A heavy IQ imbalance passes the spectral checks but fails EVM."""
        config = BistConfig(
            num_samples_fast=256,
            num_samples_slow=128,
            lms_max_iterations=40,
            num_cost_points=120,
            measure_evm_enabled=True,
        )
        scenarios = [
            CampaignScenario(
                profile="paper-qpsk-1ghz",
                label="iq-imbalance",
                impairments=ImpairmentConfig(
                    iq_imbalance=IqImbalance(gain_imbalance_db=2.5, phase_imbalance_deg=15.0)
                ),
            )
        ]
        campaign = BistCampaign(
            scenarios,
            bist_config=config,
            converter_factory=lambda bandwidth: default_converter(bandwidth, seed=37),
        )
        result = campaign.run()
        report = result.reports[0]
        assert report.check("evm").verdict is Verdict.FAIL
        assert not report.passed
