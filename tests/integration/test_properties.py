"""Property-based integration tests on the sampling/reconstruction core.

These use hypothesis to vary the signal placement, the inter-channel delay
and the delay estimation error, asserting the invariants the paper's theory
promises: reconstruction works for any valid delay, and the error scales with
the delay error as predicted by Eq. 4.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dsp import relative_reconstruction_error
from repro.errors import DelayConstraintError
from repro.sampling import (
    BandpassBand,
    IdealNonuniformSampler,
    NonuniformReconstructor,
    check_delay,
    delay_upper_bound,
    relative_error_for_delay_error,
)
from repro.signals import multitone_in_band


BAND = BandpassBand.from_centre(1.0e9, 90.0e6)

COMMON_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def reconstruction_error(signal, delay, assumed_delay=None, num_samples=300, seed=0):
    sampler = IdealNonuniformSampler(BAND, delay=delay)
    sample_set = sampler.acquire(signal, num_samples=num_samples)
    reconstructor = NonuniformReconstructor(
        sample_set, assumed_delay=assumed_delay, num_taps=60
    )
    low, high = reconstructor.valid_time_range()
    times = np.random.default_rng(seed).uniform(low, high, 150)
    return relative_reconstruction_error(signal.evaluate(times), reconstructor.evaluate(times))


class TestReconstructionInvariants:
    @given(
        delay_ps=st.floats(min_value=30.0, max_value=450.0),
        tone_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(**COMMON_SETTINGS)
    def test_any_valid_delay_reconstructs(self, delay_ps, tone_seed):
        """PNBS works for (almost) any delay in (0, m) - the flexibility claim."""
        delay = delay_ps * 1e-12
        try:
            check_delay(BAND, delay, tolerance=5e-3)
        except DelayConstraintError:
            return  # delay too close to a forbidden value; excluded by the theory itself
        signal = multitone_in_band(
            BAND.centre - 7e6, BAND.centre + 7e6, 5, amplitude=0.3, seed=tone_seed
        )
        assert reconstruction_error(signal, delay) < 5e-3

    @given(
        centre_offset_mhz=st.floats(min_value=-25.0, max_value=25.0),
        width_mhz=st.floats(min_value=2.0, max_value=12.0),
    )
    @settings(**COMMON_SETTINGS)
    def test_any_band_position_reconstructs(self, centre_offset_mhz, width_mhz):
        """The signal may sit anywhere inside the acquisition band."""
        centre = BAND.centre + centre_offset_mhz * 1e6
        half_width = width_mhz * 1e6 / 2.0
        signal = multitone_in_band(centre - half_width, centre + half_width, 5, amplitude=0.3, seed=1)
        assert reconstruction_error(signal, 180e-12) < 5e-3

    @given(delay_error_ps=st.floats(min_value=0.5, max_value=12.0))
    @settings(**COMMON_SETTINGS)
    def test_eq4_bounds_measured_error(self, delay_error_ps):
        """The measured error stays within a small factor of the Eq. 4 prediction."""
        delay_error = delay_error_ps * 1e-12
        signal = multitone_in_band(BAND.centre - 7e6, BAND.centre + 7e6, 5, amplitude=0.3, seed=3)
        measured = reconstruction_error(signal, 180e-12, assumed_delay=180e-12 + delay_error)
        predicted = relative_error_for_delay_error(BAND, delay_error)
        assert measured < 2.5 * predicted
        assert measured > predicted / 4.0

    def test_search_interval_consistent_with_band(self):
        bound = delay_upper_bound(BAND)
        assert 0.0 < bound < 1.0 / BAND.bandwidth
