"""Array-backend seam: registry, identity guarantees, scoped switching."""

import numpy as np
import pytest

from repro.backend import (
    NUMPY_BACKEND,
    ArrayBackend,
    active_backend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.errors import ValidationError


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_get_backend_by_name_and_instance(self):
        assert get_backend("numpy") is NUMPY_BACKEND
        assert get_backend("NumPy") is NUMPY_BACKEND
        assert get_backend(NUMPY_BACKEND) is NUMPY_BACKEND

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="known backends"):
            get_backend("tensorflow")
        with pytest.raises(ValidationError):
            get_backend(42)

    def test_uninstalled_optional_backend_raises_configuration_error(self):
        # CuPy/JAX are optional; whichever is absent must fail actionably.
        from repro.backend import _OPTIONAL_BACKENDS
        from repro.errors import ConfigurationError

        missing = [name for name in _OPTIONAL_BACKENDS if name not in available_backends()]
        for name in missing:
            with pytest.raises(ConfigurationError, match="not installed"):
                get_backend(name)


class TestNumpyIdentity:
    def test_asarray_is_identity_for_numpy_arrays(self):
        array = np.arange(5.0)
        assert NUMPY_BACKEND.asarray(array) is array
        assert NUMPY_BACKEND.is_numpy

    def test_to_numpy_is_identity_for_numpy_arrays(self):
        array = np.arange(5.0)
        assert NUMPY_BACKEND.to_numpy(array) is array

    def test_to_numpy_handles_get_exposing_arrays(self):
        # CuPy-style arrays expose .get() for the device-to-host copy.
        class FakeDeviceArray:
            def __init__(self, values):
                self._values = values

            def get(self):
                return self._values

        fake_backend = ArrayBackend(name="fake", xp=object())
        values = np.arange(3.0)
        assert np.array_equal(fake_backend.to_numpy(FakeDeviceArray(values)), values)


class TestActiveBackend:
    def test_default_is_numpy(self):
        assert active_backend() is NUMPY_BACKEND

    def test_set_backend_round_trip(self):
        previous = active_backend()
        try:
            resolved = set_backend("numpy")
            assert resolved is NUMPY_BACKEND
            assert active_backend() is NUMPY_BACKEND
        finally:
            set_backend(previous)

    def test_use_backend_scopes_the_switch(self):
        before = active_backend()
        with use_backend("numpy") as backend:
            assert backend is NUMPY_BACKEND
            assert active_backend() is NUMPY_BACKEND
        assert active_backend() is before

    def test_use_backend_restores_on_error(self):
        before = active_backend()
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert active_backend() is before

    def test_top_level_exports(self):
        import repro

        assert repro.active_backend() is repro.get_backend("numpy")
        assert "use_backend" in repro.__all__
