"""Tests for repro.sampling.bandpass (uniform bandpass sampling theory)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AliasingError, ValidationError
from repro.sampling import (
    BandpassBand,
    alias_free_grid,
    folded_frequency,
    is_alias_free,
    minimum_sampling_rate,
    nyquist_zone,
    rate_margin,
    required_rate_precision,
    valid_rate_ranges,
    wedge_index,
)


class TestBandpassBand:
    def test_from_centre(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        assert band.f_low == pytest.approx(955e6)
        assert band.f_high == pytest.approx(1045e6)
        assert band.bandwidth == pytest.approx(90e6)
        assert band.centre == pytest.approx(1e9)

    def test_band_position_ratio(self):
        band = BandpassBand(30e6, 60e6)
        assert band.band_position_ratio == pytest.approx(2.0)

    def test_maximum_wedge_index(self):
        band = BandpassBand.from_centre(2.015e9, 30e6)  # fH = 2.03 GHz, paper Fig. 3b
        assert band.maximum_wedge_index == 67

    def test_inverted_edges_rejected(self):
        with pytest.raises(ValidationError):
            BandpassBand(2e9, 1e9)

    def test_negative_low_edge_rejected(self):
        with pytest.raises(ValidationError):
            BandpassBand(-1e6, 1e6)

    def test_bandwidth_exceeding_centre_rejected(self):
        with pytest.raises(ValidationError):
            BandpassBand.from_centre(10e6, 30e6)


class TestValidRateRanges:
    def test_integer_positioned_band_reaches_2b(self):
        # f_high = 4 * B: the minimum rate is exactly 2B.
        band = BandpassBand(3e6, 4e6)
        assert minimum_sampling_rate(band) == pytest.approx(2e6)

    def test_non_integer_positioned_band_above_2b(self):
        band = BandpassBand(3.5e6, 4.5e6)
        assert minimum_sampling_rate(band) > 2e6 * (1.0 - 1e-12)

    def test_ranges_sorted_and_disjoint(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        ranges = valid_rate_ranges(band, max_rate_hz=3e9)
        for first, second in zip(ranges, ranges[1:]):
            assert first.maximum_hz <= second.minimum_hz + 1e-6
        assert ranges[0].minimum_hz == pytest.approx(minimum_sampling_rate(band))

    def test_n_equal_one_range_unbounded(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        ranges = valid_rate_ranges(band)
        assert ranges[-1].wedge_index == 1
        assert np.isinf(ranges[-1].maximum_hz)
        assert ranges[-1].minimum_hz == pytest.approx(2.0 * band.f_high)

    def test_number_of_ranges_equals_max_wedge(self):
        band = BandpassBand(3e6, 4e6)
        assert len(valid_rate_ranges(band)) == band.maximum_wedge_index

    def test_contains(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        for rate_range in valid_rate_ranges(band, max_rate_hz=1e9):
            midpoint = (rate_range.minimum_hz + min(rate_range.maximum_hz, 1e9)) / 2.0
            assert rate_range.contains(midpoint)


class TestAliasFreePredicate:
    def test_rates_in_ranges_are_alias_free(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        for rate_range in valid_rate_ranges(band, max_rate_hz=2.5e9):
            midpoint = (rate_range.minimum_hz + min(rate_range.maximum_hz, 2.5e9)) / 2.0
            assert is_alias_free(band, midpoint)

    def test_rates_between_ranges_alias(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        ranges = valid_rate_ranges(band, max_rate_hz=2.5e9)
        for first, second in zip(ranges, ranges[1:]):
            gap_middle = (first.maximum_hz + second.minimum_hz) / 2.0
            if second.minimum_hz - first.maximum_hz > 1.0:
                assert not is_alias_free(band, gap_middle)

    def test_below_2b_always_aliases(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        assert not is_alias_free(band, 2.0 * band.bandwidth * 0.99)

    def test_above_2fh_never_aliases(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        assert is_alias_free(band, 2.0 * band.f_high * 1.01)

    def test_brute_force_agreement(self):
        """The closed-form predicate agrees with a brute-force folding check."""
        band = BandpassBand(33e6, 41e6)

        def brute_force(rate):
            # The band [f_low, f_high] folds without overlap iff its low and
            # high edges stay on the same side within a Nyquist zone.
            zone_low = int(np.floor(2.0 * band.f_low / rate))
            zone_high = int(np.floor(2.0 * band.f_high / rate))
            return zone_low == zone_high

        for rate in np.linspace(2.0 * band.bandwidth, 2.5 * band.f_high, 997):
            assert is_alias_free(band, rate) == brute_force(rate), rate

    @given(st.floats(min_value=1.2, max_value=7.0), st.floats(min_value=0.1, max_value=8.0))
    @settings(max_examples=200, deadline=None)
    def test_property_alias_free_implies_wedge_consistency(self, position_ratio, normalised_rate):
        band = BandpassBand(position_ratio - 1.0, position_ratio)
        if is_alias_free(band, normalised_rate):
            index = wedge_index(band, normalised_rate)
            assert 1 <= index <= band.maximum_wedge_index
            low = 2.0 * band.f_high / index
            assert normalised_rate >= low - 1e-9


class TestMarginsAndPrecision:
    def test_wedge_index_raises_on_alias(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        with pytest.raises(AliasingError):
            wedge_index(band, 150e6)

    def test_margins_positive_inside_wedge(self):
        band = BandpassBand.from_centre(2.015e9, 30e6)
        ranges = valid_rate_ranges(band, max_rate_hz=120e6)
        rate = (ranges[0].minimum_hz + ranges[0].maximum_hz) / 2.0
        down, up = rate_margin(band, rate)
        assert down > 0.0 and up > 0.0

    def test_paper_fig3b_kilohertz_precision_near_minimum(self):
        """Fig. 3b: near fs = 2B the margin for a 30 MHz band at 2.03 GHz is a few kHz."""
        band = BandpassBand(2.0e9, 2.03e9)
        precision = required_rate_precision(band, minimum_sampling_rate(band) + 1e3)
        assert precision < 500e3  # sub-MHz
        ranges = valid_rate_ranges(band, max_rate_hz=100e6)
        narrowest = min(r.width_hz for r in ranges)
        assert narrowest < 1e6

    def test_precision_improves_at_higher_rates(self):
        band = BandpassBand(2.0e9, 2.03e9)
        ranges = valid_rate_ranges(band, max_rate_hz=200e6)
        low_rate_width = ranges[0].width_hz
        high_rate_width = ranges[-1].width_hz
        assert high_rate_width > low_rate_width


class TestFoldingHelpers:
    def test_nyquist_zone(self):
        assert nyquist_zone(10e6, 100e6) == 1
        assert nyquist_zone(60e6, 100e6) == 2
        assert nyquist_zone(110e6, 100e6) == 3

    def test_folded_frequency_first_zone(self):
        assert folded_frequency(10e6, 100e6) == pytest.approx(10e6)

    def test_folded_frequency_second_zone_inverts(self):
        assert folded_frequency(60e6, 100e6) == pytest.approx(40e6)

    def test_folded_frequency_higher_zone(self):
        assert folded_frequency(991e6, 90e6) == pytest.approx(1e6)


class TestAliasFreeGrid:
    def test_grid_shape(self):
        ratios = np.linspace(1.0, 7.0, 25)
        rates = np.linspace(0.5, 8.0, 31)
        grid = alias_free_grid(ratios, rates)
        assert grid.shape == (31, 25)

    def test_rates_above_2fh_always_white(self):
        ratios = np.linspace(1.0, 4.0, 13)
        rates = np.array([8.5])
        grid = alias_free_grid(ratios, rates)
        assert np.all(grid[0, :])

    def test_rates_below_2b_always_grey(self):
        ratios = np.linspace(1.5, 7.0, 12)
        rates = np.array([1.5])
        grid = alias_free_grid(ratios, rates)
        assert not np.any(grid[0, :])

    def test_ratio_below_one_rejected(self):
        with pytest.raises(ValidationError):
            alias_free_grid([0.5], [2.0])
