"""Tests for repro.sampling.nonuniform (Kohlenberg kernel and delay constraints)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DelayConstraintError, ValidationError
from repro.sampling import (
    BandpassBand,
    KohlenbergKernel,
    band_order,
    check_delay,
    delay_upper_bound,
    forbidden_delays,
    integer_band_positioning,
    optimal_delay,
)


PAPER_BAND = BandpassBand.from_centre(1.0e9, 90.0e6)


class TestBandOrder:
    def test_paper_values(self):
        """The paper's setup: fc = 1 GHz, B = 90 MHz gives k = 22, k+ = 23."""
        k, k_plus = band_order(PAPER_BAND)
        assert k == 22
        assert k_plus == 23

    def test_eq5_example_band(self):
        """The Eq. 5 example: fc = 1 GHz, B = 80 MHz gives k = 24."""
        band = BandpassBand.from_centre(1.0e9, 80.0e6)
        k, k_plus = band_order(band)
        assert k == 24
        assert k_plus == 25

    def test_integer_positioning_detection(self):
        integer_band = BandpassBand(90e6, 135e6)  # 2 fl / B = 4 exactly
        assert integer_band_positioning(integer_band)
        assert not integer_band_positioning(PAPER_BAND)

    def test_k_at_least_two_fl_over_b(self):
        for low, high in [(10e6, 17e6), (955e6, 1045e6), (2.0e9, 2.03e9)]:
            band = BandpassBand(low, high)
            k, _ = band_order(band)
            assert k >= 2.0 * band.f_low / band.bandwidth - 1e-9


class TestDelayConstraints:
    def test_paper_upper_bound_is_483ps(self):
        """m = 1 / (k+ * B) = 1 / (23 * 90 MHz) ~= 483 ps, as stated in Section V."""
        assert delay_upper_bound(PAPER_BAND) == pytest.approx(483.09e-12, rel=1e-3)

    def test_optimal_delay_quarter_carrier_period(self):
        assert optimal_delay(PAPER_BAND) == pytest.approx(1.0 / (4.0 * 1e9))

    def test_forbidden_delays_are_multiples(self):
        delays = forbidden_delays(PAPER_BAND, 2e-9)
        period = 1.0 / PAPER_BAND.bandwidth
        k, k_plus = band_order(PAPER_BAND)
        for delay in delays:
            ratio_k = delay / (period / k)
            ratio_k_plus = delay / (period / k_plus)
            assert (
                abs(ratio_k - round(ratio_k)) < 1e-6 or abs(ratio_k_plus - round(ratio_k_plus)) < 1e-6
            )

    def test_paper_delay_is_valid(self):
        assert check_delay(PAPER_BAND, 180e-12) == pytest.approx(180e-12)

    def test_forbidden_delay_rejected(self):
        k, _ = band_order(PAPER_BAND)
        forbidden = (1.0 / PAPER_BAND.bandwidth) / k
        with pytest.raises(DelayConstraintError):
            check_delay(PAPER_BAND, forbidden)

    def test_near_forbidden_delay_rejected(self):
        _, k_plus = band_order(PAPER_BAND)
        nearly = (1.0 / PAPER_BAND.bandwidth) / k_plus * 1.0001
        with pytest.raises(DelayConstraintError):
            check_delay(PAPER_BAND, nearly)

    def test_zero_delay_rejected(self):
        with pytest.raises(DelayConstraintError):
            check_delay(PAPER_BAND, 0.0)

    def test_integer_positioned_band_skips_k_family(self):
        band = BandpassBand(90e6, 135e6)  # k = 4 exactly, s0 vanishes
        k, _ = band_order(band)
        delay = (1.0 / band.bandwidth) / k  # would be forbidden otherwise
        assert check_delay(band, delay) == pytest.approx(delay)


class TestKernelValues:
    def test_kernel_is_one_at_origin(self):
        kernel = KohlenbergKernel(PAPER_BAND, 180e-12)
        assert kernel.s(0.0)[0] == pytest.approx(1.0, abs=1e-9)

    def test_s0_s1_limits_at_origin(self):
        kernel = KohlenbergKernel(PAPER_BAND, 180e-12)
        k, _ = band_order(PAPER_BAND)
        expected_s0 = k - 2.0 * PAPER_BAND.f_low / PAPER_BAND.bandwidth
        expected_s1 = 2.0 * PAPER_BAND.f_low / PAPER_BAND.bandwidth + 1.0 - k
        assert kernel.s0(0.0)[0] == pytest.approx(expected_s0, abs=1e-9)
        assert kernel.s1(0.0)[0] == pytest.approx(expected_s1, abs=1e-9)

    def test_matches_paper_closed_form_away_from_origin(self):
        """The product form must equal the paper's Eq. (2) cosine-difference form."""
        kernel = KohlenbergKernel(PAPER_BAND, 180e-12)
        k, k_plus = band_order(PAPER_BAND)
        f_low = PAPER_BAND.f_low
        bandwidth = PAPER_BAND.bandwidth
        delay = 180e-12
        t = np.linspace(-200e-9, 200e-9, 501)
        t = t[np.abs(t) > 1e-12]

        phase_k = k * np.pi * bandwidth * delay
        phase_k_plus = k_plus * np.pi * bandwidth * delay
        s0_paper = (
            np.cos(2 * np.pi * (k * bandwidth - f_low) * t - phase_k)
            - np.cos(2 * np.pi * f_low * t - phase_k)
        ) / (2 * np.pi * bandwidth * t * np.sin(phase_k))
        s1_paper = (
            np.cos(2 * np.pi * (f_low + bandwidth) * t - phase_k_plus)
            - np.cos(2 * np.pi * (k * bandwidth - f_low) * t - phase_k_plus)
        ) / (2 * np.pi * bandwidth * t * np.sin(phase_k_plus))

        np.testing.assert_allclose(kernel.s0(t), s0_paper, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(kernel.s1(t), s1_paper, rtol=1e-9, atol=1e-12)

    def test_kernel_decays_with_distance(self):
        kernel = KohlenbergKernel(PAPER_BAND, 180e-12)
        near = np.max(np.abs(kernel.s(np.linspace(1e-9, 20e-9, 200))))
        far = np.max(np.abs(kernel.s(np.linspace(300e-9, 320e-9, 200))))
        assert far < near

    def test_kernel_grows_near_forbidden_delay(self):
        """Approaching a forbidden delay inflates the kernel coefficients."""
        safe = KohlenbergKernel(PAPER_BAND, 180e-12)
        _, k_plus = band_order(PAPER_BAND)
        near_forbidden_delay = (1.0 / PAPER_BAND.bandwidth) / k_plus * 0.99
        risky = KohlenbergKernel(PAPER_BAND, near_forbidden_delay, delay_tolerance=1e-4)
        t = np.linspace(5e-9, 100e-9, 64)
        assert np.max(np.abs(risky.s(t))) > np.max(np.abs(safe.s(t)))

    def test_callable_interface(self):
        kernel = KohlenbergKernel(PAPER_BAND, 180e-12)
        t = np.array([0.0, 1e-9])
        np.testing.assert_allclose(kernel(t), kernel.s(t))

    def test_invalid_band_type_rejected(self):
        with pytest.raises(ValidationError):
            KohlenbergKernel("not a band", 180e-12)

    def test_properties(self):
        kernel = KohlenbergKernel(PAPER_BAND, 180e-12)
        assert kernel.bandwidth == pytest.approx(90e6)
        assert kernel.sample_period == pytest.approx(1.0 / 90e6)
        assert kernel.orders == (22, 23)

    @given(st.floats(min_value=10e-12, max_value=470e-12))
    @settings(max_examples=30, deadline=None)
    def test_property_kernel_unity_at_origin_for_any_valid_delay(self, delay):
        try:
            kernel = KohlenbergKernel(PAPER_BAND, delay)
        except DelayConstraintError:
            return  # delay happened to be near a forbidden value; nothing to test
        assert kernel.s(0.0)[0] == pytest.approx(1.0, abs=1e-6)
