"""Plan/legacy equivalence tests for repro.sampling.reconstruction.

The :class:`ReconstructionPlan` fast path must agree with the preserved
pre-refactor implementation (:func:`reference_evaluate`) to tight tolerance
for every window, any valid delay, and on every part of the record —
including edge times where the truncated kernel support falls off the
acquisition.
"""

import numpy as np
import pytest

from repro.errors import (
    DelayConstraintError,
    ReconstructionError,
    ValidationError,
)
from repro.sampling import (
    BandpassBand,
    IdealNonuniformSampler,
    NonuniformReconstructor,
    ReconstructionPlan,
    reference_evaluate,
)
from repro.sampling.nonuniform import delay_upper_bound

DELAY = 180e-12
ALL_WINDOWS = ["kaiser", "hann", "hamming", "blackman", "rectangular"]

RTOL = 1e-9
ATOL = 1e-12


def random_valid_delays(band, rng, count=6):
    """Candidate delays drawn across the stable search interval (0, m)."""
    bound = delay_upper_bound(band)
    return rng.uniform(0.05 * bound, 0.95 * bound, count)


@pytest.fixture(scope="module")
def plan_times(fast_sample_set):
    reconstructor = NonuniformReconstructor(fast_sample_set, num_taps=60)
    low, high = reconstructor.valid_time_range()
    rng = np.random.default_rng(7)
    return np.sort(rng.uniform(low, high, 200))


class TestPlanReferenceEquivalence:
    @pytest.mark.parametrize("window", ALL_WINDOWS)
    def test_all_windows_match_reference(self, fast_sample_set, plan_times, window):
        plan = ReconstructionPlan(fast_sample_set, plan_times, num_taps=60, window=window)
        rng = np.random.default_rng(42)
        for delay in random_valid_delays(fast_sample_set.band, rng):
            np.testing.assert_allclose(
                plan.evaluate(delay),
                reference_evaluate(fast_sample_set, plan_times, delay, num_taps=60, window=window),
                rtol=RTOL,
                atol=ATOL,
            )

    def test_random_delays_property_style(self, fast_sample_set, plan_times):
        """Many random (delay, taps) draws all agree with the reference path."""
        rng = np.random.default_rng(2014)
        for _ in range(10):
            num_taps = int(rng.choice([16, 32, 60, 80]))
            delay = float(random_valid_delays(fast_sample_set.band, rng, count=1)[0])
            plan = ReconstructionPlan(fast_sample_set, plan_times, num_taps=num_taps)
            np.testing.assert_allclose(
                plan.evaluate(delay),
                reference_evaluate(fast_sample_set, plan_times, delay, num_taps=num_taps),
                rtol=RTOL,
                atol=ATOL,
            )

    def test_slow_acquisition_matches_reference(self, slow_sample_set):
        rng = np.random.default_rng(3)
        times = np.sort(
            rng.uniform(slow_sample_set.start_time, slow_sample_set.end_time, 150)
        )
        plan = ReconstructionPlan(slow_sample_set, times, num_taps=60)
        for delay in random_valid_delays(slow_sample_set.band, rng):
            np.testing.assert_allclose(
                plan.evaluate(delay),
                reference_evaluate(slow_sample_set, times, delay, num_taps=60),
                rtol=RTOL,
                atol=ATOL,
            )

    def test_edge_of_record_times(self, fast_sample_set):
        """Partial-support instants (clipped tap indices) match the reference."""
        start = fast_sample_set.start_time
        end = fast_sample_set.end_time
        period = fast_sample_set.sample_period
        times = np.array(
            [
                start,  # kernel support half off the record
                start + 2.0 * period,
                start + 0.5 * period,  # exactly between two grid samples
                end - 2.0 * period,
                end - period / 3.0,
                end + 5.0 * period,  # fully outside: both paths must return 0
                start - 5.0 * period,
            ]
        )
        plan = ReconstructionPlan(fast_sample_set, times, num_taps=60)
        np.testing.assert_allclose(
            plan.evaluate(DELAY),
            reference_evaluate(fast_sample_set, times, DELAY, num_taps=60),
            rtol=RTOL,
            atol=ATOL,
        )

    def test_time_exactly_on_grid_sample(self, fast_sample_set):
        """t coinciding with a grid instant hits the sinc removable singularity."""
        times = fast_sample_set.on_grid_times()[40:44]
        plan = ReconstructionPlan(fast_sample_set, times, num_taps=60)
        np.testing.assert_allclose(
            plan.evaluate(DELAY),
            reference_evaluate(fast_sample_set, times, DELAY, num_taps=60),
            rtol=RTOL,
            atol=ATOL,
        )

    def test_time_on_delayed_sample_instant(self, fast_sample_set):
        """t coinciding with a delayed-channel instant (v + D = 0) is exact too."""
        times = fast_sample_set.delayed_times()[50:53]
        plan = ReconstructionPlan(fast_sample_set, times, num_taps=60)
        np.testing.assert_allclose(
            plan.evaluate(DELAY),
            reference_evaluate(fast_sample_set, times, DELAY, num_taps=60),
            rtol=RTOL,
            atol=ATOL,
        )


class TestEvaluateMany:
    def test_matches_looped_evaluate(self, fast_sample_set, plan_times):
        plan = ReconstructionPlan(fast_sample_set, plan_times, num_taps=60)
        rng = np.random.default_rng(5)
        delays = random_valid_delays(fast_sample_set.band, rng, count=25)
        batched = plan.evaluate_many(delays)
        looped = np.stack([plan.evaluate(delay) for delay in delays])
        np.testing.assert_array_equal(batched, looped)

    def test_chunking_transparent(self, fast_sample_set, plan_times, monkeypatch):
        """Results are identical whatever the internal delay-axis chunk size."""
        import repro.sampling.reconstruction as reconstruction_module

        plan = ReconstructionPlan(fast_sample_set, plan_times, num_taps=60)
        rng = np.random.default_rng(6)
        delays = random_valid_delays(fast_sample_set.band, rng, count=9)
        full = plan.evaluate_many(delays)
        monkeypatch.setattr(reconstruction_module, "_BATCH_ELEMENT_BUDGET", 1)
        np.testing.assert_array_equal(plan.evaluate_many(delays), full)

    def test_shape_and_empty(self, fast_sample_set, plan_times):
        plan = ReconstructionPlan(fast_sample_set, plan_times, num_taps=60)
        out = plan.evaluate_many([DELAY, 1.2 * DELAY])
        assert out.shape == (2, plan_times.size)
        assert plan.evaluate_many(np.empty(0)).shape == (0, plan_times.size)

    def test_forbidden_delay_rejected(self, fast_sample_set, plan_times):
        plan = ReconstructionPlan(fast_sample_set, plan_times, num_taps=60)
        forbidden = delay_upper_bound(fast_sample_set.band)
        with pytest.raises(DelayConstraintError):
            plan.evaluate_many([DELAY, forbidden])

    def test_non_positive_delay_rejected(self, fast_sample_set, plan_times):
        plan = ReconstructionPlan(fast_sample_set, plan_times, num_taps=60)
        with pytest.raises(ValidationError):
            plan.evaluate(-1e-12)


class TestPlanConfiguration:
    def test_odd_num_taps_rejected(self, fast_sample_set, plan_times):
        with pytest.raises(ValidationError):
            ReconstructionPlan(fast_sample_set, plan_times, num_taps=61)

    def test_unknown_window_rejected(self, fast_sample_set, plan_times):
        with pytest.raises(ReconstructionError):
            ReconstructionPlan(fast_sample_set, plan_times, window="triangle")

    def test_non_sample_set_rejected(self, plan_times):
        with pytest.raises(ValidationError):
            ReconstructionPlan("samples", plan_times)

    def test_properties(self, fast_sample_set, plan_times):
        plan = ReconstructionPlan(
            fast_sample_set, plan_times, num_taps=32, window="hann", kaiser_beta=6.0
        )
        assert plan.num_taps == 32
        assert plan.window == "hann"
        assert plan.kaiser_beta == pytest.approx(6.0)
        assert plan.sample_set is fast_sample_set
        np.testing.assert_allclose(plan.evaluation_times, plan_times)

    def test_valid_time_range_matches_facade(self, fast_sample_set, plan_times):
        plan = ReconstructionPlan(fast_sample_set, plan_times, num_taps=60)
        facade = NonuniformReconstructor(fast_sample_set, assumed_delay=DELAY, num_taps=60)
        assert plan.valid_time_range(DELAY) == pytest.approx(facade.valid_time_range())


class TestFacade:
    def test_facade_evaluate_uses_plan(self, fast_sample_set, plan_times):
        facade = NonuniformReconstructor(fast_sample_set, num_taps=60)
        np.testing.assert_allclose(
            facade.evaluate(plan_times),
            reference_evaluate(fast_sample_set, plan_times, num_taps=60),
            rtol=RTOL,
            atol=ATOL,
        )

    def test_plan_cache_reuses_same_grid(self, fast_sample_set, plan_times):
        facade = NonuniformReconstructor(fast_sample_set, num_taps=60)
        assert facade.plan_for(plan_times) is facade.plan_for(plan_times.copy())
        assert facade.plan_for(plan_times[:50]) is not facade.plan_for(plan_times)

    def test_plan_cache_bounded(self, fast_sample_set, plan_times):
        facade = NonuniformReconstructor(fast_sample_set, num_taps=60)
        for split in range(10, 10 + facade._PLAN_CACHE_SIZE + 3):
            facade.plan_for(plan_times[:split])
        assert len(facade._plans) <= facade._PLAN_CACHE_SIZE

    def test_large_one_shot_grids_not_cached(self, fast_sample_set, plan_times):
        """Dense measurement renders must not pin their trig caches."""
        facade = NonuniformReconstructor(fast_sample_set, num_taps=60)
        dense = np.linspace(plan_times[0], plan_times[-1], 2_000)
        assert dense.size * (facade.num_taps + 1) > facade._PLAN_CACHE_MAX_ELEMENTS
        facade.evaluate(dense)
        assert len(facade._plans) == 0
        facade.evaluate(plan_times)  # small grid still cached
        assert len(facade._plans) == 1

    def test_scalar_time_input(self, fast_sample_set):
        facade = NonuniformReconstructor(fast_sample_set, num_taps=60)
        low, high = facade.valid_time_range()
        midpoint = 0.5 * (low + high)
        out = facade.evaluate(midpoint)
        assert out.shape == (1,)
        np.testing.assert_allclose(
            out, reference_evaluate(fast_sample_set, midpoint), rtol=RTOL, atol=ATOL
        )
