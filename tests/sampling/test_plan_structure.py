"""Shared plan structures, the structure cache and stacked evaluation.

The structure cache and :func:`evaluate_stacked` power the campaign
compiler; their contract is bit-identity with the per-plan path under
every sharing/fallback combination, plus honest accounting.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sampling import (
    IdealNonuniformSampler,
    NonuniformReconstructor,
    PlanStructureCache,
    ReconstructionPlan,
    evaluate_stacked,
)
from repro.sampling.nonuniform import delay_upper_bound

NUM_TAPS = 32


@pytest.fixture(scope="module")
def grid(fast_sample_set):
    reconstructor = NonuniformReconstructor(fast_sample_set, num_taps=NUM_TAPS)
    low, high = reconstructor.valid_time_range()
    rng = np.random.default_rng(11)
    return np.sort(rng.uniform(low, high, 160))


def valid_delays(band, count, seed=5):
    bound = delay_upper_bound(band)
    rng = np.random.default_rng(seed)
    return rng.uniform(0.1 * bound, 0.9 * bound, count)


class TestStructureSharing:
    def test_cache_shares_one_structure_across_plans(self, fast_sample_set, grid):
        cache = PlanStructureCache()
        first = ReconstructionPlan(
            fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache
        )
        second = ReconstructionPlan(
            fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache
        )
        assert first.structure is second.structure
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_cached_plan_bit_identical_to_uncached(self, fast_sample_set, grid):
        cache = PlanStructureCache()
        # Warm the cache, then build a plan that reuses the structure.
        ReconstructionPlan(fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache)
        cached = ReconstructionPlan(
            fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache
        )
        bare = ReconstructionPlan(fast_sample_set, grid, num_taps=NUM_TAPS)
        for delay in valid_delays(fast_sample_set.band, 4):
            assert np.array_equal(cached.evaluate(delay), bare.evaluate(delay))

    def test_different_geometry_gets_different_structures(self, fast_sample_set, grid):
        cache = PlanStructureCache()
        a = ReconstructionPlan(fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache)
        b = ReconstructionPlan(
            fast_sample_set, grid, num_taps=NUM_TAPS, window="hann", structure_cache=cache
        )
        c = ReconstructionPlan(
            fast_sample_set, grid[:-1], num_taps=NUM_TAPS, structure_cache=cache
        )
        assert a.structure is not b.structure
        assert a.structure is not c.structure
        assert cache.stats["misses"] == 3

    def test_sample_values_do_not_enter_the_structure(self, fast_sample_set, grid):
        # The structure is sample-independent: an acquisition of a different
        # signal over the same geometry shares it, yet evaluates differently.
        cache = PlanStructureCache()
        plan = ReconstructionPlan(
            fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache
        )
        shifted = fast_sample_set.with_channels(
            2.0 * fast_sample_set.on_grid, 2.0 * fast_sample_set.delayed
        )
        other = ReconstructionPlan(shifted, grid, num_taps=NUM_TAPS, structure_cache=cache)
        assert other.structure is plan.structure
        delay = float(valid_delays(fast_sample_set.band, 1)[0])
        assert np.array_equal(other.evaluate(delay), 2.0 * plan.evaluate(delay))


class TestPlanStructureCacheBudget:
    def test_lru_eviction_over_element_budget(self, fast_sample_set, grid):
        per_structure = grid.size * (NUM_TAPS + 1)
        cache = PlanStructureCache(max_elements=2 * per_structure)
        windows = ["kaiser", "hann", "hamming"]
        for window in windows:
            ReconstructionPlan(
                fast_sample_set, grid, num_taps=NUM_TAPS, window=window, structure_cache=cache
            )
        stats = cache.stats
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["elements"] <= 2 * per_structure
        # The kaiser structure (LRU) was evicted; hann and hamming remain.
        ReconstructionPlan(
            fast_sample_set, grid, num_taps=NUM_TAPS, window="hamming", structure_cache=cache
        )
        assert cache.stats["hits"] == 1

    def test_most_recent_entry_survives_even_oversized(self, fast_sample_set, grid):
        cache = PlanStructureCache(max_elements=1)
        plan = ReconstructionPlan(
            fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache
        )
        assert cache.stats["entries"] == 1
        reuse = ReconstructionPlan(
            fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache
        )
        assert reuse.structure is plan.structure

    def test_clear_preserves_counters(self, fast_sample_set, grid):
        cache = PlanStructureCache()
        ReconstructionPlan(fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache)
        cache.clear()
        stats = cache.stats
        assert stats["entries"] == 0 and stats["elements"] == 0
        assert stats["misses"] == 1

    def test_rejects_bad_budget(self):
        with pytest.raises(ValidationError):
            PlanStructureCache(max_elements=0)


class TestEvaluateStacked:
    def test_shared_structure_rows_match_per_plan_evaluate(self, fast_sample_set, grid):
        cache = PlanStructureCache()
        plans = [
            ReconstructionPlan(fast_sample_set, grid, num_taps=NUM_TAPS, structure_cache=cache)
            for _ in range(5)
        ]
        assert all(plan.structure is plans[0].structure for plan in plans)
        delays = valid_delays(fast_sample_set.band, 5)
        stacked = evaluate_stacked(plans, delays)
        assert stacked.shape == (5, grid.size)
        for row, (plan, delay) in zip(stacked, zip(plans, delays)):
            assert np.array_equal(row, plan.evaluate(delay))

    def test_unshared_structures_fall_back_bit_identically(self, fast_sample_set, grid):
        # No cache: every plan owns its structure, forcing the per-plan path.
        plans = [
            ReconstructionPlan(fast_sample_set, grid, num_taps=NUM_TAPS) for _ in range(3)
        ]
        delays = valid_delays(fast_sample_set.band, 3)
        stacked = evaluate_stacked(plans, delays)
        for row, (plan, delay) in zip(stacked, zip(plans, delays)):
            assert np.array_equal(row, plan.evaluate(delay))

    def test_single_plan_stack(self, fast_sample_set, grid):
        plan = ReconstructionPlan(fast_sample_set, grid, num_taps=NUM_TAPS)
        delay = float(valid_delays(fast_sample_set.band, 1)[0])
        stacked = evaluate_stacked([plan], [delay])
        assert np.array_equal(stacked[0], plan.evaluate(delay))

    def test_validation_errors(self, fast_sample_set, grid):
        plan = ReconstructionPlan(fast_sample_set, grid, num_taps=NUM_TAPS)
        short = ReconstructionPlan(fast_sample_set, grid[:-10], num_taps=NUM_TAPS)
        delay = float(valid_delays(fast_sample_set.band, 1)[0])
        with pytest.raises(ValidationError):
            evaluate_stacked([], [])
        with pytest.raises(ValidationError):
            evaluate_stacked([plan, object()], [delay, delay])
        with pytest.raises(ValidationError):
            evaluate_stacked([plan], [delay, delay])
        with pytest.raises(ValidationError):
            evaluate_stacked([plan, short], [delay, delay])


class TestReconstructorPlanCacheStats:
    def test_hit_miss_and_bypass_accounting(self, fast_sample_set, grid):
        reconstructor = NonuniformReconstructor(
            fast_sample_set, num_taps=NUM_TAPS, assumed_delay=180e-12
        )
        small = grid[:64]
        reconstructor.plan_for(small)
        reconstructor.plan_for(small)
        stats = reconstructor.plan_cache_stats
        assert stats["misses"] == 1 and stats["hits"] == 1
        # A grid over the cache's element ceiling is served via bypass.
        low, high = reconstructor.valid_time_range()
        dense = np.linspace(low, high, 4096)
        reconstructor.plan_for(dense)
        assert reconstructor.plan_cache_stats["bypasses"] == 1

    def test_structure_cache_threads_through_plan_for(self, fast_sample_set, grid):
        cache = PlanStructureCache()
        reconstructor = NonuniformReconstructor(
            fast_sample_set, num_taps=NUM_TAPS, assumed_delay=180e-12, structure_cache=cache
        )
        assert reconstructor.structure_cache is cache
        small = grid[:64]
        reconstructor.plan_for(small)
        assert cache.stats["misses"] == 1
        # A second reconstructor over the same acquisition re-uses the grid
        # structure through the shared cache.
        other = NonuniformReconstructor(
            fast_sample_set, num_taps=NUM_TAPS, assumed_delay=180e-12, structure_cache=cache
        )
        plan = other.plan_for(small)
        assert cache.stats["hits"] >= 1
        bare = NonuniformReconstructor(fast_sample_set, num_taps=NUM_TAPS, assumed_delay=180e-12)
        assert np.array_equal(plan.evaluate(180e-12), bare.plan_for(small).evaluate(180e-12))
