"""Tests for repro.sampling.reconstruction."""

import numpy as np
import pytest

from repro.dsp import relative_reconstruction_error
from repro.errors import ValidationError
from repro.sampling import (
    BandpassBand,
    IdealNonuniformSampler,
    NonuniformReconstructor,
    NonuniformSampleSet,
    reconstruct,
)
from repro.signals import multitone_in_band, single_tone


PAPER_BAND = BandpassBand.from_centre(1.0e9, 90.0e6)
DELAY = 180e-12


def evaluation_times(reconstructor, count=200, seed=0):
    low, high = reconstructor.valid_time_range()
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, count)


class TestNonuniformSampleSet:
    def test_basic_properties(self, fast_sample_set):
        assert len(fast_sample_set) == 360
        assert fast_sample_set.sample_rate == pytest.approx(90e6)
        assert fast_sample_set.duration == pytest.approx(360 / 90e6)
        assert fast_sample_set.delay == pytest.approx(DELAY)

    def test_times(self, fast_sample_set):
        on_grid = fast_sample_set.on_grid_times()
        delayed = fast_sample_set.delayed_times()
        np.testing.assert_allclose(delayed - on_grid, DELAY)
        np.testing.assert_allclose(np.diff(on_grid), fast_sample_set.sample_period)

    def test_with_channels(self, fast_sample_set):
        modified = fast_sample_set.with_channels(
            fast_sample_set.on_grid * 2.0, fast_sample_set.delayed * 2.0
        )
        np.testing.assert_allclose(modified.on_grid, fast_sample_set.on_grid * 2.0)
        assert modified.delay == fast_sample_set.delay

    def test_mismatched_channel_lengths_rejected(self):
        with pytest.raises(ValidationError):
            NonuniformSampleSet(
                on_grid=np.zeros(10),
                delayed=np.zeros(11),
                sample_period=1e-8,
                delay=1e-10,
                start_time=0.0,
                band=PAPER_BAND,
            )


class TestIdealSampler:
    def test_acquire_length(self, paper_band, narrow_tone_signal):
        sampler = IdealNonuniformSampler(paper_band, delay=DELAY)
        sample_set = sampler.acquire(narrow_tone_signal, num_samples=128)
        assert len(sample_set) == 128

    def test_channels_are_shifted_copies(self, paper_band):
        tone = single_tone(1.0e9, amplitude=1.0)
        sampler = IdealNonuniformSampler(paper_band, delay=DELAY)
        sample_set = sampler.acquire(tone, num_samples=64)
        expected_delayed = tone.evaluate(sample_set.on_grid_times() + DELAY)
        np.testing.assert_allclose(sample_set.delayed, expected_delayed, atol=1e-12)

    def test_reduced_rate_band_centred(self, paper_band, narrow_tone_signal):
        sampler = IdealNonuniformSampler(paper_band, delay=DELAY, sample_rate=45e6)
        sample_set = sampler.acquire(narrow_tone_signal, num_samples=64)
        assert sample_set.band.bandwidth == pytest.approx(45e6)
        assert sample_set.band.centre == pytest.approx(paper_band.centre)

    def test_default_rate_is_band_width(self, paper_band):
        sampler = IdealNonuniformSampler(paper_band, delay=DELAY)
        assert sampler.sample_rate == pytest.approx(90e6)


class TestReconstructionAccuracy:
    def test_multitone_reconstruction_error_small(self, fast_sample_set, narrow_tone_signal):
        reconstructor = NonuniformReconstructor(fast_sample_set, num_taps=60)
        times = evaluation_times(reconstructor)
        truth = narrow_tone_signal.evaluate(times)
        estimate = reconstructor.evaluate(times)
        assert relative_reconstruction_error(truth, estimate) < 1e-3

    def test_single_tone_reconstruction(self, paper_band):
        tone = single_tone(1.003e9, amplitude=0.8)
        sampler = IdealNonuniformSampler(paper_band, delay=DELAY)
        sample_set = sampler.acquire(tone, num_samples=300)
        reconstructor = NonuniformReconstructor(sample_set, num_taps=60)
        times = evaluation_times(reconstructor, seed=5)
        assert relative_reconstruction_error(tone.evaluate(times), reconstructor(times)) < 1e-3

    def test_more_taps_reduce_error(self, paper_band, narrow_tone_signal):
        sampler = IdealNonuniformSampler(paper_band, delay=DELAY)
        sample_set = sampler.acquire(narrow_tone_signal, num_samples=500)
        few = NonuniformReconstructor(sample_set, num_taps=16)
        many = NonuniformReconstructor(sample_set, num_taps=80)
        times = evaluation_times(many, seed=2)
        truth = narrow_tone_signal.evaluate(times)
        error_few = relative_reconstruction_error(truth, few.evaluate(times))
        error_many = relative_reconstruction_error(truth, many.evaluate(times))
        assert error_many < error_few

    def test_wrong_delay_degrades_reconstruction(self, fast_sample_set, narrow_tone_signal):
        right = NonuniformReconstructor(fast_sample_set, num_taps=60)
        wrong = NonuniformReconstructor(fast_sample_set, assumed_delay=DELAY + 10e-12, num_taps=60)
        times = evaluation_times(right, seed=3)
        truth = narrow_tone_signal.evaluate(times)
        assert relative_reconstruction_error(truth, wrong.evaluate(times)) > 3.0 * (
            relative_reconstruction_error(truth, right.evaluate(times)) + 1e-6
        )

    def test_linearity(self, paper_band):
        """Reconstruction is linear: reconstructing a scaled signal scales the output."""
        tone = single_tone(1.01e9, amplitude=0.5)
        sampler = IdealNonuniformSampler(paper_band, delay=DELAY)
        base = sampler.acquire(tone, num_samples=200)
        scaled = base.with_channels(2.0 * base.on_grid, 2.0 * base.delayed)
        times = evaluation_times(NonuniformReconstructor(base), seed=4, count=50)
        np.testing.assert_allclose(
            reconstruct(scaled, times), 2.0 * reconstruct(base, times), rtol=1e-9
        )

    def test_functional_wrapper_matches_class(self, fast_sample_set):
        reconstructor = NonuniformReconstructor(fast_sample_set, num_taps=60)
        times = evaluation_times(reconstructor, count=20, seed=9)
        np.testing.assert_allclose(
            reconstruct(fast_sample_set, times, num_taps=60), reconstructor.evaluate(times)
        )


class TestReconstructorConfiguration:
    def test_odd_num_taps_rejected(self, fast_sample_set):
        with pytest.raises(ValidationError):
            NonuniformReconstructor(fast_sample_set, num_taps=61)

    def test_unknown_window_rejected(self, fast_sample_set):
        reconstructor = NonuniformReconstructor(fast_sample_set, window="triangle")
        with pytest.raises(Exception):
            reconstructor.evaluate([1e-6])

    def test_valid_time_range_inside_record(self, fast_sample_set):
        reconstructor = NonuniformReconstructor(fast_sample_set, num_taps=60)
        low, high = reconstructor.valid_time_range()
        assert low > fast_sample_set.start_time
        assert high < fast_sample_set.end_time
        assert high > low

    def test_assumed_delay_property(self, fast_sample_set):
        reconstructor = NonuniformReconstructor(fast_sample_set, assumed_delay=150e-12)
        assert reconstructor.assumed_delay == pytest.approx(150e-12)
        default = NonuniformReconstructor(fast_sample_set)
        assert default.assumed_delay == pytest.approx(fast_sample_set.delay)

    @pytest.mark.parametrize("window", ["kaiser", "hann", "hamming", "blackman", "rectangular"])
    def test_all_windows_reconstruct(self, fast_sample_set, narrow_tone_signal, window):
        reconstructor = NonuniformReconstructor(fast_sample_set, num_taps=60, window=window)
        times = evaluation_times(reconstructor, count=100, seed=11)
        error = relative_reconstruction_error(
            narrow_tone_signal.evaluate(times), reconstructor.evaluate(times)
        )
        assert error < 5e-2

    def test_non_sample_set_rejected(self):
        with pytest.raises(ValidationError):
            NonuniformReconstructor("not a sample set")
