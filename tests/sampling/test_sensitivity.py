"""Tests for repro.sampling.sensitivity (Eq. 4 / Eq. 5 of the paper)."""

import numpy as np
import pytest

from repro.dsp import relative_reconstruction_error
from repro.sampling import (
    BandpassBand,
    IdealNonuniformSampler,
    NonuniformReconstructor,
    delay_error_sweep,
    max_delay_error_for_relative_error,
    paper_example_delay_requirement,
    relative_error_for_delay_error,
)
from repro.signals import multitone_in_band


class TestClosedForm:
    def test_paper_eq5_about_two_picoseconds(self):
        """Eq. 5: 1 % error at fc = 1 GHz, B = 80 MHz requires dD of about 2 ps."""
        requirement = paper_example_delay_requirement()
        assert 1.0e-12 < requirement < 3.0e-12
        assert requirement == pytest.approx(2.0e-12, rel=0.3)

    def test_error_proportional_to_delay_error(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        assert relative_error_for_delay_error(band, 2e-12) == pytest.approx(
            2.0 * relative_error_for_delay_error(band, 1e-12)
        )

    def test_error_grows_with_carrier_position(self):
        low_carrier = BandpassBand.from_centre(300e6, 90e6)
        high_carrier = BandpassBand.from_centre(2e9, 90e6)
        assert relative_error_for_delay_error(high_carrier, 1e-12) > relative_error_for_delay_error(
            low_carrier, 1e-12
        )

    def test_inverse_relation(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        error = 0.02
        delay = max_delay_error_for_relative_error(band, error)
        assert relative_error_for_delay_error(band, delay) == pytest.approx(error)

    def test_sweep_matches_scalar(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        errors = np.array([1e-12, 2e-12, 5e-12])
        np.testing.assert_allclose(
            delay_error_sweep(band, errors),
            [relative_error_for_delay_error(band, e) for e in errors],
        )

    def test_absolute_value_of_delay_error(self):
        band = BandpassBand.from_centre(1e9, 90e6)
        assert relative_error_for_delay_error(band, -3e-12) == relative_error_for_delay_error(
            band, 3e-12
        )


class TestAgainstSimulation:
    def test_eq4_predicts_measured_error_within_factor_two(self):
        """The closed-form Eq. 4 must track the actual reconstructor's error."""
        band = BandpassBand.from_centre(1.0e9, 90.0e6)
        signal = multitone_in_band(band.centre - 7e6, band.centre + 7e6, 7, amplitude=0.3, seed=11)
        true_delay = 180e-12
        sampler = IdealNonuniformSampler(band, delay=true_delay)
        sample_set = sampler.acquire(signal, num_samples=400)
        rng = np.random.default_rng(1)
        for delay_error in (1e-12, 4e-12, 8e-12):
            reconstructor = NonuniformReconstructor(
                sample_set, assumed_delay=true_delay + delay_error, num_taps=60
            )
            low, high = reconstructor.valid_time_range()
            times = rng.uniform(low, high, 250)
            measured = relative_reconstruction_error(
                signal.evaluate(times), reconstructor.evaluate(times)
            )
            predicted = relative_error_for_delay_error(band, delay_error)
            assert predicted / 2.5 < measured < predicted * 2.5
