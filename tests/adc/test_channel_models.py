"""Tests for repro.adc.mismatch, sample_hold and adc (single channel)."""

import numpy as np
import pytest

from repro.adc import AdcChannel, ChannelMismatch, SampleAndHold, UniformQuantizer
from repro.errors import ValidationError
from repro.signals import single_tone


TONE = single_tone(10e6, amplitude=0.8)


class TestChannelMismatch:
    def test_ideal_default(self):
        assert ChannelMismatch().is_ideal

    def test_gain_property(self):
        assert ChannelMismatch(gain_error=0.02).gain == pytest.approx(1.02)

    def test_with_skew(self):
        mismatch = ChannelMismatch(offset=0.1).with_skew(5e-12)
        assert mismatch.skew_seconds == pytest.approx(5e-12)
        assert mismatch.offset == pytest.approx(0.1)

    def test_with_jitter(self):
        mismatch = ChannelMismatch().with_jitter(3e-12)
        assert mismatch.aperture_jitter_rms_seconds == pytest.approx(3e-12)

    def test_apply_static(self):
        mismatch = ChannelMismatch(offset=0.5, gain_error=0.1)
        np.testing.assert_allclose(mismatch.apply_static(np.array([1.0, 2.0])), [1.6, 2.7])

    def test_with_input_bandwidth_folds_gain_and_delay(self):
        # One pole at the reference frequency: |H| = 1/sqrt(2) and the group
        # delay is (pi/4) / (2 pi f) = 1/(8 f).
        reference = 1.0e9
        mismatch = ChannelMismatch().with_input_bandwidth(reference, reference)
        assert mismatch.gain == pytest.approx(1.0 / np.sqrt(2.0))
        assert mismatch.skew_seconds == pytest.approx(1.0 / (8.0 * reference))

    def test_with_input_bandwidth_composes_with_existing_mismatch(self):
        base = ChannelMismatch(gain_error=0.1, skew_seconds=5e-12)
        folded = base.with_input_bandwidth(1.0e9, 1.0e9)
        assert folded.gain == pytest.approx(1.1 / np.sqrt(2.0))
        assert folded.skew_seconds == pytest.approx(5e-12 + 125e-12)

    def test_wide_bandwidth_nearly_transparent(self):
        mismatch = ChannelMismatch().with_input_bandwidth(1.0e12, 1.0e9)
        assert mismatch.gain == pytest.approx(1.0, abs=1e-5)
        assert mismatch.skew_seconds == pytest.approx(0.0, abs=1e-12)

    def test_with_input_bandwidth_validation(self):
        with pytest.raises(ValidationError):
            ChannelMismatch().with_input_bandwidth(0.0, 1e9)
        with pytest.raises(ValidationError):
            ChannelMismatch().with_input_bandwidth(1e9, -1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValidationError):
            ChannelMismatch(aperture_jitter_rms_seconds=-1e-12)


class TestSampleAndHold:
    def test_ideal_timing(self):
        stage = SampleAndHold()
        times = np.arange(32) / 90e6
        np.testing.assert_allclose(stage.actual_sampling_times(times), times)

    def test_skew_shifts_all_edges(self):
        stage = SampleAndHold(mismatch=ChannelMismatch(skew_seconds=7e-12))
        times = np.arange(16) / 90e6
        np.testing.assert_allclose(stage.actual_sampling_times(times) - times, 7e-12)

    def test_jitter_statistics(self):
        stage = SampleAndHold(mismatch=ChannelMismatch(aperture_jitter_rms_seconds=3e-12), seed=0)
        times = np.zeros(20000)
        deviations = stage.actual_sampling_times(times)
        assert np.std(deviations) == pytest.approx(3e-12, rel=0.05)
        assert abs(np.mean(deviations)) < 1e-13

    def test_sample_values_match_signal(self):
        stage = SampleAndHold()
        times = np.arange(64) / 90e6
        np.testing.assert_allclose(stage.sample(TONE, times), TONE.evaluate(times))

    def test_type_check(self):
        with pytest.raises(ValidationError):
            SampleAndHold().sample(np.ones(4), np.zeros(4))


class TestAdcChannel:
    def test_ideal_channel_quantizes_only(self):
        channel = AdcChannel(quantizer=UniformQuantizer(12, 1.0))
        times = np.arange(128) / 90e6
        converted = channel.convert(TONE, times)
        np.testing.assert_allclose(converted, TONE.evaluate(times), atol=2.0 / 4096)

    def test_offset_and_gain_visible(self):
        channel = AdcChannel(
            quantizer=UniformQuantizer(14, 2.0),
            mismatch=ChannelMismatch(offset=0.25, gain_error=0.1),
        )
        times = np.arange(256) / 90e6
        converted = channel.convert(TONE, times)
        expected = 1.1 * TONE.evaluate(times) + 0.25
        np.testing.assert_allclose(converted, expected, atol=4.0 / 2**14)

    def test_skew_changes_samples_of_fast_signal(self):
        fast_tone = single_tone(1.0e9, amplitude=0.9)
        aligned = AdcChannel(quantizer=UniformQuantizer(14, 1.0))
        skewed = AdcChannel(
            quantizer=UniformQuantizer(14, 1.0),
            mismatch=ChannelMismatch(skew_seconds=100e-12),
        )
        times = np.arange(64) / 90e6
        assert not np.allclose(aligned.convert(fast_tone, times), skewed.convert(fast_tone, times))

    def test_convert_ideal_timing_ignores_skew(self):
        fast_tone = single_tone(1.0e9, amplitude=0.9)
        channel = AdcChannel(
            quantizer=UniformQuantizer(14, 1.0),
            mismatch=ChannelMismatch(skew_seconds=100e-12),
        )
        times = np.arange(64) / 90e6
        ideal = channel.convert_ideal_timing(fast_tone, times)
        np.testing.assert_allclose(ideal, fast_tone.evaluate(times), atol=2.0 / 2**14)

    def test_invalid_quantizer_type(self):
        with pytest.raises(ValidationError):
            AdcChannel(quantizer="10 bits")
