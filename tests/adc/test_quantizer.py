"""Tests for repro.adc.quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import UniformQuantizer, ideal_quantizer_snr_db
from repro.dsp import sinad_db
from repro.errors import ValidationError


class TestQuantizerBasics:
    def test_num_levels_and_step(self):
        quantizer = UniformQuantizer(resolution_bits=10, full_scale=1.0)
        assert quantizer.num_levels == 1024
        assert quantizer.step_size == pytest.approx(2.0 / 1024)

    def test_output_on_reconstruction_levels(self):
        quantizer = UniformQuantizer(resolution_bits=6, full_scale=1.0)
        values = np.linspace(-0.99, 0.97, 301)
        quantized = quantizer.quantize(values)
        codes = (quantized / quantizer.step_size) - 0.5
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)

    def test_error_bounded_by_half_step(self):
        quantizer = UniformQuantizer(resolution_bits=8, full_scale=1.0)
        values = np.random.default_rng(0).uniform(-0.99, 0.99, 1000)
        error = np.abs(quantizer.quantize(values) - values)
        assert np.max(error) <= quantizer.step_size / 2.0 + 1e-12

    def test_clipping(self):
        quantizer = UniformQuantizer(resolution_bits=8, full_scale=1.0)
        assert quantizer.quantize([5.0])[0] <= 1.0
        assert quantizer.quantize([-5.0])[0] >= -1.0
        assert quantizer.clips([5.0])[0]
        assert not quantizer.clips([0.0])[0]

    def test_codes_range(self):
        quantizer = UniformQuantizer(resolution_bits=4, full_scale=1.0)
        codes = quantizer.codes(np.linspace(-2, 2, 101))
        assert codes.min() == -8
        assert codes.max() == 7

    def test_monotone(self):
        quantizer = UniformQuantizer(resolution_bits=6, full_scale=1.0)
        values = np.linspace(-1.2, 1.2, 500)
        quantized = quantizer.quantize(values)
        assert np.all(np.diff(quantized) >= -1e-12)

    def test_invalid_bits(self):
        with pytest.raises(ValidationError):
            UniformQuantizer(resolution_bits=0)

    @given(st.floats(min_value=-0.999, max_value=0.999))
    @settings(max_examples=50, deadline=None)
    def test_property_idempotent(self, value):
        quantizer = UniformQuantizer(resolution_bits=10, full_scale=1.0)
        once = quantizer.quantize([value])[0]
        twice = quantizer.quantize([once])[0]
        assert once == pytest.approx(twice, abs=1e-15)


class TestQuantizerNoise:
    def test_ideal_snr_formula(self):
        assert ideal_quantizer_snr_db(10) == pytest.approx(61.96)
        assert ideal_quantizer_snr_db(12) == pytest.approx(74.0, abs=0.1)

    def test_measured_sinad_close_to_ideal(self):
        """A full-scale sine through the 10-bit quantizer hits ~62 dB SINAD."""
        rate = 100e6
        quantizer = UniformQuantizer(resolution_bits=10, full_scale=1.0)
        n = np.arange(65536)
        # Non-coherent frequency to exercise all codes.
        tone = 0.999 * np.sin(2 * np.pi * 3.137e6 * n / rate)
        quantized = quantizer.quantize(tone)
        measured = sinad_db(quantized, rate, 3.137e6)
        assert measured == pytest.approx(ideal_quantizer_snr_db(10), abs=2.0)

    def test_quantization_noise_power_formula(self):
        quantizer = UniformQuantizer(resolution_bits=10, full_scale=1.0)
        rng = np.random.default_rng(1)
        values = rng.uniform(-0.9, 0.9, 200000)
        error = quantizer.quantize(values) - values
        assert np.var(error) == pytest.approx(quantizer.quantization_noise_power(), rel=0.05)
