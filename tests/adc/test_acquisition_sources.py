"""Tests for repro.adc.acquisition: the hardware seam under the BIST engine.

Covers the protocol coercion, the record/replay pair, both persistence
containers (``.npz`` and JSONL), the replay-mismatch guard rails, and the
engine-level determinism contract: a BIST run replayed from its own recorded
captures yields a bit-identical report.
"""

import numpy as np
import pytest

from repro.adc import BpTiadc
from repro.adc.acquisition import (
    AcquisitionCapture,
    AcquisitionMetadata,
    CaptureRecord,
    CapturedSamplesSource,
    RecordingSource,
    SimulatedTiadcSource,
    as_acquisition_source,
)
from repro.bist import BistConfig, TransmitterBist, default_converter
from repro.errors import ConfigurationError, ValidationError
from repro.transmitter import HomodyneTransmitter, TransmitterConfig

FAST = BistConfig(
    num_samples_fast=256,
    num_samples_slow=128,
    lms_max_iterations=40,
    num_cost_points=120,
    measure_evm_enabled=False,
)


def make_converter(config: BistConfig = FAST) -> BpTiadc:
    return default_converter(
        config.acquisition_bandwidth_hz,
        dcde_static_error_seconds=5e-12,
        channel1_skew_seconds=2e-12,
        seed=5,
    )


def synthetic_capture(num_records: int = 2) -> AcquisitionCapture:
    """A small hand-built capture (no simulation) for replay unit tests."""
    records = []
    for index in range(num_records):
        size = 16
        records.append(
            CaptureRecord(
                sample_rate_hz=80e6 / (index + 1),
                num_samples=size,
                start_time=0.25 * index,
                on_grid=np.linspace(-1.0, 1.0, size) + index,
                delayed=np.linspace(1.0, -1.0, size) - index,
                sample_period=(index + 1) / 80e6,
                delay=100e-12,
                band_f_low=0.96e9,
                band_f_high=1.04e9,
            )
        )
    return AcquisitionCapture(
        records=tuple(records),
        programmed_delay_seconds=100e-12,
        true_delay_seconds=102e-12,
    )


class TestCoercion:
    def test_bare_tiadc_is_wrapped(self):
        source = as_acquisition_source(make_converter())
        assert isinstance(source, SimulatedTiadcSource)

    def test_sources_pass_through(self):
        source = SimulatedTiadcSource(make_converter())
        assert as_acquisition_source(source) is source

    def test_other_types_are_rejected(self):
        with pytest.raises(ValidationError, match="AcquisitionSource"):
            as_acquisition_source("a-driver-handle")


class TestSimulatedSource:
    def test_delegates_rate_and_delay(self):
        converter = make_converter()
        source = SimulatedTiadcSource(converter)
        assert source.sample_rate == converter.sample_rate
        programmed = source.program_delay(100e-12)
        assert programmed == converter.programmed_delay
        assert source.true_delay == converter.true_delay

    def test_metadata_round_trips(self):
        source = SimulatedTiadcSource(make_converter())
        source.program_delay(100e-12)
        metadata = source.metadata()
        assert metadata.kind == "simulated-tiadc"
        assert AcquisitionMetadata.from_dict(metadata.to_dict()) == metadata

    def test_unprogrammed_delay_yields_none_metadata(self):
        metadata = SimulatedTiadcSource(make_converter()).metadata()
        assert metadata.programmed_delay_seconds is None


class TestReplaySource:
    def test_replays_records_in_call_order(self):
        capture = synthetic_capture()
        source = CapturedSamplesSource(capture)
        assert source.program_delay(123e-12) == 100e-12  # the recorded value
        first = source.acquire(None, None, 16, start_time=0.0)
        np.testing.assert_array_equal(first.on_grid, capture.records[0].on_grid)
        slow = source.with_sample_rate(40e6)
        second = slow.acquire(None, None, 16, start_time=0.25)
        np.testing.assert_array_equal(second.delayed, capture.records[1].delayed)

    def test_rate_mismatch_is_rejected(self):
        source = CapturedSamplesSource(synthetic_capture(), sample_rate=75e6)
        with pytest.raises(ConfigurationError, match="replay mismatch"):
            source.acquire(None, None, 16, start_time=0.0)

    def test_sample_count_mismatch_is_rejected(self):
        source = CapturedSamplesSource(synthetic_capture())
        with pytest.raises(ConfigurationError, match="recorded 16 samples"):
            source.acquire(None, None, 32, start_time=0.0)

    def test_start_time_mismatch_is_rejected(self):
        source = CapturedSamplesSource(synthetic_capture())
        with pytest.raises(ConfigurationError, match="start time"):
            source.acquire(None, None, 16, start_time=0.5)

    def test_exhausted_capture_is_rejected(self):
        source = CapturedSamplesSource(synthetic_capture(num_records=1))
        source.acquire(None, None, 16, start_time=0.0)
        with pytest.raises(ConfigurationError, match="exhausted"):
            source.acquire(None, None, 16, start_time=0.0)

    def test_rewind_resets_the_cursor(self):
        source = CapturedSamplesSource(synthetic_capture(num_records=1))
        first = source.acquire(None, None, 16, start_time=0.0)
        source.rewind()
        again = source.acquire(None, None, 16, start_time=0.0)
        np.testing.assert_array_equal(first.on_grid, again.on_grid)

    def test_empty_capture_is_rejected(self):
        with pytest.raises(ValidationError, match="at least one record"):
            CapturedSamplesSource(AcquisitionCapture())

    def test_metadata_describes_the_capture(self):
        metadata = CapturedSamplesSource(synthetic_capture()).metadata()
        assert metadata.kind == "captured-samples"
        assert metadata.num_captures == 2
        assert metadata.true_delay_seconds == 102e-12


class TestPersistence:
    @pytest.mark.parametrize("suffix", ["npz", "jsonl"])
    def test_save_load_round_trip_is_exact(self, tmp_path, suffix):
        capture = synthetic_capture()
        path = tmp_path / f"capture.{suffix}"
        capture.save(path)
        loaded = AcquisitionCapture.load(path)
        assert len(loaded) == len(capture)
        assert loaded.programmed_delay_seconds == capture.programmed_delay_seconds
        assert loaded.true_delay_seconds == capture.true_delay_seconds
        for original, rebuilt in zip(capture.records, loaded.records):
            np.testing.assert_array_equal(original.on_grid, rebuilt.on_grid)
            np.testing.assert_array_equal(original.delayed, rebuilt.delayed)
            assert original.sample_rate_hz == rebuilt.sample_rate_hz
            assert original.start_time == rebuilt.start_time

    def test_jsonl_header_is_checked(self, tmp_path):
        path = tmp_path / "not-a-capture.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValidationError, match="not an acquisition capture"):
            AcquisitionCapture.load(path)


class TestEngineDeterminism:
    """Record one BIST run, replay it: the reports must be bit-identical."""

    @pytest.fixture(scope="class")
    def recorded_run(self):
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=21))
        recorder = RecordingSource(SimulatedTiadcSource(make_converter()))
        engine = TransmitterBist(transmitter, recorder, config=FAST)
        report = engine.run()
        return report, recorder.capture()

    def test_recording_is_transparent(self, recorded_run):
        report, capture = recorded_run
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=21))
        baseline = TransmitterBist(transmitter, make_converter(), config=FAST).run()
        assert baseline.to_dict() == report.to_dict()
        # One fast and one slow acquisition per run.
        assert len(capture) == 2

    def test_replay_reproduces_the_report_bit_for_bit(self, recorded_run):
        report, capture = recorded_run
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=21))
        engine = TransmitterBist(
            transmitter, CapturedSamplesSource(capture), config=FAST
        )
        assert engine.run().to_dict() == report.to_dict()

    def test_replay_survives_a_disk_round_trip(self, recorded_run, tmp_path):
        report, capture = recorded_run
        path = tmp_path / "capture.npz"
        capture.save(path)
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=21))
        engine = TransmitterBist(
            transmitter,
            CapturedSamplesSource(AcquisitionCapture.load(path)),
            config=FAST,
        )
        assert engine.run().to_dict() == report.to_dict()
