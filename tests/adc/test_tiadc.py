"""Tests for repro.adc.tiadc (DCDE, BP-TIADC and the uniform TIADC)."""

import numpy as np
import pytest

from repro.adc import (
    AdcChannel,
    BpTiadc,
    ChannelMismatch,
    DigitallyControlledDelayElement,
    TimeInterleavedAdc,
    UniformQuantizer,
)
from repro.dsp import relative_reconstruction_error
from repro.errors import ConfigurationError, ValidationError
from repro.sampling import BandpassBand, NonuniformReconstructor
from repro.signals import multitone_in_band, single_tone


BAND = BandpassBand.from_centre(1.0e9, 90.0e6)
SIGNAL = multitone_in_band(BAND.centre - 7e6, BAND.centre + 7e6, 7, amplitude=0.25, seed=3)


def make_adc(**kwargs):
    defaults = dict(
        sample_rate=90e6,
        dcde=DigitallyControlledDelayElement(),
        channel0=AdcChannel(quantizer=UniformQuantizer(12, 2.0), seed=1),
        channel1=AdcChannel(quantizer=UniformQuantizer(12, 2.0), seed=2),
        seed=42,
    )
    defaults.update(kwargs)
    return BpTiadc(**defaults)


class TestDcde:
    def test_code_round_trip(self):
        dcde = DigitallyControlledDelayElement(resolution_seconds=1e-12, max_delay_seconds=1e-9)
        code = dcde.code_for_delay(180e-12)
        assert dcde.programmed_delay(code) == pytest.approx(180e-12)

    def test_quantised_to_resolution(self):
        dcde = DigitallyControlledDelayElement(resolution_seconds=5e-12, max_delay_seconds=1e-9)
        code = dcde.code_for_delay(182e-12)
        assert dcde.programmed_delay(code) == pytest.approx(180e-12)

    def test_static_error_in_actual_delay(self):
        dcde = DigitallyControlledDelayElement(static_error_seconds=4e-12)
        code = dcde.code_for_delay(100e-12)
        assert dcde.actual_delay(code) - dcde.programmed_delay(code) == pytest.approx(4e-12)

    def test_out_of_range_rejected(self):
        dcde = DigitallyControlledDelayElement(max_delay_seconds=500e-12)
        with pytest.raises(ConfigurationError):
            dcde.code_for_delay(1e-9)

    def test_num_codes(self):
        dcde = DigitallyControlledDelayElement(resolution_seconds=1e-12, max_delay_seconds=100e-12)
        assert dcde.num_codes == 101

    def test_invalid_code(self):
        dcde = DigitallyControlledDelayElement(resolution_seconds=1e-12, max_delay_seconds=10e-12)
        with pytest.raises(ConfigurationError):
            dcde.programmed_delay(99)


class TestBpTiadc:
    def test_programmed_vs_true_delay(self):
        adc = make_adc(
            dcde=DigitallyControlledDelayElement(static_error_seconds=5e-12),
            channel1=AdcChannel(
                quantizer=UniformQuantizer(12, 2.0),
                mismatch=ChannelMismatch(skew_seconds=2e-12),
                seed=2,
            ),
        )
        adc.program_delay(180e-12)
        assert adc.programmed_delay == pytest.approx(180e-12)
        assert adc.true_delay == pytest.approx(187e-12)

    def test_acquire_without_programming_rejected(self):
        adc = make_adc()
        with pytest.raises(ConfigurationError):
            adc.acquire(SIGNAL, BAND, num_samples=64)

    def test_acquired_sample_set_metadata(self):
        adc = make_adc()
        adc.program_delay(180e-12)
        sample_set = adc.acquire(SIGNAL, BAND, num_samples=128, start_time=1e-6)
        assert len(sample_set) == 128
        assert sample_set.sample_period == pytest.approx(1.0 / 90e6)
        assert sample_set.start_time == pytest.approx(1e-6)
        assert sample_set.delay == pytest.approx(adc.true_delay)
        assert sample_set.band.bandwidth == pytest.approx(90e6)

    def test_acquisition_supports_reconstruction(self):
        adc = make_adc()
        adc.program_delay(180e-12)
        sample_set = adc.acquire(SIGNAL, BAND, num_samples=360)
        reconstructor = NonuniformReconstructor(sample_set, num_taps=60)
        low, high = reconstructor.valid_time_range()
        times = np.random.default_rng(0).uniform(low, high, 200)
        error = relative_reconstruction_error(SIGNAL.evaluate(times), reconstructor.evaluate(times))
        assert error < 0.01  # 12-bit, no jitter: sub-percent reconstruction

    def test_offset_gain_mismatch_visible(self):
        adc = make_adc(
            channel1=AdcChannel(
                quantizer=UniformQuantizer(12, 2.0),
                mismatch=ChannelMismatch(offset=0.1, gain_error=0.05),
                seed=2,
            ),
        )
        adc.program_delay(180e-12)
        sample_set = adc.acquire(SIGNAL, BAND, num_samples=512)
        assert abs(np.mean(sample_set.delayed) - np.mean(sample_set.on_grid)) > 0.05

    def test_skew_jitter_degrades_acquisition(self):
        clean = make_adc(seed=7)
        clean.program_delay(180e-12)
        jittery = make_adc(skew_jitter_rms_seconds=10e-12, seed=7)
        jittery.program_delay(180e-12)
        clean_set = clean.acquire(SIGNAL, BAND, num_samples=256)
        jittery_set = jittery.acquire(SIGNAL, BAND, num_samples=256)
        # Channel 0 identical (same clock), channel 1 perturbed by the skew jitter.
        np.testing.assert_allclose(clean_set.on_grid, jittery_set.on_grid, atol=1e-3)
        assert not np.allclose(clean_set.delayed, jittery_set.delayed, atol=1e-3)

    def test_reduced_rate_clone_shares_hardware(self):
        adc = make_adc()
        adc.program_delay(180e-12)
        slow = adc.with_sample_rate(45e6)
        assert slow.sample_rate == pytest.approx(45e6)
        assert slow.channel0 is adc.channel0
        assert slow.true_delay == pytest.approx(adc.true_delay)
        sample_set = slow.acquire(SIGNAL, BAND, num_samples=64)
        assert sample_set.band.bandwidth == pytest.approx(45e6)
        assert sample_set.band.centre == pytest.approx(BAND.centre)

    def test_invalid_signal_type(self):
        adc = make_adc()
        adc.program_delay(100e-12)
        with pytest.raises(ValidationError):
            adc.acquire(np.ones(16), BAND, num_samples=16)


class TestTimeInterleavedAdc:
    def test_interleaved_stream_order(self):
        adc = TimeInterleavedAdc(sample_rate=90e6, seed=1)
        tone = single_tone(10e6, amplitude=0.5)
        ch0, ch1, interleaved = adc.acquire(tone, num_samples_per_channel=32)
        np.testing.assert_allclose(interleaved[0::2], ch0)
        np.testing.assert_allclose(interleaved[1::2], ch1)

    def test_output_rate(self):
        assert TimeInterleavedAdc(sample_rate=90e6).output_rate == pytest.approx(180e6)

    def test_skew_creates_interleaving_error(self):
        tone = single_tone(40e6, amplitude=0.9)
        clean = TimeInterleavedAdc(sample_rate=90e6, seed=1)
        skewed = TimeInterleavedAdc(
            sample_rate=90e6,
            channel1=AdcChannel(
                quantizer=UniformQuantizer(),
                mismatch=ChannelMismatch(skew_seconds=200e-12),
            ),
            seed=1,
        )
        _, ch1_clean, _ = clean.acquire(tone, 128)
        _, ch1_skewed, _ = skewed.acquire(tone, 128)
        assert not np.allclose(ch1_clean, ch1_skewed, atol=1e-3)
