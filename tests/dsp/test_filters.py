"""Tests for repro.dsp.filters."""

import numpy as np
import pytest

from repro.dsp import (
    bandpass_fir,
    filter_group_delay,
    fir_filter,
    frequency_response,
    highpass_fir,
    lowpass_fir,
    zero_phase_filter,
)
from repro.errors import ValidationError


RATE = 100e6


class TestLowpassDesign:
    def test_dc_gain_unity(self):
        taps = lowpass_fir(10e6, RATE, num_taps=101)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_passband_and_stopband(self):
        taps = lowpass_fir(10e6, RATE, num_taps=201)
        freqs, response = frequency_response(taps, RATE, num_points=1024)
        magnitude = np.abs(response)
        assert np.all(magnitude[freqs < 7e6] > 0.95)
        assert np.all(magnitude[freqs > 15e6] < 0.02)

    def test_even_taps_rejected(self):
        with pytest.raises(ValidationError):
            lowpass_fir(10e6, RATE, num_taps=100)

    def test_cutoff_above_nyquist_rejected(self):
        with pytest.raises(ValidationError):
            lowpass_fir(60e6, RATE)

    def test_linear_phase_symmetry(self):
        taps = lowpass_fir(10e6, RATE, num_taps=101)
        np.testing.assert_allclose(taps, taps[::-1], atol=1e-15)


class TestHighpassDesign:
    def test_dc_gain_zero(self):
        taps = highpass_fir(10e6, RATE, num_taps=101)
        assert abs(np.sum(taps)) < 1e-9

    def test_high_frequency_passes(self):
        taps = highpass_fir(10e6, RATE, num_taps=201)
        freqs, response = frequency_response(taps, RATE, num_points=1024)
        magnitude = np.abs(response)
        assert np.all(magnitude[freqs > 20e6] > 0.9)


class TestBandpassDesign:
    def test_band_centre_unity(self):
        taps = bandpass_fir(20e6, 30e6, RATE, num_taps=301)
        freqs, response = frequency_response(taps, RATE, num_points=2048)
        magnitude = np.abs(response)
        centre_bin = np.argmin(np.abs(freqs - 25e6))
        assert magnitude[centre_bin] == pytest.approx(1.0, abs=0.05)

    def test_out_of_band_rejection(self):
        taps = bandpass_fir(20e6, 30e6, RATE, num_taps=301)
        freqs, response = frequency_response(taps, RATE, num_points=2048)
        magnitude = np.abs(response)
        assert np.all(magnitude[freqs < 10e6] < 0.02)
        assert np.all(magnitude[freqs > 40e6] < 0.02)

    def test_swapped_edges_rejected(self):
        with pytest.raises(ValidationError):
            bandpass_fir(30e6, 20e6, RATE)

    def test_even_taps_rejected(self):
        with pytest.raises(ValidationError):
            bandpass_fir(20e6, 30e6, RATE, num_taps=300)


class TestFiltering:
    def test_fir_filter_length_preserved(self):
        taps = lowpass_fir(10e6, RATE, num_taps=31)
        signal = np.random.default_rng(0).normal(size=500)
        assert fir_filter(taps, signal).size == 500

    def test_zero_phase_no_delay(self):
        taps = lowpass_fir(5e6, RATE, num_taps=63)
        n = np.arange(4000)
        slow_tone = np.cos(2 * np.pi * 1e6 * n / RATE)
        filtered = zero_phase_filter(taps, slow_tone)
        # No group delay: the filtered tone stays aligned with the input.
        np.testing.assert_allclose(filtered[500:3500], slow_tone[500:3500], atol=1e-2)

    def test_zero_phase_too_short_rejected(self):
        taps = lowpass_fir(5e6, RATE, num_taps=63)
        with pytest.raises(ValidationError):
            zero_phase_filter(taps, np.ones(100))

    def test_group_delay(self):
        taps = lowpass_fir(5e6, RATE, num_taps=63)
        assert filter_group_delay(taps) == pytest.approx(31.0)

    def test_frequency_response_range(self):
        taps = lowpass_fir(5e6, RATE, num_taps=63)
        freqs, _ = frequency_response(taps, RATE, num_points=256)
        assert freqs[0] == pytest.approx(0.0)
        assert freqs[-1] <= RATE / 2.0
