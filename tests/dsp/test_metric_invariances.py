"""Metamorphic tests of the BIST metric stack.

Rather than asserting absolute values, these tests assert *relations* that
must hold for any input — the metamorphic properties of the measurement
layer the BIST verdicts rest on:

* EVM is invariant under a common phase rotation and complex gain of the
  received symbols (the measurement aligns with a least-squares complex
  gain before comparing);
* ACPR and occupied bandwidth are power *ratios*: scaling the signal
  amplitude must not move them;
* the spectral-mask margin is monotone non-increasing in injected
  out-of-band noise power.

Everything is seeded and parametrized over every built-in waveform
profile, so each profile's own constellation, bandwidth and mask geometry
exercises the properties.
"""

import numpy as np
import pytest

from repro.bist.masks import SpectralMask
from repro.bist.measurements import measure_acpr, measure_occupied_bandwidth
from repro.dsp.metrics import error_vector_magnitude
from repro.dsp.spectrum import SpectrumEstimate
from repro.signals import get_profile, list_profiles
from repro.signals.constellations import get_constellation
from repro.signals.ofdm import build_used_grid, ofdm_grid_metrics

ALL_PROFILES = list_profiles()
SEEDS = [0, 1]


def ls_aligned_evm(reference: np.ndarray, received: np.ndarray) -> float:
    """EVM after the least-squares complex-gain alignment the BIST applies."""
    gain = np.vdot(received, reference) / np.vdot(received, received)
    return error_vector_magnitude(reference, received * gain)


def profile_symbols(profile_name: str, seed: int, count: int = 256) -> np.ndarray:
    profile = get_profile(profile_name)
    constellation = get_constellation(profile.modulation)
    rng = np.random.default_rng(seed)
    return constellation.map(rng.integers(0, constellation.order, size=count))


def synthetic_spectrum(profile_name: str, seed: int, noise_power: float = 0.0) -> SpectrumEstimate:
    """A seeded in-band plateau with smooth skirts around the profile carrier."""
    profile = get_profile(profile_name)
    rng = np.random.default_rng(seed)
    span = 4.0 * max(profile.channel_spacing_hz, profile.occupied_bandwidth_hz)
    resolution = span / 2048.0
    frequencies = profile.carrier_frequency_hz + np.arange(-2048, 2049) * resolution
    offsets = frequencies - profile.carrier_frequency_hz
    half_band = profile.occupied_bandwidth_hz / 2.0
    # Gaussian skirts falling ~55 dB over two bandwidths, plus seeded ripple.
    shape = np.where(
        np.abs(offsets) <= half_band,
        1.0,
        np.exp(-((np.abs(offsets) - half_band) / half_band) ** 2 * 6.0),
    )
    ripple = 1.0 + 0.1 * rng.standard_normal(frequencies.size)
    psd = shape * np.abs(ripple) + 1e-9 + noise_power
    return SpectrumEstimate(
        frequencies_hz=frequencies,
        psd=psd,
        resolution_hz=resolution,
        two_sided=True,
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("profile_name", ALL_PROFILES)
class TestEvmInvariances:
    def test_common_phase_rotation_leaves_evm_unchanged(self, profile_name, seed):
        reference = profile_symbols(profile_name, seed)
        rng = np.random.default_rng(seed + 100)
        received = reference + 0.05 * (
            rng.standard_normal(reference.size) + 1j * rng.standard_normal(reference.size)
        )
        baseline = ls_aligned_evm(reference, received)
        for phase in (0.3, -1.2, np.pi / 2):
            rotated = received * np.exp(1j * phase)
            assert ls_aligned_evm(reference, rotated) == pytest.approx(baseline, rel=1e-9)

    def test_common_complex_gain_leaves_evm_unchanged(self, profile_name, seed):
        reference = profile_symbols(profile_name, seed)
        rng = np.random.default_rng(seed + 200)
        received = reference + 0.08 * (
            rng.standard_normal(reference.size) + 1j * rng.standard_normal(reference.size)
        )
        baseline = ls_aligned_evm(reference, received)
        for gain in (0.25, 3.0, 0.7 - 1.9j):
            assert ls_aligned_evm(reference, received * gain) == pytest.approx(
                baseline, rel=1e-9
            )

    def test_evm_scales_linearly_with_error_magnitude(self, profile_name, seed):
        reference = profile_symbols(profile_name, seed)
        rng = np.random.default_rng(seed + 300)
        error = rng.standard_normal(reference.size) + 1j * rng.standard_normal(reference.size)
        small = error_vector_magnitude(reference, reference + 0.01 * error)
        large = error_vector_magnitude(reference, reference + 0.03 * error)
        assert large == pytest.approx(3.0 * small, rel=1e-9)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "profile_name", [name for name in ALL_PROFILES if get_profile(name).family == "ofdm"]
)
class TestOfdmMetricInvariances:
    def test_grid_metrics_invariant_under_common_complex_gain(self, profile_name, seed):
        params = get_profile(profile_name).ofdm
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(8 * params.num_data_subcarriers) + 1j * rng.standard_normal(
            8 * params.num_data_subcarriers
        )
        reference = build_used_grid(params, data)
        received = reference + 0.03 * (
            rng.standard_normal(reference.shape) + 1j * rng.standard_normal(reference.shape)
        )
        baseline = ofdm_grid_metrics(params, reference, received)
        for gain in (np.exp(0.7j), 2.5, 0.4 + 1.1j):
            scaled = ofdm_grid_metrics(params, reference, received * gain)
            assert scaled.evm_percent == pytest.approx(baseline.evm_percent, rel=1e-9)
            np.testing.assert_allclose(
                scaled.per_subcarrier_evm_percent,
                baseline.per_subcarrier_evm_percent,
                rtol=1e-9,
            )
            assert scaled.spectral_flatness_db == pytest.approx(
                baseline.spectral_flatness_db, rel=1e-9, abs=1e-12
            )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("profile_name", ALL_PROFILES)
class TestSpectrumRatioInvariances:
    def test_acpr_invariant_under_amplitude_scaling(self, profile_name, seed):
        profile = get_profile(profile_name)
        spectrum = synthetic_spectrum(profile_name, seed)
        baseline = measure_acpr(
            spectrum,
            channel_centre_hz=profile.carrier_frequency_hz,
            channel_bandwidth_hz=profile.channel_bandwidth_hz,
            channel_spacing_hz=profile.channel_spacing_hz,
        )
        for scale in (1e-3, 4.0, 1e3):
            scaled_spectrum = SpectrumEstimate(
                frequencies_hz=spectrum.frequencies_hz,
                psd=spectrum.psd * scale,
                resolution_hz=spectrum.resolution_hz,
                two_sided=spectrum.two_sided,
            )
            scaled = measure_acpr(
                scaled_spectrum,
                channel_centre_hz=profile.carrier_frequency_hz,
                channel_bandwidth_hz=profile.channel_bandwidth_hz,
                channel_spacing_hz=profile.channel_spacing_hz,
            )
            for key in ("lower_db", "upper_db", "worst_db"):
                assert scaled[key] == pytest.approx(baseline[key], abs=1e-9)

    def test_occupied_bandwidth_invariant_under_amplitude_scaling(self, profile_name, seed):
        profile = get_profile(profile_name)
        spectrum = synthetic_spectrum(profile_name, seed)
        search = 2.0 * max(profile.channel_spacing_hz, profile.occupied_bandwidth_hz)
        baseline = measure_occupied_bandwidth(
            spectrum,
            channel_centre_hz=profile.carrier_frequency_hz,
            search_half_width_hz=search,
        )
        for scale in (1e-3, 7.0, 1e3):
            scaled_spectrum = SpectrumEstimate(
                frequencies_hz=spectrum.frequencies_hz,
                psd=spectrum.psd * scale,
                resolution_hz=spectrum.resolution_hz,
                two_sided=spectrum.two_sided,
            )
            scaled = measure_occupied_bandwidth(
                scaled_spectrum,
                channel_centre_hz=profile.carrier_frequency_hz,
                search_half_width_hz=search,
            )
            assert scaled == pytest.approx(baseline, rel=1e-12)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "profile_name", [name for name in ALL_PROFILES if get_profile(name).mask_points_db]
)
class TestMaskMarginMonotonicity:
    def test_mask_margin_monotone_in_injected_noise_power(self, profile_name, seed):
        profile = get_profile(profile_name)
        mask = SpectralMask.from_profile(profile)
        noise_levels = [0.0, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1]
        margins = []
        for noise_power in noise_levels:
            spectrum = synthetic_spectrum(profile_name, seed, noise_power=noise_power)
            result = mask.check(spectrum, channel_centre_hz=profile.carrier_frequency_hz)
            margins.append(result.worst_margin_db)
        # Raising the out-of-band noise floor can only erode the margin.
        for before, after in zip(margins, margins[1:]):
            assert after <= before + 1e-9
        # And enough noise must actually fail the mask for every profile.
        assert margins[-1] < margins[0]
