"""Tests for repro.dsp.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    effective_number_of_bits,
    error_vector_magnitude,
    mean_squared_error,
    normalised_mean_squared_error,
    relative_reconstruction_error,
    signal_to_noise_ratio_db,
    sinad_db,
    spurious_free_dynamic_range_db,
)
from repro.errors import MeasurementError, ValidationError
from repro.signals import qpsk


class TestErrorMetrics:
    def test_mse_of_identical_is_zero(self):
        x = np.random.default_rng(0).normal(size=100)
        assert mean_squared_error(x, x) == 0.0

    def test_mse_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_nmse_scale_invariant(self):
        rng = np.random.default_rng(1)
        reference = rng.normal(size=200)
        estimate = reference + 0.1 * rng.normal(size=200)
        a = normalised_mean_squared_error(reference, estimate)
        b = normalised_mean_squared_error(5.0 * reference, 5.0 * estimate)
        assert a == pytest.approx(b)

    def test_nmse_zero_reference_rejected(self):
        with pytest.raises(MeasurementError):
            normalised_mean_squared_error(np.zeros(10), np.ones(10))

    def test_relative_error_is_sqrt_of_nmse(self):
        rng = np.random.default_rng(2)
        reference = rng.normal(size=100)
        estimate = reference + 0.05 * rng.normal(size=100)
        assert relative_reconstruction_error(reference, estimate) == pytest.approx(
            np.sqrt(normalised_mean_squared_error(reference, estimate))
        )

    def test_snr_db_of_known_noise(self):
        rng = np.random.default_rng(3)
        reference = np.sqrt(2.0) * np.sin(2 * np.pi * 0.01 * np.arange(10000))
        noisy = reference + 0.1 * rng.normal(size=10000)
        assert signal_to_noise_ratio_db(reference, noisy) == pytest.approx(20.0, abs=0.5)

    def test_snr_infinite_for_perfect(self):
        x = np.ones(10)
        assert signal_to_noise_ratio_db(x, x) == float("inf")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            mean_squared_error([1.0, 2.0], [1.0])

    @given(st.floats(min_value=0.001, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_relative_error_tracks_injected_error(self, scale):
        reference = np.sin(2 * np.pi * 0.01 * np.arange(4096))
        rng = np.random.default_rng(0)
        perturbation = rng.normal(size=reference.size)
        perturbation *= scale * np.sqrt(np.mean(reference**2) / np.mean(perturbation**2))
        measured = relative_reconstruction_error(reference, reference + perturbation)
        assert measured == pytest.approx(scale, rel=1e-6)


class TestEvm:
    def test_zero_for_identical(self):
        symbols = qpsk().map(np.arange(4).repeat(10))
        assert error_vector_magnitude(symbols, symbols) == pytest.approx(0.0)

    def test_known_offset(self):
        symbols = qpsk().map(np.arange(4).repeat(25))
        received = symbols + 0.1
        expected = 10.0  # |0.1| / rms(1.0) in percent
        assert error_vector_magnitude(symbols, received) == pytest.approx(expected, rel=1e-6)

    def test_fraction_output(self):
        symbols = qpsk().map(np.arange(4).repeat(25))
        received = symbols + 0.1
        assert error_vector_magnitude(symbols, received, as_percent=False) == pytest.approx(0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(MeasurementError):
            error_vector_magnitude(np.zeros(4, dtype=complex), np.ones(4, dtype=complex))


class TestAdcMetrics:
    def test_sinad_of_clean_tone_high(self):
        rate = 100e6
        n = np.arange(4096)
        tone = np.sin(2 * np.pi * 5e6 * n / rate)
        assert sinad_db(tone, rate, 5e6) > 100.0

    def test_sinad_with_noise(self):
        rate = 100e6
        rng = np.random.default_rng(5)
        n = np.arange(16384)
        tone = np.sin(2 * np.pi * 5e6 * n / rate)
        noisy = tone + 0.01 * rng.normal(size=n.size)
        measured = sinad_db(noisy, rate, 5e6)
        # SNR = 20*log10(rms_sig / rms_noise) = 20*log10(0.707/0.01) ~ 37 dB
        assert measured == pytest.approx(37.0, abs=1.5)

    def test_enob_formula(self):
        assert effective_number_of_bits(61.96) == pytest.approx(10.0, abs=0.01)

    def test_sfdr_clean_tone(self):
        rate = 100e6
        n = np.arange(8192)
        tone = np.sin(2 * np.pi * 5e6 * n / rate)
        assert spurious_free_dynamic_range_db(tone, rate) > 60.0

    def test_sfdr_with_spur(self):
        rate = 100e6
        n = np.arange(8192)
        signal = np.sin(2 * np.pi * 5e6 * n / rate) + 0.01 * np.sin(2 * np.pi * 15e6 * n / rate)
        assert spurious_free_dynamic_range_db(signal, rate) == pytest.approx(40.0, abs=2.0)
