"""Tests for repro.dsp.spectrum."""

import warnings

import numpy as np
import pytest

from repro.dsp import (
    adjacent_channel_power_ratio,
    band_power,
    occupied_bandwidth,
    peak_frequency,
    periodogram,
    total_power,
    welch_psd,
)
from repro.errors import MeasurementError, MeasurementWarning, ValidationError


RATE = 100e6


def make_tone(frequency, amplitude=1.0, num=8192, complex_signal=False):
    n = np.arange(num)
    if complex_signal:
        return amplitude * np.exp(2j * np.pi * frequency * n / RATE)
    return amplitude * np.cos(2 * np.pi * frequency * n / RATE)


class TestPeriodogram:
    def test_peak_at_tone_frequency(self):
        estimate = periodogram(make_tone(12.5e6), RATE)
        assert peak_frequency(estimate) == pytest.approx(12.5e6, abs=2 * estimate.resolution_hz)

    def test_total_power_matches_time_domain(self):
        signal = make_tone(12.5e6, amplitude=2.0)
        estimate = periodogram(signal, RATE)
        assert total_power(estimate) == pytest.approx(np.mean(signal**2), rel=0.05)

    def test_two_sided_for_complex_input(self):
        estimate = periodogram(make_tone(10e6, complex_signal=True), RATE)
        assert estimate.two_sided
        assert estimate.frequencies_hz[0] < 0.0

    def test_one_sided_for_real_input(self):
        estimate = periodogram(make_tone(10e6), RATE)
        assert not estimate.two_sided
        assert estimate.frequencies_hz[0] >= 0.0

    def test_complex_tone_power_preserved(self):
        signal = make_tone(10e6, amplitude=1.5, complex_signal=True)
        estimate = periodogram(signal, RATE)
        assert total_power(estimate) == pytest.approx(np.mean(np.abs(signal) ** 2), rel=0.05)

    def test_short_record_rejected(self):
        with pytest.raises(ValidationError):
            periodogram(np.ones(4), RATE)

    def test_normalised_db_peak_is_zero(self):
        estimate = periodogram(make_tone(10e6), RATE)
        assert np.max(estimate.normalised_db()) == pytest.approx(0.0)


class TestWelch:
    def test_variance_reduction(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=16384)
        single = periodogram(noise, RATE)
        averaged = welch_psd(noise, RATE, segment_length=1024)
        assert np.std(averaged.psd) < np.std(single.psd)

    def test_white_noise_level(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(0.0, 1.0, size=65536)
        estimate = welch_psd(noise, RATE, segment_length=2048)
        # White noise of unit variance: PSD ~ 2/fs (one-sided).
        expected = 2.0 / RATE
        assert np.median(estimate.psd) == pytest.approx(expected, rel=0.15)

    def test_segment_longer_than_record_clipped_with_warning(self):
        # The clamp degrades the estimate to a single periodogram; since the
        # monitor accumulates estimates over hours, the degradation must be
        # loud (MeasurementWarning), not silent.
        with pytest.warns(MeasurementWarning, match="no variance reduction"):
            estimate = welch_psd(make_tone(10e6, num=512), RATE, segment_length=4096)
        assert peak_frequency(estimate) == pytest.approx(10e6, abs=3 * estimate.resolution_hz)

    def test_exact_fit_segment_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", MeasurementWarning)
            welch_psd(make_tone(10e6, num=512), RATE, segment_length=512)

    def test_tail_samples_are_excluded(self):
        # 1000 samples with 512-sample segments and 50% overlap: segments
        # start at 0 and 256; the 232-sample tail does not contribute.
        rng = np.random.default_rng(3)
        noise = rng.normal(size=1000)
        full = welch_psd(noise, RATE, segment_length=512)
        trimmed = welch_psd(noise[: 256 + 512], RATE, segment_length=512)
        np.testing.assert_array_equal(full.psd, trimmed.psd)

    def test_bad_overlap_rejected(self):
        with pytest.raises(ValidationError):
            welch_psd(make_tone(1e6), RATE, overlap_fraction=1.0)


class TestBandPower:
    def test_tone_power_in_band(self):
        estimate = periodogram(make_tone(12.5e6, amplitude=2.0), RATE)
        power = band_power(estimate, 12e6, 13e6)
        assert power == pytest.approx(2.0, rel=0.05)

    def test_out_of_band_power_small(self):
        estimate = periodogram(make_tone(12.5e6), RATE)
        assert band_power(estimate, 30e6, 40e6) < 1e-3

    def test_invalid_band_rejected(self):
        estimate = periodogram(make_tone(12.5e6), RATE)
        with pytest.raises(ValidationError):
            band_power(estimate, 13e6, 12e6)

    def test_sub_resolution_band_uses_fractional_bin_coverage(self):
        # Regression: a band narrower than the bin spacing used to integrate
        # to exactly 0.0 (no bin centre inside it), silently under-reporting
        # the power.  It must now receive the fractional rectangle coverage
        # of the bin(s) it overlaps.
        estimate = periodogram(make_tone(12.5e6, amplitude=2.0), RATE)
        resolution = estimate.resolution_hz
        # A band a tenth of a bin wide, centred between two bin centres near
        # the tone, so no bin centre can fall inside it.
        centre = 12.5e6 + resolution / 2.0
        low, high = centre - resolution / 20.0, centre + resolution / 20.0
        assert not np.any(
            (estimate.frequencies_hz >= low) & (estimate.frequencies_hz <= high)
        )
        power = band_power(estimate, low, high)
        assert power > 0.0
        # Fractional coverage: a tenth of the two neighbouring rectangles.
        index = int(np.searchsorted(estimate.frequencies_hz, centre))
        expected = (high - low) / 2.0 * (
            estimate.psd[index - 1] + estimate.psd[index]
        )
        assert power == pytest.approx(expected)

    def test_sub_resolution_band_scales_with_width(self):
        estimate = periodogram(make_tone(12.5e6), RATE)
        resolution = estimate.resolution_hz
        centre = 12.5e6 + resolution / 2.0
        narrow = band_power(estimate, centre - resolution / 40.0, centre + resolution / 40.0)
        wide = band_power(estimate, centre - resolution / 20.0, centre + resolution / 20.0)
        assert wide == pytest.approx(2.0 * narrow)

    def test_band_outside_covered_span_is_zero(self):
        estimate = periodogram(make_tone(12.5e6), RATE)
        nyquist = estimate.frequencies_hz[-1]
        assert band_power(estimate, nyquist + 1e6, nyquist + 2e6) == 0.0


class TestOccupiedBandwidth:
    def test_narrow_tone(self):
        estimate = periodogram(make_tone(12.5e6), RATE)
        bandwidth, low, high = occupied_bandwidth(estimate, 0.99)
        assert bandwidth < 1e6
        assert low < 12.5e6 < high

    def test_wideband_noise(self):
        rng = np.random.default_rng(2)
        noise = rng.normal(size=65536)
        estimate = welch_psd(noise, RATE, segment_length=2048)
        bandwidth, _, _ = occupied_bandwidth(estimate, 0.99)
        assert bandwidth > 0.9 * 0.99 * RATE / 2.0

    def test_invalid_fraction(self):
        estimate = periodogram(make_tone(10e6), RATE)
        with pytest.raises(ValidationError):
            occupied_bandwidth(estimate, 1.0)


class TestAcpr:
    def test_clean_tone_has_low_acpr(self):
        estimate = periodogram(make_tone(25e6), RATE)
        result = adjacent_channel_power_ratio(estimate, 25e6, 2e6, offset_hz=5e6)
        assert result["worst_db"] < -30.0

    def test_interferer_raises_acpr(self):
        signal = make_tone(25e6) + 0.5 * make_tone(30e6)
        estimate = periodogram(signal, RATE)
        result = adjacent_channel_power_ratio(estimate, 25e6, 2e6, offset_hz=5e6)
        assert result["upper_db"] > -10.0
        assert result["worst_db"] == pytest.approx(result["upper_db"])

    def test_no_main_power_rejected(self):
        # A main channel entirely outside the estimate's covered span has
        # genuinely zero power (a narrow in-band channel now snaps to its
        # bin rectangle instead — see TestBandPower).
        estimate = periodogram(make_tone(25e6), RATE)
        with pytest.raises(MeasurementError):
            adjacent_channel_power_ratio(estimate, 60e6, 1e3, offset_hz=1e6)

    def test_narrow_channels_no_longer_read_zero_power(self):
        # Regression companion of the sub-resolution band_power fix: ACPR
        # over channels narrower than the bin spacing used to raise (main
        # read as 0.0) even though the tone sits right there.
        estimate = periodogram(make_tone(25e6), RATE)
        resolution = estimate.resolution_hz
        result = adjacent_channel_power_ratio(
            estimate, 25e6 + resolution / 2.0, resolution / 10.0, offset_hz=5e6
        )
        assert result["worst_db"] < 0.0
