"""Tests for repro.dsp.interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    apply_fractional_delay,
    fractional_delay_taps,
    linear_interpolate,
    sinc_interpolate,
)
from repro.errors import ValidationError


class TestSincInterpolation:
    def test_on_grid_points_reproduced(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=256)
        rate = 1e6
        times = np.arange(64, 192) / rate
        np.testing.assert_allclose(
            sinc_interpolate(samples, rate, times), samples[64:192], atol=1e-6
        )

    def test_oversampled_tone_between_grid_points(self):
        rate = 100e6
        tone = 3e6
        n = np.arange(2048)
        samples = np.cos(2 * np.pi * tone * n / rate)
        probe = (n[500:1500] + 0.31) / rate
        expected = np.cos(2 * np.pi * tone * probe)
        values = sinc_interpolate(samples, rate, probe, num_taps=48)
        np.testing.assert_allclose(values, expected, atol=2e-5)

    def test_complex_signal_supported(self):
        rate = 100e6
        n = np.arange(1024)
        samples = np.exp(2j * np.pi * 2e6 * n / rate)
        probe = (n[300:700] + 0.5) / rate
        values = sinc_interpolate(samples, rate, probe, num_taps=48)
        expected = np.exp(2j * np.pi * 2e6 * probe)
        np.testing.assert_allclose(values, expected, atol=1e-4)
        assert np.iscomplexobj(values)

    def test_scalar_time_accepted(self):
        samples = np.ones(64)
        value = sinc_interpolate(samples, 1e6, 32e-6)
        assert value.shape == (1,)

    def test_outside_record_tends_to_zero(self):
        samples = np.ones(32)
        value = sinc_interpolate(samples, 1e6, 1.0)  # far outside
        assert abs(value[0]) < 1e-9

    def test_more_taps_more_accurate(self):
        rate = 100e6
        n = np.arange(4096)
        samples = np.cos(2 * np.pi * 11e6 * n / rate)
        probe = (n[1000:3000] + 0.47) / rate
        expected = np.cos(2 * np.pi * 11e6 * probe)
        error_few = np.max(np.abs(sinc_interpolate(samples, rate, probe, num_taps=8) - expected))
        error_many = np.max(np.abs(sinc_interpolate(samples, rate, probe, num_taps=64) - expected))
        assert error_many < error_few

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            sinc_interpolate(np.ones(32), 1e6, 1e-6, window="unknown")


class TestLinearInterpolation:
    def test_midpoint(self):
        samples = np.array([0.0, 1.0, 2.0, 3.0])
        value = linear_interpolate(samples, 1.0, [1.5])
        assert value[0] == pytest.approx(1.5)

    def test_complex(self):
        samples = np.array([0.0 + 0j, 1.0 + 1j])
        value = linear_interpolate(samples, 1.0, [0.5])
        assert value[0] == pytest.approx(0.5 + 0.5j)

    def test_worse_than_sinc_for_tone(self):
        rate = 100e6
        n = np.arange(2048)
        samples = np.cos(2 * np.pi * 20e6 * n / rate)
        probe = (n[500:1500] + 0.5) / rate
        expected = np.cos(2 * np.pi * 20e6 * probe)
        err_linear = np.max(np.abs(linear_interpolate(samples, rate, probe) - expected))
        err_sinc = np.max(np.abs(sinc_interpolate(samples, rate, probe, num_taps=48) - expected))
        assert err_sinc < err_linear


class TestFractionalDelay:
    def test_taps_sum_to_one(self):
        taps = fractional_delay_taps(0.3, num_taps=33)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_zero_delay_recovers_signal(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=512)
        delayed = apply_fractional_delay(samples, 0.0, num_taps=33)
        np.testing.assert_allclose(delayed[32:-32], samples[32:-32], atol=1e-6)

    def test_half_sample_delay_of_tone(self):
        rate = 1.0
        n = np.arange(1024, dtype=float)
        tone = np.cos(2 * np.pi * 0.05 * n)
        delayed = apply_fractional_delay(tone, 0.5, num_taps=65)
        expected = np.cos(2 * np.pi * 0.05 * (n - 0.5))
        np.testing.assert_allclose(delayed[100:-100], expected[100:-100], atol=1e-3)

    def test_invalid_num_taps(self):
        with pytest.raises(ValidationError):
            fractional_delay_taps(0.5, num_taps=2)

    @given(st.floats(min_value=-0.5, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_delay_estimate_matches_request(self, delay):
        # Cross-correlation peak position of a delayed noise burst matches the
        # requested integer part (fractional part shifts the parabola peak).
        rng = np.random.default_rng(7)
        samples = rng.normal(size=1024)
        delayed = apply_fractional_delay(samples, delay, num_taps=65)
        correlation = np.correlate(delayed[100:-100], samples[100:-100], mode="full")
        peak = np.argmax(correlation) - (len(samples[100:-100]) - 1)
        assert abs(peak) <= 1
