"""Tests for repro.dsp.resampling."""

import numpy as np
import pytest

from repro.dsp import downsample, resample_rational, resample_to_rate, upsample
from repro.errors import ValidationError


class TestUpDownSample:
    def test_upsample_length_and_zeros(self):
        out = upsample(np.array([1.0, 2.0, 3.0]), 4)
        assert out.size == 12
        np.testing.assert_allclose(out[::4], [1.0, 2.0, 3.0])
        assert np.all(out[1::4] == 0.0)

    def test_downsample_offset(self):
        data = np.arange(10.0)
        np.testing.assert_allclose(downsample(data, 3, offset=1), [1.0, 4.0, 7.0])

    def test_downsample_bad_offset(self):
        with pytest.raises(ValidationError):
            downsample(np.arange(10.0), 3, offset=3)

    def test_up_then_down_identity(self):
        data = np.random.default_rng(0).normal(size=50)
        np.testing.assert_allclose(downsample(upsample(data, 5), 5), data)


class TestRationalResampling:
    def test_identity_when_equal(self):
        data = np.random.default_rng(1).normal(size=64)
        np.testing.assert_allclose(resample_rational(data, 3, 3), data)

    def test_output_length_ratio(self):
        data = np.random.default_rng(2).normal(size=300)
        out = resample_rational(data, 2, 3)
        assert out.size == 200

    def test_tone_preserved(self):
        rate = 100.0
        n = np.arange(1000)
        tone = np.cos(2 * np.pi * 3.0 * n / rate)
        out = resample_rational(tone, 2, 1)
        n2 = np.arange(out.size)
        expected = np.cos(2 * np.pi * 3.0 * n2 / (2 * rate))
        np.testing.assert_allclose(out[100:-100], expected[100:-100], atol=1e-2)


class TestArbitraryResampling:
    def test_output_duration_preserved(self):
        data = np.random.default_rng(3).normal(size=1000)
        out = resample_to_rate(data, 100e6, 37e6)
        assert out.size == int(np.floor(1000 / 100e6 * 37e6))

    def test_tone_preserved(self):
        in_rate, out_rate = 100e6, 73e6
        n = np.arange(4096)
        tone = np.cos(2 * np.pi * 5e6 * n / in_rate)
        out = resample_to_rate(tone, in_rate, out_rate, num_taps=48)
        m = np.arange(out.size)
        expected = np.cos(2 * np.pi * 5e6 * m / out_rate)
        np.testing.assert_allclose(out[200:-200], expected[200:-200], atol=1e-3)

    def test_too_short_record_rejected(self):
        with pytest.raises(ValidationError):
            resample_to_rate(np.ones(3), 1e6, 1.0)
