"""Tests for repro.signals.standards."""

import pytest

from repro.errors import ValidationError
from repro.signals import PROFILES, WaveformProfile, get_constellation, get_profile, list_profiles


class TestBuiltInProfiles:
    def test_paper_profile_exists(self):
        profile = get_profile("paper-qpsk-1ghz")
        assert profile.carrier_frequency_hz == pytest.approx(1e9)
        assert profile.symbol_rate_hz == pytest.approx(10e6)
        assert profile.modulation == "qpsk"
        assert profile.rolloff == pytest.approx(0.5)

    def test_all_profiles_listed(self):
        assert set(list_profiles()) == set(PROFILES)
        assert len(list_profiles()) >= 5

    def test_every_profile_has_valid_modulation(self):
        for name in list_profiles():
            profile = get_profile(name)
            constellation = get_constellation(profile.modulation)
            assert constellation.order >= 2

    def test_every_profile_mask_monotone_offsets(self):
        for name in list_profiles():
            profile = get_profile(name)
            offsets = [point[0] for point in profile.mask_points_db]
            assert offsets == sorted(offsets)

    def test_every_profile_mask_limits_non_positive(self):
        for name in list_profiles():
            for _, limit in get_profile(name).mask_points_db:
                assert limit <= 0.0

    def test_occupied_bandwidth_below_channel_bandwidth(self):
        for name in list_profiles():
            profile = get_profile(name)
            assert profile.occupied_bandwidth_hz <= profile.channel_bandwidth_hz * 1.05

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValidationError):
            get_profile("does-not-exist")


class TestWaveformProfileValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="test",
            carrier_frequency_hz=1e9,
            symbol_rate_hz=1e6,
            modulation="qpsk",
            rolloff=0.25,
            channel_bandwidth_hz=1.5e6,
            channel_spacing_hz=2e6,
            acpr_limit_db=-40.0,
            evm_limit_percent=10.0,
        )
        base.update(overrides)
        return base

    def test_valid_profile(self):
        profile = WaveformProfile(**self._kwargs())
        assert profile.occupied_bandwidth_hz == pytest.approx(1.25e6)

    def test_rolloff_out_of_range(self):
        with pytest.raises(ValidationError):
            WaveformProfile(**self._kwargs(rolloff=1.2))

    def test_positive_acpr_limit_rejected(self):
        with pytest.raises(ValidationError):
            WaveformProfile(**self._kwargs(acpr_limit_db=5.0))

    def test_zero_evm_limit_rejected(self):
        with pytest.raises(ValidationError):
            WaveformProfile(**self._kwargs(evm_limit_percent=0.0))

    def test_zero_carrier_rejected(self):
        with pytest.raises(ValidationError):
            WaveformProfile(**self._kwargs(carrier_frequency_hz=0.0))
