"""Property tests of the OFDM modulator/demodulator pair.

The BIST's closed-loop OFDM measurement relies on two exact properties of
the multicarrier round trip:

* modulate -> demodulate recovers every transmitted grid cell to machine
  precision, for any FFT size / CP length / oversampling combination;
* moving the FFT window to any integer critical-sample offset inside the
  cyclic prefix changes nothing (after the deterministic phase
  compensation) — this is what makes the measurement robust to residual
  timing error.
"""

import numpy as np
import pytest

from repro.errors import MeasurementError, ValidationError
from repro.signals.ofdm import (
    OfdmDemodulator,
    OfdmModulator,
    OfdmParams,
    build_used_grid,
    ofdm_grid_metrics,
)

#: (fft_size, num_subcarriers, cp_length) corners exercised by the suite.
LAYOUTS = [(16, 12, 4), (32, 26, 8), (64, 52, 16), (128, 100, 12)]


def random_grid_data(params: OfdmParams, num_symbols: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    size = num_symbols * params.num_data_subcarriers
    # Random 16QAM-like points (any complex values round-trip; QAM keeps the
    # magnitudes representative).
    levels = np.array([-3.0, -1.0, 1.0, 3.0]) / np.sqrt(10.0)
    return rng.choice(levels, size=size) + 1j * rng.choice(levels, size=size)


class TestParams:
    def test_layout_counts_are_consistent(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8, pilot_spacing=7)
        assert params.num_data_subcarriers + params.num_pilot_subcarriers == 26
        assert params.symbol_length == 40
        indices = params.subcarrier_indices
        assert indices.size == 26
        assert 0 not in indices  # DC null
        assert np.array_equal(indices, np.sort(indices))
        assert indices.min() == -13 and indices.max() == 13

    def test_pilot_pattern_is_deterministic_comb(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8, pilot_spacing=7)
        assert np.array_equal(params.pilot_positions, [0, 7, 14, 21])
        assert np.array_equal(params.pilot_values, [1.0, -1.0, 1.0, -1.0])

    def test_rate_descriptors(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        assert params.subcarrier_spacing_hz(10e6) == pytest.approx(312.5e3)
        assert params.symbol_duration_seconds(10e6) == pytest.approx(4.0e-6)
        assert params.occupied_bandwidth_hz(10e6) == pytest.approx(27 * 312.5e3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fft_size": 12},  # not a power of two
            {"fft_size": 4},  # too small
            {"num_subcarriers": 25},  # odd
            {"num_subcarriers": 32},  # no guard/DC room in a 32-FFT
            {"cp_length": 0},
            {"cp_length": 32},
            {"pilot_spacing": 1},
            {"pilot_amplitude": 0.0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        base = dict(fft_size=32, num_subcarriers=26, cp_length=8)
        base.update(kwargs)
        with pytest.raises(ValidationError):
            OfdmParams(**base)

    def test_round_trip_serialization(self):
        params = OfdmParams(fft_size=64, num_subcarriers=48, cp_length=12, pilot_spacing=5)
        assert OfdmParams.from_dict(params.to_dict()) == params
        assert OfdmParams.from_dict({**params.to_dict(), "future_key": 1}) == params


class TestModulatorStructure:
    def test_guard_bands_and_dc_are_empty(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        modulator = OfdmModulator(params)
        data = random_grid_data(params, 4, seed=1)
        samples = modulator.modulate(data)
        # Strip CPs, FFT each symbol: unused bins must be numerically zero.
        frames = samples.reshape(4, params.symbol_length)[:, params.cp_length :]
        bins = np.fft.fft(frames, axis=1)
        used = set(int(k) % params.fft_size for k in params.subcarrier_indices)
        unused = [k for k in range(params.fft_size) if k not in used]
        peak = np.max(np.abs(bins))
        assert np.max(np.abs(bins[:, unused])) < 1e-12 * max(peak, 1.0)
        assert np.max(np.abs(bins[:, 0])) < 1e-12 * max(peak, 1.0)

    def test_cyclic_prefix_copies_symbol_tail(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        modulator = OfdmModulator(params, oversampling=2)
        samples = modulator.modulate(random_grid_data(params, 3, seed=2))
        per_symbol = modulator.samples_per_symbol
        cp = params.cp_length * 2
        for m in range(3):
            frame = samples[m * per_symbol : (m + 1) * per_symbol]
            np.testing.assert_allclose(frame[:cp], frame[-cp:], rtol=0, atol=1e-15)

    def test_oversampling_preserves_envelope_power(self):
        # Parseval makes the FFT-window power exactly oversampling-invariant;
        # the cyclic prefix is a partial window, so the whole-stream power
        # only agrees to the sub-percent level.
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        data = random_grid_data(params, 8, seed=3)
        p1 = np.mean(np.abs(OfdmModulator(params, 1).modulate(data)) ** 2)
        p4 = np.mean(np.abs(OfdmModulator(params, 4).modulate(data)) ** 2)
        assert p4 == pytest.approx(p1, rel=0.02)
        frames1 = OfdmModulator(params, 1).modulate(data).reshape(8, -1)[:, params.cp_length :]
        frames4 = OfdmModulator(params, 4).modulate(data).reshape(8, -1)[:, 4 * params.cp_length :]
        assert np.mean(np.abs(frames4) ** 2) == pytest.approx(
            np.mean(np.abs(frames1) ** 2), rel=1e-12
        )

    def test_partial_grid_is_rejected(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        with pytest.raises(ValidationError):
            OfdmModulator(params).modulate(np.ones(params.num_data_subcarriers + 1, complex))

    def test_round_up_data_symbols(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8, pilot_spacing=7)
        modulator = OfdmModulator(params)
        per = params.num_data_subcarriers
        assert modulator.round_up_data_symbols(1) == per
        assert modulator.round_up_data_symbols(per) == per
        assert modulator.round_up_data_symbols(per + 1) == 2 * per


@pytest.mark.parametrize("fft_size,num_subcarriers,cp_length", LAYOUTS)
@pytest.mark.parametrize("oversampling", [1, 4])
class TestRoundTrip:
    def test_mod_demod_recovers_grid_to_machine_precision(
        self, fft_size, num_subcarriers, cp_length, oversampling
    ):
        params = OfdmParams(
            fft_size=fft_size, num_subcarriers=num_subcarriers, cp_length=cp_length
        )
        data = random_grid_data(params, 6, seed=fft_size + oversampling)
        samples = OfdmModulator(params, oversampling).modulate(data)
        grid = OfdmDemodulator(params, oversampling).demodulate(samples)
        np.testing.assert_allclose(grid, build_used_grid(params, data), rtol=0, atol=1e-12)

    def test_window_offset_inside_cp_is_exactly_compensated(
        self, fft_size, num_subcarriers, cp_length, oversampling
    ):
        params = OfdmParams(
            fft_size=fft_size, num_subcarriers=num_subcarriers, cp_length=cp_length
        )
        data = random_grid_data(params, 5, seed=99 + fft_size)
        samples = OfdmModulator(params, oversampling).modulate(data)
        demodulator = OfdmDemodulator(params, oversampling)
        reference = build_used_grid(params, data)
        for backoff in {0, 1, cp_length // 2, cp_length}:
            grid = demodulator.demodulate(samples, timing_backoff=backoff)
            np.testing.assert_allclose(grid, reference, rtol=0, atol=1e-12)


class TestDemodulatorEdges:
    def test_backoff_outside_cp_is_rejected(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        samples = OfdmModulator(params).modulate(random_grid_data(params, 2, seed=4))
        with pytest.raises(ValidationError):
            OfdmDemodulator(params).demodulate(samples, timing_backoff=9)

    def test_requesting_more_symbols_than_available_raises(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        samples = OfdmModulator(params).modulate(random_grid_data(params, 2, seed=5))
        with pytest.raises(MeasurementError):
            OfdmDemodulator(params).demodulate(samples, num_symbols=3)

    def test_data_and_pilot_split(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8, pilot_spacing=7)
        data = random_grid_data(params, 3, seed=6)
        samples = OfdmModulator(params).modulate(data)
        demodulator = OfdmDemodulator(params)
        grid = demodulator.demodulate(samples)
        np.testing.assert_allclose(
            demodulator.data_grid(grid),
            data.reshape(3, params.num_data_subcarriers),
            rtol=0,
            atol=1e-12,
        )
        np.testing.assert_allclose(
            demodulator.pilot_grid(grid),
            np.tile(params.pilot_values, (3, 1)),
            rtol=0,
            atol=1e-12,
        )


class TestGridMetrics:
    def test_perfect_grid_has_zero_evm_and_flat_channel(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        reference = build_used_grid(params, random_grid_data(params, 10, seed=7))
        metrics = ofdm_grid_metrics(params, reference, reference)
        assert metrics.evm_percent < 1e-10
        assert metrics.worst_subcarrier_evm_percent < 1e-10
        assert abs(metrics.spectral_flatness_db) < 1e-10
        assert metrics.num_symbols == 10
        assert metrics.subcarrier_indices == tuple(int(k) for k in params.subcarrier_indices)

    def test_single_subcarrier_distortion_is_localised(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        reference = build_used_grid(params, random_grid_data(params, 50, seed=8))
        received = reference.copy()
        received[:, 5] *= 0.5  # one subcarrier loses half its amplitude
        metrics = ofdm_grid_metrics(params, reference, received)
        per_subcarrier = np.asarray(metrics.per_subcarrier_evm_percent)
        assert int(np.argmax(per_subcarrier)) == 5
        # Every other subcarrier only sees the small common-gain shift.
        others = np.delete(per_subcarrier, 5)
        assert per_subcarrier[5] > 10.0 * np.max(others)
        assert metrics.spectral_flatness_db > 3.0

    def test_shape_mismatch_raises(self):
        params = OfdmParams(fft_size=32, num_subcarriers=26, cp_length=8)
        reference = build_used_grid(params, random_grid_data(params, 4, seed=9))
        with pytest.raises(ValidationError):
            ofdm_grid_metrics(params, reference, reference[:, :-1])
        with pytest.raises(ValidationError):
            ofdm_grid_metrics(params, reference[:, :-1], reference[:, :-1])
