"""Tests for repro.signals.baseband (ComplexEnvelope)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.signals import ComplexEnvelope


def make_envelope(num=256, rate=100e6, start=0.0, seed=0):
    rng = np.random.default_rng(seed)
    samples = rng.normal(size=num) + 1j * rng.normal(size=num)
    return ComplexEnvelope(samples, rate, start)


class TestBasics:
    def test_length_and_duration(self):
        envelope = make_envelope(200, 100e6)
        assert len(envelope) == 200
        assert envelope.duration == pytest.approx(2e-6)

    def test_times_spacing(self):
        envelope = make_envelope(10, 50e6, start=1e-6)
        times = envelope.times()
        assert times[0] == pytest.approx(1e-6)
        np.testing.assert_allclose(np.diff(times), 1.0 / 50e6)

    def test_iq_components(self):
        envelope = ComplexEnvelope(np.array([1 + 2j, 3 - 4j]), 1e6)
        np.testing.assert_allclose(envelope.in_phase, [1.0, 3.0])
        np.testing.assert_allclose(envelope.quadrature, [2.0, -4.0])

    def test_invalid_rate(self):
        with pytest.raises(ValidationError):
            ComplexEnvelope(np.ones(4, dtype=complex), 0.0)

    def test_invalid_2d_samples(self):
        with pytest.raises(ValidationError):
            ComplexEnvelope(np.ones((2, 2), dtype=complex), 1e6)


class TestPowerMetrics:
    def test_mean_power_of_constant(self):
        envelope = ComplexEnvelope(np.full(100, 2.0 + 0.0j), 1e6)
        assert envelope.mean_power() == pytest.approx(4.0)

    def test_rms(self):
        envelope = ComplexEnvelope(np.full(100, 3.0j), 1e6)
        assert envelope.rms() == pytest.approx(3.0)

    def test_papr_of_constant_is_zero_db(self):
        envelope = ComplexEnvelope(np.full(100, 1.0 + 1.0j), 1e6)
        assert envelope.papr_db() == pytest.approx(0.0, abs=1e-12)

    def test_papr_positive_for_varying(self):
        assert make_envelope().papr_db() > 0.0

    def test_papr_rejects_zero_signal(self):
        with pytest.raises(ValidationError):
            ComplexEnvelope(np.zeros(10, dtype=complex), 1e6).papr_db()

    def test_scaled_to_power(self):
        envelope = make_envelope().scaled_to_power(2.5)
        assert envelope.mean_power() == pytest.approx(2.5)


class TestTransformations:
    def test_scaled(self):
        envelope = make_envelope()
        scaled = envelope.scaled(2.0)
        assert scaled.mean_power() == pytest.approx(4.0 * envelope.mean_power())

    def test_delayed_shifts_time_only(self):
        envelope = make_envelope(start=0.0)
        delayed = envelope.delayed(1e-6)
        assert delayed.start_time == pytest.approx(1e-6)
        np.testing.assert_array_equal(delayed.samples, envelope.samples)

    def test_filtered_preserves_length(self):
        envelope = make_envelope(512)
        taps = np.ones(11) / 11.0
        assert len(envelope.filtered(taps)) == 512

    def test_filtered_dc_gain(self):
        envelope = ComplexEnvelope(np.full(256, 1.0 + 0j), 1e6)
        taps = np.ones(15) / 15.0
        filtered = envelope.filtered(taps)
        np.testing.assert_allclose(filtered.samples[32:-32], 1.0, atol=1e-9)

    def test_sliced(self):
        envelope = make_envelope(100, 1e6, start=0.0)
        sliced = envelope.sliced(20e-6, 50e-6)
        assert len(sliced) == 30
        assert sliced.start_time == pytest.approx(20e-6)

    def test_sliced_empty_rejected(self):
        envelope = make_envelope(100, 1e6)
        with pytest.raises(ValidationError):
            envelope.sliced(1.0, 2.0)

    def test_add_same_grid(self):
        a = make_envelope(seed=1)
        b = make_envelope(seed=2)
        np.testing.assert_allclose((a + b).samples, a.samples + b.samples)

    def test_add_mismatched_grid_rejected(self):
        a = make_envelope(rate=1e6)
        b = make_envelope(rate=2e6)
        with pytest.raises(ValidationError):
            _ = a + b


class TestEvaluation:
    def test_evaluate_on_grid_matches_samples(self):
        envelope = make_envelope(256, 10e6)
        picked = envelope.evaluate(envelope.times()[32:64])
        np.testing.assert_allclose(picked, envelope.samples[32:64], atol=1e-6)

    def test_evaluate_between_samples_of_slow_tone(self):
        rate = 100e6
        t = np.arange(1024) / rate
        tone = ComplexEnvelope(np.exp(2j * np.pi * 1e6 * t), rate)
        probe_times = t[200:800] + 0.37 / rate
        expected = np.exp(2j * np.pi * 1e6 * probe_times)
        np.testing.assert_allclose(tone.evaluate(probe_times), expected, atol=1e-4)

    @given(st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=20, deadline=None)
    def test_interpolation_bounded_by_signal_range(self, fraction):
        envelope = make_envelope(512, 1e6, seed=9)
        probe = envelope.start_time + (100 + fraction) / 1e6
        value = envelope.evaluate([probe])[0]
        assert abs(value) < 10.0 * np.max(np.abs(envelope.samples))
