"""Tests for repro.signals.multitone."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.signals import ToneSignal, multitone_in_band, single_tone


class TestSingleTone:
    def test_evaluates_cosine(self):
        tone = single_tone(1e6, amplitude=2.0, phase=0.0)
        times = np.array([0.0, 0.25e-6, 0.5e-6])
        np.testing.assert_allclose(tone.evaluate(times), [2.0, 0.0, -2.0], atol=1e-9)

    def test_phase_offset(self):
        tone = single_tone(1e6, amplitude=1.0, phase=np.pi / 2.0)
        assert tone.evaluate([0.0])[0] == pytest.approx(0.0, abs=1e-12)

    def test_band_is_degenerate(self):
        low, high = single_tone(5e6).band
        assert low == high == pytest.approx(5e6)

    def test_mean_power(self):
        assert single_tone(1e6, amplitude=2.0).mean_power() == pytest.approx(2.0)

    def test_invalid_frequency(self):
        with pytest.raises(ValidationError):
            single_tone(0.0)


class TestMultitone:
    def test_num_tones(self):
        assert multitone_in_band(1e6, 2e6, 7).num_tones == 7

    def test_tones_strictly_inside_band(self):
        signal = multitone_in_band(1e6, 2e6, 5)
        assert signal.frequencies_hz.min() > 1e6
        assert signal.frequencies_hz.max() < 2e6

    def test_mean_power_scales_with_tone_count(self):
        two = multitone_in_band(1e6, 2e6, 2, amplitude=1.0)
        four = multitone_in_band(1e6, 2e6, 4, amplitude=1.0)
        assert four.mean_power() == pytest.approx(2.0 * two.mean_power())

    def test_random_phases_reproducible(self):
        a = multitone_in_band(1e6, 2e6, 5, seed=3)
        b = multitone_in_band(1e6, 2e6, 5, seed=3)
        np.testing.assert_allclose(a.phases, b.phases)

    def test_zero_phases_when_disabled(self):
        signal = multitone_in_band(1e6, 2e6, 5, random_phases=False)
        np.testing.assert_allclose(signal.phases, 0.0)

    def test_invalid_band(self):
        with pytest.raises(ValidationError):
            multitone_in_band(2e6, 1e6, 3)


class TestToneSignalValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            ToneSignal(np.array([1e6, 2e6]), np.array([1.0]))

    def test_mismatched_phases_rejected(self):
        with pytest.raises(ValidationError):
            ToneSignal(np.array([1e6]), np.array([1.0]), np.array([0.0, 1.0]))

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValidationError):
            ToneSignal(np.array([-1e6]), np.array([1.0]))

    def test_superposition(self):
        tone_a = single_tone(1e6, 1.0)
        tone_b = single_tone(3e6, 0.5)
        both = ToneSignal(
            np.array([1e6, 3e6]), np.array([1.0, 0.5]), np.array([0.0, 0.0])
        )
        times = np.linspace(0.0, 1e-6, 41)
        np.testing.assert_allclose(
            both.evaluate(times), tone_a.evaluate(times) + tone_b.evaluate(times), atol=1e-12
        )
