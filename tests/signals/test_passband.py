"""Tests for repro.signals.passband."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.signals import (
    CallableSignal,
    ComplexEnvelope,
    CompositeSignal,
    ModulatedPassbandSignal,
    single_tone,
)


def make_passband(fc=1e9, rate=160e6, num=2048, tone_offset=5e6):
    t = np.arange(num) / rate
    envelope = ComplexEnvelope(np.exp(2j * np.pi * tone_offset * t), rate)
    return ModulatedPassbandSignal(envelope, fc, occupied_bandwidth=rate)


class TestModulatedPassbandSignal:
    def test_band_centred_on_carrier(self):
        signal = make_passband(fc=1e9, rate=160e6)
        low, high = signal.band
        assert (low + high) / 2.0 == pytest.approx(1e9)
        assert high - low == pytest.approx(160e6)

    def test_offset_tone_appears_at_fc_plus_offset(self):
        # envelope = exp(j*2*pi*fo*t) -> passband cos(2*pi*(fc+fo)*t)
        fc, fo = 1e9, 5e6
        signal = make_passband(fc=fc, tone_offset=fo)
        times = 2e-6 + np.arange(64) / 7.9e9
        expected = np.cos(2.0 * np.pi * (fc + fo) * times)
        np.testing.assert_allclose(signal.evaluate(times), expected, atol=5e-3)

    def test_mean_power_is_half_envelope_power(self):
        signal = make_passband()
        assert signal.mean_power() == pytest.approx(signal.envelope.mean_power() / 2.0)

    def test_support_matches_envelope(self):
        signal = make_passband(rate=100e6, num=1000)
        low, high = signal.support
        assert low == pytest.approx(0.0)
        assert high == pytest.approx(1e-5)

    def test_carrier_below_bandwidth_rejected(self):
        t = np.arange(256) / 100e6
        envelope = ComplexEnvelope(np.ones_like(t, dtype=complex), 100e6)
        with pytest.raises(ValidationError):
            ModulatedPassbandSignal(envelope, carrier_frequency=10e6, occupied_bandwidth=100e6)

    def test_non_envelope_rejected(self):
        with pytest.raises(ValidationError):
            ModulatedPassbandSignal(np.ones(8), 1e9)

    def test_callable_interface(self):
        signal = make_passband()
        times = np.array([1e-6, 1.1e-6])
        np.testing.assert_allclose(signal(times), signal.evaluate(times))


class TestCompositeSignal:
    def test_sum_of_tones(self):
        a = single_tone(100e6, amplitude=1.0)
        b = single_tone(150e6, amplitude=0.5)
        combined = a + b
        times = np.linspace(0, 1e-7, 50)
        np.testing.assert_allclose(
            combined.evaluate(times), a.evaluate(times) + b.evaluate(times), atol=1e-12
        )

    def test_band_is_union(self):
        a = single_tone(100e6)
        b = single_tone(150e6)
        low, high = (a + b).band
        assert low == pytest.approx(100e6)
        assert high == pytest.approx(150e6)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CompositeSignal([])

    def test_non_signal_component_rejected(self):
        with pytest.raises(ValidationError):
            CompositeSignal([single_tone(1e6), "not a signal"])


class TestCallableSignal:
    def test_evaluates_function(self):
        signal = CallableSignal(lambda t: np.cos(2 * np.pi * 1e6 * t), (0.9e6, 1.1e6))
        times = np.array([0.0, 0.25e-6])
        np.testing.assert_allclose(signal.evaluate(times), [1.0, 0.0], atol=1e-9)

    def test_band_properties(self):
        signal = CallableSignal(lambda t: t * 0.0, (10e6, 20e6))
        assert signal.centre_frequency == pytest.approx(15e6)
        assert signal.bandwidth == pytest.approx(10e6)

    def test_invalid_band_rejected(self):
        with pytest.raises(ValidationError):
            CallableSignal(lambda t: t, (20e6, 10e6))

    def test_non_callable_rejected(self):
        with pytest.raises(ValidationError):
            CallableSignal(3.0, (1.0, 2.0))
