"""Tests for repro.signals.constellations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.signals import constellations as cs


ALL_NAMES = ["bpsk", "qpsk", "8psk", "16qam", "64qam", "256qam"]


class TestConstruction:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_unit_average_energy(self, name):
        constellation = cs.get_constellation(name)
        assert constellation.average_energy == pytest.approx(1.0, rel=1e-12)

    @pytest.mark.parametrize("name,order", [("bpsk", 2), ("qpsk", 4), ("8psk", 8), ("16qam", 16), ("64qam", 64)])
    def test_order(self, name, order):
        assert cs.get_constellation(name).order == order

    @pytest.mark.parametrize("name,bits", [("bpsk", 1), ("qpsk", 2), ("8psk", 3), ("16qam", 4), ("64qam", 6)])
    def test_bits_per_symbol(self, name, bits):
        assert cs.get_constellation(name).bits_per_symbol == bits

    def test_points_are_distinct(self):
        for name in ALL_NAMES:
            points = cs.get_constellation(name).points
            assert len(np.unique(np.round(points, 12))) == len(points)

    def test_qpsk_points_on_diagonals(self):
        points = cs.qpsk().points
        np.testing.assert_allclose(np.abs(points.real), np.abs(points.imag), atol=1e-12)

    def test_psk_points_on_unit_circle(self):
        points = cs.psk(8).points
        np.testing.assert_allclose(np.abs(points), 1.0, atol=1e-12)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            cs.get_constellation("not-a-modulation")

    def test_non_square_qam_rejected(self):
        with pytest.raises(ValidationError):
            cs.qam(32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValidationError):
            cs.Constellation("bad", np.array([1.0, -1.0, 1j]))


class TestMappingRoundTrip:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_map_demap_identity(self, name):
        constellation = cs.get_constellation(name)
        indices = np.arange(constellation.order)
        recovered = constellation.demap(constellation.map(indices))
        np.testing.assert_array_equal(recovered, indices)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_bits_round_trip(self, name):
        constellation = cs.get_constellation(name)
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=constellation.bits_per_symbol * 50)
        recovered = constellation.demap_bits(constellation.map_bits(bits))
        np.testing.assert_array_equal(recovered, bits)

    def test_demap_with_small_noise(self):
        constellation = cs.qpsk()
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 4, 200)
        noisy = constellation.map(indices) + 0.05 * (rng.normal(size=200) + 1j * rng.normal(size=200))
        np.testing.assert_array_equal(constellation.demap(noisy), indices)

    def test_map_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            cs.qpsk().map([0, 4])

    def test_map_bits_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            cs.qpsk().map_bits([0, 1, 1])

    def test_map_bits_rejects_non_binary(self):
        with pytest.raises(ValidationError):
            cs.qpsk().map_bits([0, 2, 1, 1])


class TestGrayCoding:
    @pytest.mark.parametrize("order", [4, 8, 16])
    def test_psk_neighbours_differ_by_one_bit(self, order):
        constellation = cs.psk(order)
        points = constellation.points
        # Sort points by angle; adjacent points should have Gray labels that
        # differ in exactly one bit.
        labels_by_angle = np.argsort(np.angle(points))
        # Build inverse: symbol value at each angular position.
        for position in range(order):
            a = labels_by_angle[position]
            b = labels_by_angle[(position + 1) % order]
            assert bin(int(a) ^ int(b)).count("1") == 1

    def test_minimum_distance_qpsk(self):
        assert cs.qpsk().minimum_distance == pytest.approx(np.sqrt(2.0), rel=1e-12)

    def test_minimum_distance_decreases_with_order(self):
        assert cs.qam(64).minimum_distance < cs.qam(16).minimum_distance


class TestPropertyBased:
    @given(st.sampled_from(ALL_NAMES), st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_random_symbol_round_trip(self, name, count):
        constellation = cs.get_constellation(name)
        rng = np.random.default_rng(count)
        indices = rng.integers(0, constellation.order, count)
        np.testing.assert_array_equal(constellation.demap(constellation.map(indices)), indices)

    @given(st.sampled_from(ALL_NAMES))
    @settings(max_examples=10, deadline=None)
    def test_mean_of_points_is_zero(self, name):
        points = cs.get_constellation(name).points
        assert abs(np.mean(points)) < 1e-9
