"""Tests for repro.signals.pulse_shaping."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.signals import (
    PulseShaper,
    gaussian_pulse_taps,
    qpsk,
    raised_cosine_taps,
    root_raised_cosine_taps,
)


class TestRaisedCosine:
    def test_length(self):
        taps = raised_cosine_taps(8, 10, 0.5)
        assert taps.size == 81

    def test_peak_is_one_at_centre(self):
        taps = raised_cosine_taps(8, 10, 0.5)
        assert taps[40] == pytest.approx(1.0)

    def test_nyquist_zero_crossings(self):
        # The RC pulse is zero at every nonzero multiple of the symbol period.
        sps = 8
        taps = raised_cosine_taps(sps, 10, 0.35)
        centre = (taps.size - 1) // 2
        for k in range(1, 5):
            assert taps[centre + k * sps] == pytest.approx(0.0, abs=1e-12)

    def test_zero_rolloff_is_sinc(self):
        taps = raised_cosine_taps(4, 6, 0.0)
        t = (np.arange(taps.size) - (taps.size - 1) / 2) / 4
        np.testing.assert_allclose(taps, np.sinc(t), atol=1e-12)

    def test_invalid_rolloff(self):
        with pytest.raises(ValidationError):
            raised_cosine_taps(8, 10, 1.5)


class TestRootRaisedCosine:
    def test_unit_energy(self):
        taps = root_raised_cosine_taps(16, 10, 0.5)
        assert np.sum(taps**2) == pytest.approx(1.0)

    def test_symmetry(self):
        taps = root_raised_cosine_taps(16, 10, 0.5)
        np.testing.assert_allclose(taps, taps[::-1], atol=1e-12)

    def test_cascade_is_nyquist(self):
        # SRRC * SRRC (matched pair) must be ISI-free at symbol spacing.
        sps = 8
        taps = root_raised_cosine_taps(sps, 12, 0.5)
        cascade = np.convolve(taps, taps)
        centre = (cascade.size - 1) // 2
        peak = cascade[centre]
        for k in range(1, 5):
            assert abs(cascade[centre + k * sps] / peak) < 1e-3

    def test_zero_rolloff_is_normalised_sinc(self):
        taps = root_raised_cosine_taps(4, 8, 0.0)
        assert np.sum(taps**2) == pytest.approx(1.0)

    def test_occupied_bandwidth_grows_with_rolloff(self):
        sps = 16
        narrow = np.abs(np.fft.rfft(root_raised_cosine_taps(sps, 16, 0.1), 4096))
        wide = np.abs(np.fft.rfft(root_raised_cosine_taps(sps, 16, 0.9), 4096))
        # Compare energy beyond the half-symbol-rate bin.
        half_rate_bin = 4096 // (2 * sps)
        assert np.sum(wide[half_rate_bin + 50 :] ** 2) > np.sum(narrow[half_rate_bin + 50 :] ** 2)


class TestGaussianPulse:
    def test_unit_dc_gain(self):
        taps = gaussian_pulse_taps(8, 6, 0.3)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_wider_bt_is_narrower_in_time(self):
        narrow_time = gaussian_pulse_taps(8, 6, 1.0)
        wide_time = gaussian_pulse_taps(8, 6, 0.2)
        assert np.max(narrow_time) > np.max(wide_time)

    def test_invalid_bt(self):
        with pytest.raises(ValidationError):
            gaussian_pulse_taps(8, 6, 0.0)


class TestPulseShaper:
    def test_shape_length(self):
        shaper = PulseShaper.root_raised_cosine(8, span_symbols=6, rolloff=0.5)
        symbols = qpsk().map(np.arange(4).repeat(8))
        shaped = shaper.shape(symbols)
        assert shaped.size == symbols.size * 8 + shaper.taps.size - 1

    def test_shape_trimmed_length(self):
        shaper = PulseShaper.root_raised_cosine(8, span_symbols=6, rolloff=0.5)
        symbols = qpsk().map(np.zeros(32, dtype=int))
        assert shaper.shape_trimmed(symbols).size == 32 * 8

    def test_trimmed_short_block_still_has_nominal_length(self):
        # Even when the block is shorter than the filter span the trimmed
        # output keeps the nominal num_symbols * sps length (the content is
        # simply transient-contaminated).
        shaper = PulseShaper.root_raised_cosine(8, span_symbols=64, rolloff=0.5)
        symbols = qpsk().map(np.zeros(16, dtype=int))
        assert shaper.shape_trimmed(symbols).size == 16 * 8

    def test_matched_filter_recovers_symbols(self):
        sps = 8
        shaper = PulseShaper.root_raised_cosine(sps, span_symbols=10, rolloff=0.5)
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 4, 64)
        symbols = qpsk().map(indices)
        shaped = shaper.shape(symbols)
        matched = shaper.matched_filter(shaped)
        # Total delay of shaping + matched filtering is the full filter length minus one.
        delay = shaper.taps.size - 1
        sampled = matched[delay : delay + 64 * sps : sps]
        recovered = qpsk().demap(sampled)
        np.testing.assert_array_equal(recovered, indices)

    def test_group_delay(self):
        shaper = PulseShaper.root_raised_cosine(8, span_symbols=10)
        assert shaper.group_delay_samples == 40

    def test_invalid_sps(self):
        with pytest.raises(ValidationError):
            PulseShaper.root_raised_cosine(0)
