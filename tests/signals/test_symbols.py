"""Tests for repro.signals.symbols."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.signals import (
    PRBS_POLYNOMIALS,
    SymbolSource,
    prbs_bits,
    prbs_sequence,
    qpsk,
    random_bits,
    random_symbols,
)


class TestRandomSources:
    def test_random_bits_binary(self):
        bits = random_bits(1000, seed=1)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_random_bits_reproducible(self):
        np.testing.assert_array_equal(random_bits(100, seed=5), random_bits(100, seed=5))

    def test_random_bits_roughly_balanced(self):
        bits = random_bits(10_000, seed=2)
        assert 0.45 < np.mean(bits) < 0.55

    def test_random_symbols_range(self):
        symbols = random_symbols(500, order=8, seed=3)
        assert symbols.min() >= 0 and symbols.max() <= 7

    def test_random_symbols_all_values_hit(self):
        symbols = random_symbols(2000, order=4, seed=4)
        assert set(np.unique(symbols)) == {0, 1, 2, 3}

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            random_bits(0)


class TestPrbs:
    @pytest.mark.parametrize("degree", [7, 9, 11])
    def test_full_period_is_maximal_length(self, degree):
        sequence = prbs_sequence(degree)
        assert sequence.size == 2**degree - 1
        # A maximal-length sequence has exactly 2^(n-1) ones.
        assert int(sequence.sum()) == 2 ** (degree - 1)

    def test_period_repeats(self):
        period = 2**7 - 1
        bits = prbs_bits(7, 2 * period)
        np.testing.assert_array_equal(bits[:period], bits[period:])

    def test_balance_of_runs(self):
        # In one period of PRBS7 there is exactly one run of 7 consecutive ones.
        sequence = prbs_sequence(7)
        as_string = "".join(map(str, sequence.tolist()))
        assert "1111111" in as_string + as_string[:6]

    def test_custom_seed_state_changes_phase(self):
        default_phase = prbs_bits(7, 64)
        shifted = prbs_bits(7, 64, seed_state=0b1010101)
        assert not np.array_equal(default_phase, shifted)

    def test_unsupported_degree(self):
        with pytest.raises(ValidationError):
            prbs_bits(8, 10)

    def test_zero_seed_state_rejected(self):
        with pytest.raises(ValidationError):
            prbs_bits(7, 10, seed_state=0)

    def test_polynomial_table_is_consistent(self):
        for degree, (n, m) in PRBS_POLYNOMIALS.items():
            assert n == degree
            assert 0 < m < n


class TestSymbolSource:
    def test_draw_maps_onto_constellation(self):
        source = SymbolSource(qpsk(), seed=9)
        drawn = source.draw(128)
        distances = np.abs(drawn[:, None] - qpsk().points[None, :]).min(axis=1)
        np.testing.assert_allclose(distances, 0.0, atol=1e-12)

    def test_reproducible_with_same_seed(self):
        a = SymbolSource(qpsk(), seed=11).draw_indices(64)
        b = SymbolSource(qpsk(), seed=11).draw_indices(64)
        np.testing.assert_array_equal(a, b)

    def test_draw_bits_length(self):
        assert SymbolSource(qpsk(), seed=1).draw_bits(37).size == 37

    def test_constellation_property(self):
        constellation = qpsk()
        assert SymbolSource(constellation).constellation is constellation
