"""Shared fixtures for the test suite.

Expensive objects (transmitter bursts, nonuniform acquisitions at the
paper's operating point) are built once per session; tests must not mutate
them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling import BandpassBand, IdealNonuniformSampler
from repro.signals import multitone_in_band
from repro.transmitter import HomodyneTransmitter, TransmitterConfig

#: The paper's acquisition parameters (Section V).
PAPER_CARRIER_HZ = 1.0e9
PAPER_BANDWIDTH_HZ = 90.0e6
PAPER_DELAY_S = 180.0e-12


@pytest.fixture(scope="session")
def paper_band() -> BandpassBand:
    """The 90 MHz acquisition band centred on the 1 GHz carrier."""
    return BandpassBand.from_centre(PAPER_CARRIER_HZ, PAPER_BANDWIDTH_HZ)


@pytest.fixture(scope="session")
def narrow_tone_signal():
    """A deterministic multitone confined to +/- 7.5 MHz around the carrier.

    Exact (closed-form) evaluation makes it the reference signal for
    reconstruction-accuracy tests.
    """
    return multitone_in_band(
        PAPER_CARRIER_HZ - 7.5e6,
        PAPER_CARRIER_HZ + 7.5e6,
        num_tones=9,
        amplitude=0.3,
        seed=20140324,
    )


@pytest.fixture(scope="session")
def fast_sample_set(paper_band, narrow_tone_signal):
    """Ideal nonuniform acquisition at the full rate B = 90 MHz."""
    sampler = IdealNonuniformSampler(paper_band, delay=PAPER_DELAY_S, sample_rate=PAPER_BANDWIDTH_HZ)
    return sampler.acquire(narrow_tone_signal, num_samples=360)


@pytest.fixture(scope="session")
def slow_sample_set(paper_band, narrow_tone_signal):
    """Ideal nonuniform acquisition at the reduced rate B1 = B/2 = 45 MHz."""
    sampler = IdealNonuniformSampler(
        paper_band, delay=PAPER_DELAY_S, sample_rate=PAPER_BANDWIDTH_HZ / 2.0
    )
    return sampler.acquire(narrow_tone_signal, num_samples=180)


@pytest.fixture(scope="session")
def paper_burst():
    """One burst of the paper's transmitter (QPSK, 10 MHz, SRRC 0.5, 1 GHz)."""
    transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=7))
    return transmitter.transmit(num_symbols=64)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic random generator for each test."""
    return np.random.default_rng(123456)
