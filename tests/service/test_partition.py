"""Tests for partition planning: balance, store consult, determinism."""

import pytest

from repro.bist import BistConfig, CampaignRunner, ScenarioGrid, skew_sweep
from repro.bist.runner import pa_saturation_sweep
from repro.errors import ValidationError
from repro.service import WorkPartition, plan_partitions
from repro.store import CampaignStore

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


def grid_scenarios(num_skews: int = 4) -> tuple:
    skews = [index * 1e-12 for index in range(num_skews)]
    return (
        ScenarioGrid()
        .add_profiles("paper-qpsk-1ghz")
        .add_converters(skew_sweep(skews))
        .build()
    )


class TestWorkPartition:
    def test_alignment_is_enforced(self):
        scenarios = grid_scenarios(2)
        with pytest.raises(ValidationError, match="align"):
            WorkPartition(
                partition_id=0,
                indices=(0, 1),
                scenarios=scenarios,
                labels=("a",),
                fingerprints=(None, None),
            )

    def test_empty_partitions_are_rejected(self):
        with pytest.raises(ValidationError, match="at least one scenario"):
            WorkPartition(
                partition_id=0, indices=(), scenarios=(), labels=(), fingerprints=()
            )


class TestPlanning:
    def test_partitions_cover_the_grid_exactly_once(self):
        scenarios = grid_scenarios(6)
        plan = plan_partitions(scenarios, num_partitions=3, bist_config=FAST_CONFIG)
        indices = sorted(
            index for partition in plan.partitions for index in partition.indices
        )
        assert indices == list(range(len(scenarios)))
        assert plan.scenarios_total == len(scenarios)
        assert plan.pending_total == len(scenarios)
        assert not plan.cached

    def test_balance_is_even_for_uniform_grids(self):
        plan = plan_partitions(grid_scenarios(8), num_partitions=4, bist_config=FAST_CONFIG)
        sizes = sorted(len(partition) for partition in plan.partitions)
        assert sizes == [2, 2, 2, 2]

    def test_trailing_empty_partitions_are_dropped(self):
        plan = plan_partitions(grid_scenarios(3), num_partitions=8, bist_config=FAST_CONFIG)
        assert len(plan.partitions) == 3
        assert [partition.partition_id for partition in plan.partitions] == [0, 1, 2]

    def test_planning_is_deterministic(self):
        scenarios = grid_scenarios(7)
        first = plan_partitions(scenarios, num_partitions=3, bist_config=FAST_CONFIG)
        second = plan_partitions(scenarios, num_partitions=3, bist_config=FAST_CONFIG)
        assert [p.indices for p in first.partitions] == [p.indices for p in second.partitions]
        assert [p.fingerprints for p in first.partitions] == [
            p.fingerprints for p in second.partitions
        ]

    def test_labels_and_indices_stay_aligned_with_the_runner(self):
        scenarios = grid_scenarios(4)
        tasks = CampaignRunner(bist_config=FAST_CONFIG)._build_tasks(scenarios)
        by_index = {task.index: task.label for task in tasks}
        plan = plan_partitions(scenarios, num_partitions=2, bist_config=FAST_CONFIG)
        for partition in plan.partitions:
            for index, label in zip(partition.indices, partition.labels):
                assert by_index[index] == label

    def test_identical_fingerprints_cluster_into_one_partition(self):
        # Two identical scenario tuples: same fingerprint, must co-locate so
        # the worker-side dedup collapses them onto one execution.
        base = grid_scenarios(1)
        scenarios = base + base
        plan = plan_partitions(scenarios, num_partitions=2, bist_config=FAST_CONFIG)
        homes = {}
        for partition in plan.partitions:
            for fingerprint in partition.fingerprints:
                homes.setdefault(fingerprint, set()).add(partition.partition_id)
        for fingerprint, partitions in homes.items():
            assert len(partitions) == 1, f"fingerprint {fingerprint} split across partitions"

    def test_grouping_keeps_compiler_batches_intact(self):
        # Two distinct acquisition geometries -> chunks never mix them when
        # the per-partition target is large enough to hold each bucket.
        grid = ScenarioGrid().add_profiles("paper-qpsk-1ghz")
        grid.add_impairments(pa_saturation_sweep((1.0, 2.0)))
        scenarios = grid.build() + grid_scenarios(2)
        plan = plan_partitions(scenarios, num_partitions=2, bist_config=FAST_CONFIG)
        assert plan.pending_total == len(scenarios)

    def test_num_partitions_is_validated(self):
        with pytest.raises(ValidationError, match="num_partitions"):
            plan_partitions(grid_scenarios(2), num_partitions=0, bist_config=FAST_CONFIG)


class TestStoreConsult:
    def test_archived_scenarios_never_reach_a_partition(self, tmp_path):
        scenarios = grid_scenarios(2)
        store = CampaignStore(tmp_path / "store")
        CampaignRunner(bist_config=FAST_CONFIG, store=store).run(scenarios)
        plan = plan_partitions(
            scenarios, num_partitions=2, bist_config=FAST_CONFIG, store=store
        )
        assert not plan.partitions
        assert len(plan.cached) == len(scenarios)
        assert all(outcome.cached for outcome in plan.cached)
        assert all(outcome.worker == "store" for outcome in plan.cached)
        assert [outcome.index for outcome in plan.cached] == list(range(len(scenarios)))

    def test_partial_archive_splits_cached_from_pending(self, tmp_path):
        scenarios = grid_scenarios(4)
        store = CampaignStore(tmp_path / "store")
        CampaignRunner(bist_config=FAST_CONFIG, store=store).run(scenarios[:2])
        plan = plan_partitions(
            scenarios, num_partitions=2, bist_config=FAST_CONFIG, store=store
        )
        assert len(plan.cached) == 2
        assert plan.pending_total == 2
        cached_indices = {outcome.index for outcome in plan.cached}
        pending_indices = {
            index for partition in plan.partitions for index in partition.indices
        }
        assert cached_indices == {0, 1}
        assert pending_indices == {2, 3}

    def test_unfingerprintable_scenarios_still_get_partitioned(self):
        scenarios = (
            ScenarioGrid().add_profiles("paper-qpsk-1ghz", "no-such-profile").build()
        )
        plan = plan_partitions(scenarios, num_partitions=2, bist_config=FAST_CONFIG)
        assert plan.pending_total == 2
        fingerprints = [
            fingerprint
            for partition in plan.partitions
            for fingerprint in partition.fingerprints
        ]
        assert None in fingerprints  # the unknown profile cannot fingerprint
        assert any(fingerprint is not None for fingerprint in fingerprints)
