"""Acceptance tests for the service coordinator.

The contracts under test, straight from the service's promises:

* a multi-worker campaign merges **bit-identically** to a serial run of
  the same grid (reports compared dict-for-dict);
* a worker killed mid-partition triggers a retry that **converges** to the
  same merged result (the flushed prefix is served from the store);
* resubmitting a finished campaign is **all warm** — no new executions;
* an :class:`ExecutionBudget` is charged **exactly once per executed
  scenario** — zero for cache hits, zero extra after a worker retry;
* partitions whose retries are exhausted, and partitions never dispatched
  before a drain, surface as explicit **error outcomes**, never silently
  vanish.
"""

import pytest

import repro.service.coordinator as coordinator_module

from repro.bist import BistConfig, CampaignRunner, ScenarioGrid, skew_sweep
from repro.bist.runner import ExecutionBudget
from repro.errors import BudgetExhaustedError, ValidationError
from repro.service import Coordinator
from repro.store import CampaignStore

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


def grid_scenarios(num_skews: int = 4) -> tuple:
    skews = [index * 1e-12 for index in range(num_skews)]
    return (
        ScenarioGrid()
        .add_profiles("paper-qpsk-1ghz")
        .add_converters(skew_sweep(skews))
        .build()
    )


def report_dicts(outcomes) -> list:
    return [
        None if outcome.report is None else outcome.report.to_dict()
        for outcome in outcomes
    ]


def make_coordinator(tmp_path, **overrides) -> Coordinator:
    options = dict(
        num_workers=4,
        bist_config=FAST_CONFIG,
        seed_policy="per-scenario",
        retry_backoff_seconds=0.01,
    )
    options.update(overrides)
    return Coordinator(tmp_path / "store", **options)


class TestValidation:
    def test_worker_count_is_checked(self, tmp_path):
        with pytest.raises(ValidationError, match="num_workers"):
            Coordinator(tmp_path, num_workers=0)

    def test_heartbeat_settings_are_checked(self, tmp_path):
        with pytest.raises(ValidationError, match="positive"):
            Coordinator(tmp_path, heartbeat_interval=0.0)

    def test_backoff_is_checked(self, tmp_path):
        with pytest.raises(ValidationError, match="retry_backoff_seconds"):
            Coordinator(tmp_path, retry_backoff_seconds=-1.0)

    def test_budget_type_is_checked(self, tmp_path):
        with pytest.raises(ValidationError, match="ExecutionBudget"):
            make_coordinator(tmp_path).run(grid_scenarios(1), budget=3)


class TestBitIdentity:
    def test_four_worker_merge_is_bit_identical_to_serial(self, tmp_path):
        scenarios = grid_scenarios(4)
        serial = CampaignRunner(
            bist_config=FAST_CONFIG, seed_policy="per-scenario"
        ).run(scenarios)
        execution = make_coordinator(tmp_path).run(scenarios)
        assert not execution.execution.errors
        assert [o.index for o in execution.execution.outcomes] == list(range(4))
        assert [o.label for o in execution.execution.outcomes] == [
            o.label for o in serial.outcomes
        ]
        assert report_dicts(execution.execution.outcomes) == report_dicts(serial.outcomes)
        stats = execution.stats
        assert stats.num_workers == 4
        assert stats.scenarios_total == 4
        assert stats.executed == 4
        assert stats.cache_hits == 0
        assert stats.execution_seconds > 0.0
        assert stats.serial_equivalent_seconds > 0.0

    def test_resubmission_is_entirely_warm(self, tmp_path):
        scenarios = grid_scenarios(3)
        make_coordinator(tmp_path).run(scenarios)
        execution = make_coordinator(tmp_path).run(scenarios)
        stats = execution.stats
        assert stats.executed == 0
        assert stats.planned_cache_hits == 3
        assert stats.warm_hit_rate == 1.0
        assert stats.num_partitions == 0
        assert all(outcome.cached for outcome in execution.execution.outcomes)

    def test_summary_carries_the_service_section(self, tmp_path):
        execution = make_coordinator(tmp_path).run(grid_scenarios(2))
        summary = execution.summary()
        assert summary.service is not None
        assert summary.service["num_workers"] == 4
        text = summary.to_text()
        assert "campaign service:" in text
        assert "warm-cache hit rate" in text

    def test_progress_callback_sees_every_outcome(self, tmp_path):
        seen = []
        execution = make_coordinator(tmp_path, progress_callback=seen.append).run(
            grid_scenarios(2)
        )
        assert sorted(outcome.index for outcome in seen) == [0, 1]
        assert len(execution.execution.outcomes) == 2


class TestKilledWorker:
    def test_killed_worker_partition_is_retried_and_converges(self, tmp_path):
        scenarios = grid_scenarios(6)
        serial = CampaignRunner(
            bist_config=FAST_CONFIG, seed_policy="per-scenario"
        ).run(scenarios)
        execution = make_coordinator(
            tmp_path, num_workers=2, chaos_kill_worker=0
        ).run(scenarios)
        assert execution.stats.retries >= 1
        assert not execution.execution.errors
        assert report_dicts(execution.execution.outcomes) == report_dicts(serial.outcomes)

    def test_retry_serves_the_flushed_prefix_from_the_store(self, tmp_path):
        execution = make_coordinator(
            tmp_path, num_workers=2, chaos_kill_worker=0
        ).run(grid_scenarios(6))
        # The killed worker flushed at least its first outcome before dying;
        # the replacement worker must serve it as a cache hit, not re-run it.
        assert execution.stats.worker_cache_hits >= 1
        assert execution.stats.warm_hit_rate > 0.0


class TestRetriesExhausted:
    def test_permanently_failing_partition_surfaces_error_outcomes(self, tmp_path, monkeypatch):
        def always_fail(worker_id, partition, settings, results_queue):
            results_queue.put(("started", worker_id, partition.partition_id, 0.0))
            results_queue.put(
                ("partition_failed", worker_id, partition.partition_id, "RuntimeError: boom")
            )
            return 1

        monkeypatch.setattr(coordinator_module, "run_partition_worker", always_fail)
        scenarios = grid_scenarios(2)
        execution = make_coordinator(tmp_path, num_workers=2, max_retries=1).run(scenarios)
        assert len(execution.execution.outcomes) == 2
        assert len(execution.execution.errors) == 2
        for outcome in execution.execution.outcomes:
            assert not outcome.ok
            assert "ServiceRetriesExhausted" in outcome.error
            assert "boom" in outcome.error
            assert outcome.worker == "coordinator"
        assert execution.stats.retries == 2  # 1 retry per failed partition

    def test_worker_death_without_message_is_detected(self, tmp_path, monkeypatch):
        import os

        def die_silently(worker_id, partition, settings, results_queue):
            results_queue.put(("started", worker_id, partition.partition_id, 0.0))
            os._exit(13)

        monkeypatch.setattr(coordinator_module, "run_partition_worker", die_silently)
        execution = make_coordinator(tmp_path, num_workers=1, max_retries=0).run(
            grid_scenarios(1)
        )
        outcome = execution.execution.outcomes[0]
        assert not outcome.ok
        assert "died" in outcome.error
        assert "exit code 13" in outcome.error


class TestDrain:
    def test_drain_before_run_reports_undispatched_partitions(self, tmp_path):
        coordinator = make_coordinator(tmp_path, num_workers=2)
        # Drain immediately: the flag is checked before the first dispatch,
        # but run() resets it, so request drain from the progress callback
        # of the very first planning pass instead -- simplest determinism:
        # drain after the first outcome arrives.
        scenarios = grid_scenarios(6)
        fired = []

        def drain_once(outcome):
            if not fired:
                fired.append(outcome)
                coordinator.request_drain()

        coordinator._progress_callback = drain_once
        execution = coordinator.run(scenarios)
        assert len(execution.execution.outcomes) == len(scenarios)
        drained = [
            outcome
            for outcome in execution.execution.outcomes
            if outcome.error and "ServiceDrained" in outcome.error
        ]
        completed = [outcome for outcome in execution.execution.outcomes if outcome.ok]
        # In-flight partitions finish; never-dispatched ones surface as drained.
        assert completed
        assert all(outcome.worker == "coordinator" for outcome in drained)


class TestBudget:
    def test_budget_charged_exactly_once_per_executed_scenario(self, tmp_path):
        scenarios = grid_scenarios(3)
        budget = ExecutionBudget(10)
        make_coordinator(tmp_path).run(scenarios, budget=budget)
        assert budget.spent == 3

    def test_cache_hits_cost_nothing(self, tmp_path):
        scenarios = grid_scenarios(3)
        make_coordinator(tmp_path).run(scenarios)
        budget = ExecutionBudget(10)
        execution = make_coordinator(tmp_path).run(scenarios, budget=budget)
        assert budget.spent == 0
        assert execution.stats.warm_hit_rate == 1.0

    def test_retry_after_worker_death_does_not_double_charge(self, tmp_path):
        scenarios = grid_scenarios(6)
        budget = ExecutionBudget(6)  # exactly the grid: any double charge raises
        execution = make_coordinator(
            tmp_path, num_workers=2, chaos_kill_worker=0
        ).run(scenarios, budget=budget)
        assert execution.stats.retries >= 1
        assert budget.spent == 6
        assert budget.remaining == 0

    def test_exhausted_budget_raises_after_flushing_in_flight_work(self, tmp_path):
        scenarios = grid_scenarios(4)
        budget = ExecutionBudget(1)
        with pytest.raises(BudgetExhaustedError):
            make_coordinator(
                tmp_path, num_workers=1, partitions_per_worker=4
            ).run(scenarios, budget=budget)
        # The affordable partition executed and was flushed: a re-run with a
        # fresh budget resumes from the store and only pays for the rest.
        resume_budget = ExecutionBudget(4)
        execution = make_coordinator(tmp_path).run(scenarios, budget=resume_budget)
        assert not execution.execution.errors
        assert resume_budget.spent == 4 - execution.stats.planned_cache_hits
        assert execution.stats.planned_cache_hits >= 1
