"""Tests for the ``python -m repro.service`` CLI verbs."""

import json

import pytest

from repro.service.cli import build_parser, main

FAST_FLAGS = ["--fast", "--profiles", "paper-qpsk-1ghz"]


class TestParser:
    def test_every_verb_is_registered(self):
        parser = build_parser()
        actions = next(
            action for action in parser._actions if action.dest == "command"
        )
        assert set(actions.choices) == {
            "serve", "run", "submit", "status", "result", "jobs", "drain",
            "compact", "gc",
        }

    def test_command_is_required(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_executes_and_writes_report(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        code = main(
            ["run", "--store", str(tmp_path / "store"), "--workers", "2",
             "--quiet", "--output", str(output), *FAST_FLAGS]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "campaign service:" in captured
        assert "service stats:" in captured
        payload = json.loads(output.read_text())
        assert payload["stats"]["scenarios_total"] == 1
        assert payload["summary"]["service"]["num_workers"] == 2

    def test_run_from_a_spec_file(self, tmp_path, capsys):
        from repro.bist import BistConfig
        from repro.service import CampaignSpec

        spec = CampaignSpec(
            profiles=("paper-qpsk-1ghz",),
            bist_config=BistConfig(
                num_samples_fast=128,
                num_samples_slow=64,
                lms_max_iterations=25,
                num_cost_points=60,
                measure_evm_enabled=False,
            ),
        )
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))
        code = main(
            ["run", "--store", str(tmp_path / "store"), "--quiet",
             "--spec", str(spec_file)]
        )
        assert code == 0

    def test_second_run_is_warm(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", "--store", store, "--quiet", *FAST_FLAGS]) == 0
        capsys.readouterr()
        assert main(["run", "--store", store, "--quiet", *FAST_FLAGS]) == 0
        assert "warm-cache hit rate 100.0%" in capsys.readouterr().out

    def test_errors_exit_nonzero(self, tmp_path, capsys):
        code = main(
            ["run", "--store", str(tmp_path / "store"), "--quiet",
             "--fast", "--profiles", "no-such-profile"]
        )
        assert code == 1

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        with pytest.raises(FileNotFoundError):
            main(["run", "--store", str(tmp_path / "store"), "--quiet",
                  "--spec", str(tmp_path / "missing.json")])


class TestLifecycleVerbs:
    def test_compact(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["run", "--store", str(store), "--quiet", *FAST_FLAGS]) == 0
        shards_before = list(store.glob("*.jsonl"))
        assert main(["compact", "--store", str(store)]) == 0
        assert "compacted" in capsys.readouterr().out
        assert [path.name for path in store.glob("*.jsonl")] == ["campaign.jsonl"]
        assert shards_before  # the run really produced worker shards

    def test_gc_dry_run_and_output(self, tmp_path, capsys):
        store = tmp_path / "store"
        store.mkdir()
        (store / "a.jsonl").write_text(
            json.dumps(
                {"fingerprint": "f", "schema_version": 1, "outcome": {"index": 0, "label": "x"}}
            )
            + "\n"
        )
        output = tmp_path / "gc.json"
        code = main(["gc", "--store", str(store), "--dry-run", "--output", str(output)])
        assert code == 0
        assert "would drop 1" in capsys.readouterr().out
        assert json.loads(output.read_text())["tombstoned"] == 1
        assert (store / "a.jsonl").exists()

    def test_gc_protect(self, tmp_path, capsys):
        store = tmp_path / "store"
        store.mkdir()
        (store / "a.jsonl").write_text(
            json.dumps(
                {"fingerprint": "f", "schema_version": 1, "outcome": {"index": 0, "label": "x"}}
            )
            + "\n"
        )
        keep = tmp_path / "keep.json"
        keep.write_text(json.dumps(["f"]))
        assert main(["gc", "--store", str(store), "--protect", str(keep)]) == 0
        assert "kept 1 (1 protected)" in capsys.readouterr().out


class TestClientVerbs:
    @pytest.fixture()
    def endpoint(self, tmp_path):
        import asyncio
        import threading

        from repro.service.queue import JobQueue
        from repro.service.server import BistServiceServer

        ready = threading.Event()
        state = {}

        def run_server():
            async def inner():
                queue = JobQueue(tmp_path / "store", num_workers=1)
                server = BistServiceServer(queue, port=0)
                await server.start()
                state["port"] = server.port
                ready.set()
                await server.serve_forever()

            asyncio.run(inner())

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert ready.wait(10.0)
        yield f"http://127.0.0.1:{state['port']}"
        main(["drain", "--url", f"http://127.0.0.1:{state['port']}"])
        thread.join(timeout=60.0)

    def test_submit_wait_status_result_jobs(self, endpoint, tmp_path, capsys):
        code = main(
            ["submit", "--url", endpoint, "--wait", "--timeout-job", "120",
             *FAST_FLAGS]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "submitted job-000001" in out
        assert "job-000001: done" in out

        assert main(["status", "--url", endpoint, "job-000001"]) == 0
        assert '"state": "done"' in capsys.readouterr().out

        output = tmp_path / "result.json"
        assert main(
            ["result", "--url", endpoint, "job-000001", "--output", str(output)]
        ) == 0
        assert "campaign service:" in capsys.readouterr().out
        assert json.loads(output.read_text())["state"] == "done"

        assert main(["jobs", "--url", endpoint]) == 0
        assert "job-000001: done" in capsys.readouterr().out

    def test_unknown_job_exits_2(self, endpoint, capsys):
        assert main(["status", "--url", endpoint, "job-999999"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreachable_service_exits_2(self, capsys):
        assert main(["jobs", "--url", "http://127.0.0.1:1", "--timeout", "0.5"]) == 2
        assert "cannot reach" in capsys.readouterr().err
