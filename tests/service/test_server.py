"""HTTP round-trip tests: server in a background thread, blocking client."""

import http.client
import json
import threading

import pytest

from repro.bist import BistConfig
from repro.errors import JobNotFoundError, ServiceError
from repro.service import CampaignSpec, JobQueue
from repro.service.client import ServiceClient
from repro.service.server import BistServiceServer

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


def fast_spec(profiles=("paper-qpsk-1ghz",)) -> CampaignSpec:
    return CampaignSpec(profiles=profiles, bist_config=FAST_CONFIG)


@pytest.fixture()
def service(tmp_path):
    """A live server on an ephemeral port + a client; drained on teardown."""
    import asyncio

    ready = threading.Event()
    state = {}

    def run_server():
        async def main():
            queue = JobQueue(tmp_path / "store", num_workers=2)
            server = BistServiceServer(queue, port=0)
            await server.start()
            state["port"] = server.port
            ready.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    assert ready.wait(10.0), "server never came up"
    client = ServiceClient(f"http://127.0.0.1:{state['port']}", timeout_seconds=30.0)
    yield client
    try:
        client.drain()
    except ServiceError:
        pass  # already drained by the test
    thread.join(timeout=60.0)
    assert not thread.is_alive(), "server thread did not shut down"


def raw_request(client: ServiceClient, method: str, path: str, body: bytes = b"") -> tuple:
    """Bypass the client's error unwrapping to assert raw status codes."""
    host = client._base_url.split("//", 1)[1]
    connection = http.client.HTTPConnection(host, timeout=10.0)
    connection.request(method, path, body=body or None)
    response = connection.getresponse()
    payload = json.loads(response.read().decode("utf-8"))
    connection.close()
    return response.status, payload


class TestRoundTrip:
    def test_submit_status_result_flow(self, service):
        assert service.health()["status"] == "ok"
        job_id = service.submit(fast_spec())
        status = service.wait(job_id, timeout_seconds=120.0)
        assert status["state"] == "done"
        result = service.result(job_id)
        assert result["job_id"] == job_id
        assert "campaign service:" in result["summary_text"]
        assert result["summary"]["service"]["scenarios_total"] == 1
        assert len(result["outcomes"]) == 1
        assert service.stats()["jobs"]["done"] == 1

    def test_jobs_listing(self, service):
        first = service.submit(fast_spec())
        service.wait(first, timeout_seconds=120.0)
        jobs = service.jobs()
        assert [job["job_id"] for job in jobs] == [first]

    def test_drain_shuts_the_service_down(self, service):
        response = service.drain()
        assert response["status"] == "draining"


class TestProtocolErrors:
    def test_unknown_job_is_404(self, service):
        with pytest.raises(JobNotFoundError):
            service.status("job-424242")

    def test_result_of_running_job_is_409(self, service):
        job_id = service.submit(fast_spec())
        status, payload = raw_request(service, "GET", f"/jobs/{job_id}/result")
        # Terminal-state race: a very fast job may already be done.
        assert status in (200, 409)
        if status == 409:
            assert "results exist only" in payload["error"]
        service.wait(job_id, timeout_seconds=120.0)

    def test_bad_spec_is_400(self, service):
        status, payload = raw_request(
            service, "POST", "/jobs", json.dumps({"profiles": []}).encode()
        )
        assert status == 400
        assert "invalid campaign spec" in payload["error"]

    def test_non_json_body_is_400(self, service):
        status, payload = raw_request(service, "POST", "/jobs", b"not json")
        assert status == 400
        assert "not valid JSON" in payload["error"]

    def test_unknown_path_is_404(self, service):
        status, payload = raw_request(service, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, service):
        status, _ = raw_request(service, "POST", "/health")
        assert status == 405
        status, _ = raw_request(service, "GET", "/drain")
        assert status == 405

    def test_unknown_job_resource_is_404(self, service):
        status, _ = raw_request(service, "GET", "/jobs/job-000001/weird")
        assert status == 404


class TestClientTransport:
    def test_unreachable_endpoint_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout_seconds=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_wait_times_out_with_service_error(self, service):
        job_id = service.submit(fast_spec())
        with pytest.raises(ServiceError, match="still"):
            service.wait(job_id, timeout_seconds=0.0, poll_seconds=0.01)
        service.wait(job_id, timeout_seconds=120.0)
