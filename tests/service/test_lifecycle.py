"""Tests for shard lifecycle: GC retention, tombstones, compaction."""

import json
import os

import pytest

from repro.bist.measurements import TxMeasurements
from repro.bist.report import BistReport, CheckResult, SkewCalibrationReport, Verdict
from repro.bist.runner import ScenarioOutcome
from repro.dsp.spectrum import SpectrumEstimate
from repro.errors import ValidationError
from repro.service import GcPolicy, GcReport, compact_store, load_tombstones, run_gc
from repro.store import CampaignStore
from repro.store.fingerprint import SCHEMA_VERSION


def write_shard(root, name: str, records, mtime: float | None = None) -> None:
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{name}.jsonl"
    path.write_text("".join(json.dumps(record) + "\n" for record in records))
    if mtime is not None:
        os.utime(path, (mtime, mtime))


def record(fingerprint: str, schema_version: int = SCHEMA_VERSION, label: str = "x") -> dict:
    return {
        "fingerprint": fingerprint,
        "schema_version": schema_version,
        "outcome": {"index": 0, "label": label},
    }


NOW = 1_000_000.0


def successful_outcome(label: str = "x") -> ScenarioOutcome:
    """A minimal successful outcome the store will archive (no execution)."""
    report = BistReport(
        profile_name="paper-qpsk-1ghz",
        calibration=SkewCalibrationReport(
            estimated_delay_seconds=1e-10,
            programmed_delay_seconds=1e-10,
            true_delay_seconds=None,
            iterations=1,
            converged=True,
            final_cost=0.0,
            method="lms",
        ),
        measurements=TxMeasurements(
            output_power=1.0,
            acpr_db={"lower_db": -40.0, "upper_db": -40.0, "worst_db": -40.0},
            occupied_bandwidth_hz=1e7,
            evm_percent=None,
            spectrum=SpectrumEstimate(
                frequencies_hz=[1e9 + i * 1e5 for i in range(8)],
                psd=[1e-9] * 8,
                resolution_hz=1e5,
                two_sided=False,
            ),
        ),
        checks=(CheckResult(name="acpr", verdict=Verdict.PASS, measured=-40.0, limit=-30.0),),
    )
    return ScenarioOutcome(index=0, label=label, report=report)


class TestPolicy:
    def test_negative_age_is_rejected(self):
        with pytest.raises(ValidationError, match="max_age_seconds"):
            GcPolicy(max_age_seconds=-1.0)

    def test_policy_type_is_checked(self, tmp_path):
        with pytest.raises(ValidationError, match="GcPolicy"):
            run_gc(tmp_path, {"max_age_seconds": 10})

    def test_protecting_from_a_store_directory(self, tmp_path):
        write_shard(tmp_path / "baseline", "campaign", [record("keep-me")])
        policy = GcPolicy().protecting(tmp_path / "baseline")
        assert "keep-me" in policy.keep_fingerprints

    def test_protecting_from_a_json_file(self, tmp_path):
        listing = tmp_path / "keep.json"
        listing.write_text(json.dumps(["f-a", "f-b"]))
        policy = GcPolicy(keep_fingerprints={"f-c"}).protecting(listing)
        assert policy.keep_fingerprints == {"f-a", "f-b", "f-c"}

    def test_protecting_rejects_missing_sources(self, tmp_path):
        with pytest.raises(ValidationError, match="no baseline store"):
            GcPolicy().protecting(tmp_path / "nowhere")

    def test_protecting_rejects_non_list_files(self, tmp_path):
        listing = tmp_path / "keep.json"
        listing.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ValidationError, match="JSON list"):
            GcPolicy().protecting(listing)


class TestSchemaTombstones:
    def test_superseded_schema_records_are_collected_and_tombstoned(self, tmp_path):
        write_shard(
            tmp_path, "a", [record("current"), record("old", schema_version=SCHEMA_VERSION - 1)]
        )
        report = run_gc(tmp_path, GcPolicy(), now=NOW)
        assert report.tombstoned == 1
        assert report.records_kept == 1
        tombstones = load_tombstones(CampaignStore(tmp_path))
        assert tombstones["old"]["reason"] == "superseded-schema"
        assert tombstones["old"]["schema_version"] == SCHEMA_VERSION - 1
        remaining = (tmp_path / "a.jsonl").read_text()
        assert "current" in remaining
        assert '"old"' not in remaining

    def test_tombstoning_can_be_disabled(self, tmp_path):
        write_shard(tmp_path, "a", [record("old", schema_version=1_000)])
        report = run_gc(tmp_path, GcPolicy(drop_superseded_schema=False), now=NOW)
        assert report.tombstoned == 0
        assert report.records_kept == 1
        assert load_tombstones(CampaignStore(tmp_path)) == {}

    def test_tombstone_ledger_accumulates_across_passes(self, tmp_path):
        write_shard(tmp_path, "a", [record("first", schema_version=1_000)])
        run_gc(tmp_path, GcPolicy(), now=NOW)
        write_shard(tmp_path, "b", [record("second", schema_version=1_000)])
        run_gc(tmp_path, GcPolicy(), now=NOW)
        tombstones = load_tombstones(CampaignStore(tmp_path))
        assert set(tombstones) == {"first", "second"}


class TestAgeRetention:
    def test_expired_shards_are_removed(self, tmp_path):
        write_shard(tmp_path, "old", [record("stale")], mtime=NOW - 10_000)
        write_shard(tmp_path, "new", [record("fresh")], mtime=NOW - 10)
        report = run_gc(tmp_path, GcPolicy(max_age_seconds=3_600), now=NOW)
        assert report.expired == 1
        assert report.shards_removed == 1
        assert not (tmp_path / "old.jsonl").exists()
        assert (tmp_path / "new.jsonl").exists()

    def test_protected_fingerprints_survive_expiry(self, tmp_path):
        write_shard(
            tmp_path, "old", [record("stale"), record("golden")], mtime=NOW - 10_000
        )
        policy = GcPolicy(max_age_seconds=3_600, keep_fingerprints={"golden"})
        report = run_gc(tmp_path, policy, now=NOW)
        assert report.expired == 1
        assert report.protected == 1
        remaining = (tmp_path / "old.jsonl").read_text()
        assert "golden" in remaining
        assert "stale" not in remaining

    def test_no_age_limit_keeps_everything(self, tmp_path):
        write_shard(tmp_path, "old", [record("ancient")], mtime=NOW - 1e9)
        report = run_gc(tmp_path, GcPolicy(), now=NOW)
        assert report.records_dropped == 0


class TestStoredAtRetention:
    """Records age by their ``stored_at`` stamp, not the shard's mtime."""

    def test_backdated_records_expire_even_after_compaction(self, tmp_path):
        # Regression: compaction rewrites the shard (fresh mtime), which used
        # to rejuvenate — and effectively immortalise — every record in it.
        store = CampaignStore(tmp_path)
        store.put("stale", successful_outcome("x"), stored_at=NOW - 10_000)
        store.put("fresh", successful_outcome("y"), stored_at=NOW - 10)
        store.compact()
        shard = next(tmp_path.glob("*.jsonl"))
        os.utime(shard, (NOW, NOW))  # the rejuvenated mtime compaction causes
        report = run_gc(tmp_path, GcPolicy(max_age_seconds=3_600), now=NOW)
        assert report.expired == 1
        remaining = shard.read_text()
        assert "fresh" in remaining
        assert "stale" not in remaining

    def test_stamp_survives_merge(self, tmp_path):
        source = CampaignStore(tmp_path / "source")
        source.put("old-record", successful_outcome("x"), stored_at=NOW - 10_000)
        target = CampaignStore(tmp_path / "target")
        target.merge(source)
        assert target.stored_at("old-record") == NOW - 10_000
        os.utime(target.shard_path, (NOW, NOW))  # pin the merged shard's mtime
        report = run_gc(
            tmp_path / "target", GcPolicy(max_age_seconds=3_600), now=NOW
        )
        assert report.expired == 1

    def test_legacy_records_without_stamp_age_by_shard_mtime(self, tmp_path):
        write_shard(tmp_path, "legacy", [record("unstamped")], mtime=NOW - 10_000)
        report = run_gc(tmp_path, GcPolicy(max_age_seconds=3_600), now=NOW)
        assert report.expired == 1

    def test_fresh_stamp_in_an_old_shard_survives(self, tmp_path):
        stamped = dict(record("recent"), stored_at=NOW - 10)
        write_shard(tmp_path, "old", [stamped], mtime=NOW - 10_000)
        report = run_gc(tmp_path, GcPolicy(max_age_seconds=3_600), now=NOW)
        assert report.expired == 0
        assert report.records_kept == 1


class TestNegativeAgeClamp:
    """Clock skew must never expire a freshly-written record."""

    def test_future_record_stamp_warns_and_is_kept(self, tmp_path):
        stamped = dict(record("from-the-future"), stored_at=NOW + 500)
        write_shard(tmp_path, "a", [stamped], mtime=NOW - 10)
        with pytest.warns(RuntimeWarning, match="negative age"):
            report = run_gc(tmp_path, GcPolicy(max_age_seconds=3_600), now=NOW)
        assert report.expired == 0
        assert report.records_kept == 1

    def test_future_shard_mtime_warns_and_keeps_legacy_records(self, tmp_path):
        write_shard(tmp_path, "a", [record("legacy")], mtime=NOW + 500)
        with pytest.warns(RuntimeWarning, match="negative age"):
            report = run_gc(tmp_path, GcPolicy(max_age_seconds=3_600), now=NOW)
        assert report.expired == 0
        assert report.records_kept == 1

    def test_no_age_policy_never_warns(self, tmp_path):
        import warnings

        write_shard(tmp_path, "a", [record("legacy")], mtime=NOW + 500)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = run_gc(tmp_path, GcPolicy(), now=NOW)
        assert report.records_kept == 1


class TestDryRunAndReport:
    def test_dry_run_changes_nothing(self, tmp_path):
        write_shard(tmp_path, "old", [record("stale", schema_version=1_000)], mtime=NOW - 1e6)
        before = (tmp_path / "old.jsonl").read_text()
        report = run_gc(tmp_path, GcPolicy(max_age_seconds=60), dry_run=True, now=NOW)
        assert report.dry_run
        assert report.records_dropped == 1
        assert (tmp_path / "old.jsonl").read_text() == before
        assert load_tombstones(CampaignStore(tmp_path)) == {}
        assert "would drop" in report.to_text()

    def test_corrupt_lines_are_left_alone(self, tmp_path):
        (tmp_path / "a.jsonl").parent.mkdir(parents=True, exist_ok=True)
        (tmp_path / "a.jsonl").write_text(
            json.dumps(record("ok", schema_version=1_000)) + "\n{torn garbage\n"
        )
        report = run_gc(tmp_path, GcPolicy(), now=NOW)
        assert report.tombstoned == 1
        assert "{torn garbage" in (tmp_path / "a.jsonl").read_text()

    def test_report_round_trips_to_dict(self):
        report = GcReport(records_scanned=5, expired=2, tombstoned=1, records_kept=2)
        payload = report.to_dict()
        assert payload["records_dropped"] == 3
        assert payload["records_scanned"] == 5
        assert "dropped 3" in report.to_text()


class TestCompaction:
    def test_compact_store_collapses_shards(self, tmp_path):
        write_shard(tmp_path, "w1", [record("f-a")])
        write_shard(tmp_path, "w2", [record("f-b")])
        survivors = compact_store(tmp_path)
        assert survivors == 2
        assert [path.name for path in tmp_path.glob("*.jsonl")] == ["campaign.jsonl"]
