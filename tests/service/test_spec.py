"""Tests for CampaignSpec: validation, expansion, JSON portability."""

import pytest

from repro.bist import BistConfig
from repro.bist.runner import pa_saturation_sweep, skew_sweep
from repro.bist.campaign import ConverterSpec
from repro.errors import ValidationError
from repro.service import CampaignSpec
from repro.transmitter import ImpairmentConfig

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


class TestValidation:
    def test_requires_at_least_one_profile(self):
        with pytest.raises(ValidationError, match="at least one profile"):
            CampaignSpec(profiles=())

    def test_profiles_must_be_names(self):
        with pytest.raises(ValidationError, match="profile names"):
            CampaignSpec(profiles=(123,))

    def test_impairment_axis_must_carry_configs(self):
        with pytest.raises(ValidationError, match="ImpairmentConfig"):
            CampaignSpec(profiles=("paper-qpsk-1ghz",), impairments=(("x", object()),))

    def test_converter_axis_must_carry_specs(self):
        with pytest.raises(ValidationError, match="ConverterSpec"):
            CampaignSpec(profiles=("paper-qpsk-1ghz",), converters=(("x", 1.0),))

    def test_seed_policy_is_checked(self):
        with pytest.raises(ValidationError, match="seed_policy"):
            CampaignSpec(profiles=("paper-qpsk-1ghz",), seed_policy="random")

    def test_bist_config_type_is_checked(self):
        with pytest.raises(ValidationError, match="BistConfig"):
            CampaignSpec(profiles=("paper-qpsk-1ghz",), bist_config={"seed": 1})


class TestExpansion:
    def test_cartesian_product_size(self):
        spec = CampaignSpec(
            profiles=("paper-qpsk-1ghz", "uhf-8psk-400mhz"),
            impairments=(
                ("nominal", ImpairmentConfig()),
                ("hot", pa_saturation_sweep((1.0,))[0][1]),
            ),
            converters=(("skew", skew_sweep([2e-12])[0][1]),),
        )
        assert len(spec) == 4
        assert len(spec.scenarios()) == 4

    def test_describe_mentions_axes(self):
        spec = CampaignSpec(
            profiles=("paper-qpsk-1ghz",),
            impairments=(("nominal", ImpairmentConfig()),),
        )
        text = spec.describe()
        assert "1 profile(s)" in text
        assert "1 impairment(s)" in text

    def test_scenarios_match_a_hand_built_grid(self):
        from repro.bist import ScenarioGrid

        spec = CampaignSpec(profiles=("paper-qpsk-1ghz",), num_symbols=32)
        manual = ScenarioGrid(num_symbols=32).add_profiles("paper-qpsk-1ghz").build()
        assert spec.scenarios() == manual


class TestRoundTrip:
    def test_full_round_trip(self):
        spec = CampaignSpec(
            profiles=("paper-qpsk-1ghz", "uhf-8psk-400mhz"),
            impairments=(("hot", pa_saturation_sweep((1.0,))[0][1]),),
            converters=(("skew", skew_sweep([2e-12])[0][1]),),
            num_symbols=48,
            bist_config=FAST_CONFIG,
            seed_policy="per-scenario",
            compile_groups=True,
        )
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_from_dict_rejects_non_objects(self):
        with pytest.raises(ValidationError, match="JSON object"):
            CampaignSpec.from_dict([1, 2, 3])

    def test_from_dict_requires_profiles(self):
        with pytest.raises(ValidationError, match="profiles"):
            CampaignSpec.from_dict({"seed_policy": "shared"})

    def test_defaults_survive_the_round_trip(self):
        spec = CampaignSpec(profiles=("paper-qpsk-1ghz",))
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt.bist_config == BistConfig()
        assert rebuilt.seed_policy == "shared"
        assert not rebuilt.compile_groups
