"""In-process tests for the worker entry point and its message protocol.

``run_partition_worker`` normally runs in a forked process, but it is a
plain function: driving it in-process with a list-backed queue pins down
the exact message sequence the coordinator relies on — started first,
incremental outcomes, heartbeats from the side thread, one terminal
message — without any process-management noise.
"""

import threading
import time

from repro.bist import BistConfig, ScenarioGrid
from repro.service.partition import plan_partitions
from repro.service.worker import (
    DEFAULT_HEARTBEAT_INTERVAL,
    WorkerSettings,
    _heartbeat_loop,
    run_partition_worker,
)
from repro.store import CampaignStore

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


class RecordingQueue:
    """Queue stand-in that just records every message, thread-safely."""

    def __init__(self, fail_after: int | None = None):
        self.messages = []
        self._lock = threading.Lock()
        self._fail_after = fail_after

    def put(self, message):
        with self._lock:
            if self._fail_after is not None and len(self.messages) >= self._fail_after:
                raise OSError("queue torn")
            self.messages.append(message)

    def kinds(self) -> list:
        with self._lock:
            return [message[0] for message in self.messages]


def one_partition(profiles=("paper-qpsk-1ghz",)):
    grid = ScenarioGrid().add_profiles(*profiles).build()
    plan = plan_partitions(grid, num_partitions=1, bist_config=FAST_CONFIG)
    assert len(plan.partitions) == 1
    return plan.partitions[0]


class TestSuccessPath:
    def test_message_sequence_and_done_payload(self, tmp_path):
        queue = RecordingQueue()
        partition = one_partition()
        settings = WorkerSettings(
            store_root=str(tmp_path / "store"),
            bist_config=FAST_CONFIG,
            heartbeat_interval=0.01,
        )
        code = run_partition_worker("worker-000", partition, settings, queue)
        assert code == 0
        kinds = queue.kinds()
        assert kinds[0] == "started"
        assert kinds[-1] == "partition_done"
        assert kinds.count("outcome") == 1
        # The 10 ms heartbeat thread had time to beat during real execution.
        assert "heartbeat" in kinds
        done = queue.messages[-1]
        assert done[1] == "worker-000"
        assert done[2] == partition.partition_id
        payload = done[3]
        assert payload["executed"] == 1
        assert payload["cache_hits"] == 0
        assert payload["errors"] == 0

    def test_outcomes_land_in_the_worker_private_shard(self, tmp_path):
        queue = RecordingQueue()
        settings = WorkerSettings(
            store_root=str(tmp_path / "store"), bist_config=FAST_CONFIG
        )
        run_partition_worker("worker-007", one_partition(), settings, queue)
        store = CampaignStore(tmp_path / "store")
        assert [path.name for path in store.shard_paths()] == ["worker-007.jsonl"]
        assert len(store.fingerprints()) == 1

    def test_rerun_serves_from_cache(self, tmp_path):
        settings = WorkerSettings(
            store_root=str(tmp_path / "store"), bist_config=FAST_CONFIG
        )
        run_partition_worker("worker-000", one_partition(), settings, RecordingQueue())
        queue = RecordingQueue()
        run_partition_worker("worker-001", one_partition(), settings, queue)
        payload = queue.messages[-1][3]
        assert payload["cache_hits"] == 1
        assert payload["executed"] == 0


class TestFailurePath:
    def test_infrastructure_errors_report_partition_failed(self, tmp_path):
        queue = RecordingQueue()
        # An unwritable store root makes the runner die before any scenario.
        marker = tmp_path / "not-a-directory"
        marker.write_text("file, not dir")
        settings = WorkerSettings(store_root=str(marker), bist_config=FAST_CONFIG)
        code = run_partition_worker("worker-000", one_partition(), settings, queue)
        assert code == 1
        kinds = queue.kinds()
        assert kinds[0] == "started"
        assert kinds[-1] == "partition_failed"
        error_text = queue.messages[-1][3]
        assert "Traceback" in error_text

    def test_torn_queue_on_failure_report_stays_silent(self, tmp_path):
        # Queue dies right after "started": the terminal report cannot be
        # delivered, but the worker must still exit with code 1, not raise.
        queue = RecordingQueue(fail_after=1)
        marker = tmp_path / "not-a-directory"
        marker.write_text("file, not dir")
        settings = WorkerSettings(store_root=str(marker), bist_config=FAST_CONFIG)
        code = run_partition_worker("worker-000", one_partition(), settings, queue)
        assert code == 1
        assert queue.kinds() == ["started"]


class TestHeartbeatLoop:
    def test_beats_until_stopped(self):
        queue = RecordingQueue()
        stop = threading.Event()
        thread = threading.Thread(
            target=_heartbeat_loop, args=("worker-000", 0.005, queue, stop)
        )
        thread.start()
        time.sleep(0.05)
        stop.set()
        thread.join(timeout=5)
        assert not thread.is_alive()
        kinds = queue.kinds()
        assert kinds and set(kinds) == {"heartbeat"}
        _, worker_id, timestamp = queue.messages[0]
        assert worker_id == "worker-000"
        assert timestamp <= time.time()

    def test_torn_queue_ends_the_loop_quietly(self):
        queue = RecordingQueue(fail_after=0)
        stop = threading.Event()
        thread = threading.Thread(
            target=_heartbeat_loop, args=("worker-000", 0.005, queue, stop)
        )
        thread.start()
        thread.join(timeout=5)
        # The loop exited on its own after the first failed put.
        assert not thread.is_alive()
        assert queue.messages == []

    def test_default_interval_is_sub_second(self):
        # The coordinator's liveness timeout maths assume frequent beats.
        assert 0 < DEFAULT_HEARTBEAT_INTERVAL < 1.0
