"""Tests for service flow metrics: derived rates, serialization, rendering."""

from repro.service import ServiceStats, WorkerStats


class TestWorkerStats:
    def test_throughput(self):
        worker = WorkerStats("worker-000", executed=4, busy_seconds=2.0)
        assert worker.throughput_per_second == 2.0

    def test_idle_worker_throughput_is_zero(self):
        assert WorkerStats("worker-000").throughput_per_second == 0.0

    def test_round_trip(self):
        worker = WorkerStats(
            "worker-007", partitions=2, scenarios=9, executed=6, cache_hits=3,
            busy_seconds=1.5,
        )
        rebuilt = WorkerStats.from_dict(worker.to_dict())
        assert rebuilt == worker

    def test_negative_busy_seconds_clamped(self):
        # Archives written by pre-monotonic versions can carry negative
        # wall-clock deltas; they must not produce negative rates.
        worker = WorkerStats("worker-000", executed=4, busy_seconds=-1.5)
        assert worker.busy_seconds == 0.0
        assert worker.throughput_per_second == 0.0


class TestServiceStats:
    def make(self, **overrides) -> ServiceStats:
        base = dict(
            num_workers=4,
            num_partitions=4,
            scenarios_total=10,
            planned_cache_hits=3,
            worker_cache_hits=1,
            deduplicated=1,
            executed=5,
            retries=1,
            queue_latency_seconds=0.25,
            execution_seconds=2.0,
            serial_equivalent_seconds=6.0,
            workers=(WorkerStats("worker-000", executed=5, busy_seconds=6.0),),
        )
        base.update(overrides)
        return ServiceStats(**base)

    def test_cache_hits_combine_planned_and_worker(self):
        assert self.make().cache_hits == 4

    def test_warm_hit_rate(self):
        assert self.make().warm_hit_rate == 0.4
        assert self.make(scenarios_total=0).warm_hit_rate == 0.0

    def test_scaling_efficiency(self):
        assert self.make().scaling_efficiency == 3.0
        assert self.make(execution_seconds=0.0).scaling_efficiency == 0.0

    def test_round_trip(self):
        stats = self.make()
        rebuilt = ServiceStats.from_dict(stats.to_dict())
        assert rebuilt == stats
        assert rebuilt.to_dict() == stats.to_dict()

    def test_to_dict_includes_derived_metrics(self):
        payload = self.make().to_dict()
        assert payload["cache_hits"] == 4
        assert payload["warm_hit_rate"] == 0.4
        assert payload["scaling_efficiency"] == 3.0

    def test_negative_durations_clamped(self):
        stats = self.make(
            queue_latency_seconds=-0.5,
            execution_seconds=-2.0,
            serial_equivalent_seconds=-6.0,
        )
        assert stats.queue_latency_seconds == 0.0
        assert stats.execution_seconds == 0.0
        assert stats.serial_equivalent_seconds == 0.0
        assert stats.scaling_efficiency == 0.0

    def test_clamp_applies_when_rebuilding_old_archives(self):
        payload = self.make().to_dict()
        payload["execution_seconds"] = -3.0
        payload["workers"][0]["busy_seconds"] = -1.0
        rebuilt = ServiceStats.from_dict(payload)
        assert rebuilt.execution_seconds == 0.0
        assert rebuilt.workers[0].busy_seconds == 0.0
        assert rebuilt.scaling_efficiency == 0.0

    def test_to_text_mentions_every_axis(self):
        text = self.make().to_text()
        assert "10 scenario(s)" in text
        assert "1 retry(ies)" in text
        assert "40.0% warm" in text
        assert "3.00x scaling" in text
        assert "worker-000" in text
