"""Tests for the asyncio job queue: lifecycle, isolation, drain, latency."""

import asyncio
import threading
import time

import pytest

from repro.bist import BistConfig
from repro.errors import JobNotFoundError, ServiceError
from repro.service import CampaignSpec, JobQueue
from repro.service.queue import Job

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


def fast_spec(profiles=("paper-qpsk-1ghz",)) -> CampaignSpec:
    return CampaignSpec(profiles=profiles, bist_config=FAST_CONFIG)


async def wait_terminal(queue: JobQueue, job_id: str, timeout: float = 120.0) -> dict:
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status = queue.status(job_id)
        if status["state"] in ("done", "partial", "failed"):
            return status
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"job {job_id} never finished: {status}")
        await asyncio.sleep(0.05)


class TestLifecycle:
    def test_job_runs_to_done_with_queue_latency(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=2)
            job_id = queue.submit(fast_spec())
            assert queue.status(job_id)["state"] in ("queued", "running")
            status = await wait_terminal(queue, job_id)
            assert status["state"] == "done"
            assert status["queue_latency_seconds"] >= 0.0
            assert status["completed_scenarios"] == 1
            result = queue.result(job_id)
            assert result["state"] == "done"
            assert "campaign service:" in result["summary_text"]
            service = result["summary"]["service"]
            assert service["queue_latency_seconds"] == status["queue_latency_seconds"]
            await queue.drain()

        asyncio.run(scenario())

    def test_error_scenarios_mark_the_job_partial(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=1)
            job_id = queue.submit(fast_spec(("paper-qpsk-1ghz", "no-such-profile")))
            status = await wait_terminal(queue, job_id)
            assert status["state"] == "partial"
            result = queue.result(job_id)
            outcomes = result["outcomes"]
            assert len(outcomes) == 2
            assert sum(1 for outcome in outcomes if outcome["error"]) == 1
            await queue.drain()

        asyncio.run(scenario())

    def test_jobs_execute_in_submission_order(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=1)
            first = queue.submit(fast_spec())
            second = queue.submit(fast_spec(("uhf-8psk-400mhz",)))
            await wait_terminal(queue, second)
            jobs = queue.jobs()
            assert [job["job_id"] for job in jobs] == [first, second]
            assert all(job["state"] == "done" for job in jobs)
            starts = [job["started_at"] for job in jobs]
            assert starts[0] <= starts[1]
            await queue.drain()

        asyncio.run(scenario())

    def test_second_submission_is_warm(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=2)
            first = queue.submit(fast_spec())
            await wait_terminal(queue, first)
            second = queue.submit(fast_spec())
            await wait_terminal(queue, second)
            stats = queue.result(second)["summary"]["service"]
            assert stats["warm_hit_rate"] == 1.0
            assert stats["executed"] == 0
            await queue.drain()

        asyncio.run(scenario())


class TestErrors:
    def test_unknown_job_raises(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store")
            with pytest.raises(JobNotFoundError, match="job-999999"):
                queue.status("job-999999")
            await queue.drain()

        asyncio.run(scenario())

    def test_result_before_terminal_raises(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=1)
            job_id = queue.submit(fast_spec())
            with pytest.raises(ServiceError, match="results exist only"):
                queue.result(job_id)
            await wait_terminal(queue, job_id)
            await queue.drain()

        asyncio.run(scenario())

    def test_non_spec_submissions_are_rejected(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store")
            with pytest.raises(ServiceError, match="CampaignSpec"):
                queue.submit({"profiles": ["paper-qpsk-1ghz"]})
            await queue.drain()

        asyncio.run(scenario())


class TestDrain:
    def test_drained_queue_refuses_new_jobs(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=1)
            job_id = queue.submit(fast_spec())
            await wait_terminal(queue, job_id)
            await queue.drain()
            assert queue.draining
            with pytest.raises(ServiceError, match="draining"):
                queue.submit(fast_spec())

        asyncio.run(scenario())

    def test_drain_fails_jobs_still_queued(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=1)
            running = queue.submit(fast_spec())
            waiting = queue.submit(fast_spec(("uhf-8psk-400mhz",)))
            # Let the first job enter the executor before draining.
            while queue.status(running)["state"] == "queued":
                await asyncio.sleep(0.01)
            await queue.drain()
            assert queue.status(waiting)["state"] == "failed"
            assert "drained" in queue.status(waiting)["error"]
            # The running job either finished or was drained mid-flight; it
            # must have reached a terminal state either way.
            assert queue.status(running)["state"] in ("done", "partial", "failed")

        asyncio.run(scenario())

    def test_service_stats_aggregate_job_states(self, tmp_path):
        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=1)
            job_id = queue.submit(fast_spec())
            await wait_terminal(queue, job_id)
            stats = queue.service_stats()
            assert stats["jobs"]["done"] == 1
            assert stats["num_workers"] == 1
            assert stats["mean_queue_latency_seconds"] >= 0.0
            await queue.drain()

        asyncio.run(scenario())


class TestMonotonicDurations:
    """Durations must come from the monotonic clock, never wall-clock deltas."""

    def test_execution_seconds_uses_monotonic_stamps_not_wall(self):
        job = Job(job_id="job-000001", spec=fast_spec())
        assert job.execution_seconds is None  # still queued
        job._started_monotonic = 100.0
        job._finished_monotonic = 102.5
        # Wall clock stepped backwards between dispatch and finish (NTP).
        job.started_at = 2_000_000_000.0
        job.finished_at = 1_000_000_000.0
        assert job.execution_seconds == 2.5

    def test_execution_seconds_clamped_at_zero(self):
        job = Job(job_id="job-000001", spec=fast_spec())
        job._started_monotonic = 100.0
        job._finished_monotonic = 99.0  # impossible in practice; clamp anyway
        assert job.execution_seconds == 0.0

    def test_running_job_reports_live_elapsed(self):
        job = Job(job_id="job-000001", spec=fast_spec())
        job._started_monotonic = time.monotonic() - 1.0
        assert job.execution_seconds >= 1.0

    def test_wall_clock_stepping_backwards_cannot_poison_durations(
        self, tmp_path, monkeypatch
    ):
        # Every time.time() call returns an *earlier* value than the last, so
        # any duration derived from wall-clock deltas would be negative.  The
        # child worker processes are spawned unpatched, which is fine: their
        # timestamps are display-only payload.
        lock = threading.Lock()
        state = {"now": 1_000_000_000.0}

        def stepping_backwards():
            with lock:
                state["now"] -= 100.0
                return state["now"]

        monkeypatch.setattr(time, "time", stepping_backwards)

        async def scenario():
            queue = JobQueue(tmp_path / "store", num_workers=1)
            job_id = queue.submit(fast_spec())
            status = await wait_terminal(queue, job_id)
            assert status["state"] == "done"
            # The wall stamps really did run backwards...
            assert status["finished_at"] < status["started_at"]
            # ...yet every duration stayed non-negative.
            assert status["queue_latency_seconds"] >= 0.0
            assert status["execution_seconds"] >= 0.0
            stats = status["stats"]
            assert stats["queue_latency_seconds"] >= 0.0
            assert stats["execution_seconds"] >= 0.0
            assert stats["scaling_efficiency"] >= 0.0
            assert queue.service_stats()["mean_queue_latency_seconds"] >= 0.0
            await queue.drain()

        asyncio.run(scenario())
