"""Tests for repro.bist.measurements."""

import numpy as np
import pytest

from repro.bist import (
    measure_acpr,
    measure_occupied_bandwidth,
    measure_spectrum,
    reconstructed_envelope,
    render_uniform,
)
from repro.dsp import peak_frequency
from repro.errors import MeasurementError, ValidationError
from repro.sampling import BandpassBand, IdealNonuniformSampler, NonuniformReconstructor
from repro.signals import single_tone


BAND = BandpassBand.from_centre(1.0e9, 90.0e6)
TONE_FREQUENCY = 1.004e9


@pytest.fixture(scope="module")
def tone_reconstructor():
    tone = single_tone(TONE_FREQUENCY, amplitude=0.7)
    sampler = IdealNonuniformSampler(BAND, delay=180e-12)
    sample_set = sampler.acquire(tone, num_samples=500)
    return NonuniformReconstructor(sample_set, num_taps=60)


class TestRenderUniform:
    def test_default_rate_above_carrier_nyquist(self, tone_reconstructor):
        low, high = tone_reconstructor.valid_time_range()
        _, _, rate = render_uniform(tone_reconstructor, low, high)
        assert rate >= 2.0 * BAND.f_high

    def test_samples_match_reconstruction(self, tone_reconstructor):
        low, high = tone_reconstructor.valid_time_range()
        times, samples, _ = render_uniform(tone_reconstructor, low, low + 0.2e-6)
        np.testing.assert_allclose(samples, tone_reconstructor.evaluate(times))

    def test_interval_clipped_to_valid_range(self, tone_reconstructor):
        times, _, _ = render_uniform(tone_reconstructor, 0.0, 1.0)
        low, high = tone_reconstructor.valid_time_range()
        assert times[0] >= low
        assert times[-1] <= high

    def test_empty_interval_rejected(self, tone_reconstructor):
        low, _ = tone_reconstructor.valid_time_range()
        with pytest.raises(MeasurementError):
            render_uniform(tone_reconstructor, low, low)

    def test_type_check(self):
        with pytest.raises(ValidationError):
            render_uniform("reconstructor", 0.0, 1.0)


class TestSpectrumMeasurements:
    def test_tone_appears_at_rf_frequency(self, tone_reconstructor):
        low, high = tone_reconstructor.valid_time_range()
        spectrum = measure_spectrum(tone_reconstructor, low, high)
        assert peak_frequency(spectrum) == pytest.approx(TONE_FREQUENCY, rel=2e-3)

    def test_acpr_of_clean_tone_low(self, tone_reconstructor):
        low, high = tone_reconstructor.valid_time_range()
        spectrum = measure_spectrum(tone_reconstructor, low, high)
        acpr = measure_acpr(spectrum, TONE_FREQUENCY, 5e6, channel_spacing_hz=10e6)
        assert acpr["worst_db"] < -20.0

    def test_occupied_bandwidth_of_tone_narrow(self, tone_reconstructor):
        low, high = tone_reconstructor.valid_time_range()
        spectrum = measure_spectrum(tone_reconstructor, low, high)
        obw = measure_occupied_bandwidth(spectrum, TONE_FREQUENCY, search_half_width_hz=40e6)
        assert obw < 5e6

    def test_occupied_bandwidth_window_check(self, tone_reconstructor):
        low, high = tone_reconstructor.valid_time_range()
        spectrum = measure_spectrum(tone_reconstructor, low, high)
        with pytest.raises(MeasurementError):
            measure_occupied_bandwidth(spectrum, 5e9, search_half_width_hz=1e3)


class TestReconstructedEnvelope:
    def test_tone_envelope_is_offset_exponential(self, tone_reconstructor):
        low, high = tone_reconstructor.valid_time_range()
        times, envelope = reconstructed_envelope(
            tone_reconstructor,
            carrier_frequency_hz=1.0e9,
            start_time=low,
            stop_time=high,
            envelope_rate=90e6,
        )
        # The tone at fc + 4 MHz has a complex envelope rotating at +4 MHz with
        # amplitude 0.7; check magnitude and rotation rate away from the edges.
        interior = slice(40, -40)
        magnitudes = np.abs(envelope[interior])
        np.testing.assert_allclose(magnitudes, 0.7, rtol=0.05)
        phase_rate = np.diff(np.unwrap(np.angle(envelope[interior]))) * 90e6 / (2 * np.pi)
        np.testing.assert_allclose(np.median(phase_rate), 4e6, rtol=0.05)

    def test_invalid_carrier(self, tone_reconstructor):
        low, high = tone_reconstructor.valid_time_range()
        with pytest.raises(ValidationError):
            reconstructed_envelope(tone_reconstructor, 0.0, low, high, envelope_rate=90e6)
