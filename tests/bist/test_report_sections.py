"""Tests for the table-driven optional sections of ``CampaignSummary.to_text``.

Each metric source (store, compiler, adaptive planner, service queue,
streaming monitor, channel matrix) owns
one renderer in ``_SUMMARY_SECTIONS``; a renderer returns its line or
``None`` when the campaign never touched that subsystem.  The contract
under test: sections appear only when their data is present, in table
order, and adding a source never requires editing ``to_text`` itself.
"""

from repro.bist.report import (
    _SUMMARY_SECTIONS,
    _adaptive_section,
    _channel_matrix_section,
    _compiler_section,
    _monitor_section,
    _service_section,
    _store_section,
    CampaignSummary,
)

SERVICE_PAYLOAD = {
    "num_workers": 4,
    "num_partitions": 3,
    "retries": 1,
    "queue_latency_seconds": 0.125,
    "execution_seconds": 2.5,
    "warm_hit_rate": 0.75,
}

MONITOR_PAYLOAD = {
    "windows": 8,
    "window_samples": 1024,
    "samples_ingested": 8192,
    "segments_accumulated": 63,
    "alarms": 2,
    "alarmed_metrics": ["output_power"],
    "first_alarm_window": 5,
}

COMPILER_PAYLOAD = {
    "groups_formed": 2,
    "scenarios_batched": 5,
    "scenarios_pooled": 3,
    "structure_cache": {"hits": 4, "misses": 1},
}

CHANNEL_MATRIX_PAYLOAD = {
    "num_tx": 2,
    "num_rx": 2,
    "num_passed": 3,
    "all_passed": False,
    "combinations": [
        {"label": "TX1/RX1", "passed": True},
        {"label": "TX1/RX2", "passed": True},
        {"label": "TX2/RX1", "passed": False},
        {"label": "TX2/RX2", "passed": True},
    ],
}


def make_summary(**kwargs) -> CampaignSummary:
    """Smallest valid summary: one errored scenario, no reports needed."""
    return CampaignSummary.from_entries(
        [], errors=[("scenario-0", "synthetic")], **kwargs
    )


class TestSectionTable:
    def test_table_covers_every_metric_source_in_order(self):
        assert _SUMMARY_SECTIONS == (
            _store_section,
            _compiler_section,
            _adaptive_section,
            _service_section,
            _monitor_section,
            _channel_matrix_section,
        )

    def test_bare_summary_renders_no_optional_sections(self):
        text = make_summary().to_text()
        for renderer in _SUMMARY_SECTIONS:
            assert renderer(make_summary()) is None
        assert "campaign store:" not in text
        assert "campaign compiler:" not in text
        assert "adaptive efficiency:" not in text
        assert "campaign service:" not in text
        assert "streaming monitor:" not in text
        assert "channel matrix:" not in text

    def test_every_section_renders_when_its_source_is_present(self):
        summary = make_summary(
            cache_hits=3,
            cache_misses=1,
            deduplicated=2,
            compiler_stats=COMPILER_PAYLOAD,
            scenarios_saved_vs_grid=4.0,
            service=SERVICE_PAYLOAD,
            monitor=MONITOR_PAYLOAD,
            channel_matrix=CHANNEL_MATRIX_PAYLOAD,
        )
        text = summary.to_text()
        lines = text.splitlines()
        order = [
            lines.index(next(line for line in lines if line.startswith(prefix)))
            for prefix in (
                "campaign store:",
                "campaign compiler:",
                "adaptive efficiency:",
                "campaign service:",
                "streaming monitor:",
                "channel matrix:",
            )
        ]
        # Sections appear in table order, right after the headline.
        assert order == sorted(order)
        assert order[0] == 1


class TestStoreSection:
    def test_hits_and_dedup(self):
        summary = make_summary(cache_hits=3, cache_misses=1, deduplicated=2)
        assert _store_section(summary) == (
            "campaign store: 3 cache hit(s), 2 deduplicated, 1 executed"
        )

    def test_dedup_clause_is_omitted_when_zero(self):
        summary = make_summary(cache_hits=3, cache_misses=1)
        assert "deduplicated" not in _store_section(summary)

    def test_cold_run_renders_nothing(self):
        assert _store_section(make_summary(cache_misses=1)) is None


class TestCompilerSection:
    def test_renders_counts_and_structure_cache(self):
        summary = make_summary(compiler_stats=COMPILER_PAYLOAD)
        assert _compiler_section(summary) == (
            "campaign compiler: 2 group(s), 5 batched, 3 pooled "
            "(structure cache: 4 hit(s), 1 miss(es))"
        )


class TestAdaptiveSection:
    def test_renders_grid_equivalent_efficiency(self):
        summary = make_summary(scenarios_saved_vs_grid=4.25)
        assert _adaptive_section(summary) == (
            "adaptive efficiency: 4.2x fewer scenarios than the exhaustive grid"
        )


class TestServiceSection:
    def test_renders_queue_and_cache_metrics(self):
        line = _service_section(make_summary(service=SERVICE_PAYLOAD))
        assert line == (
            "campaign service: 4 worker(s), 3 partition(s), 1 retry(ies); "
            "queue latency 0.125 s, execution 2.50 s; "
            "warm-cache hit rate 75.0%"
        )

    def test_missing_keys_default_to_zero(self):
        line = _service_section(make_summary(service={}))
        assert "0 worker(s)" in line
        assert "warm-cache hit rate 0.0%" in line

    def test_service_dict_round_trips_through_to_dict(self):
        summary = make_summary(service=SERVICE_PAYLOAD)
        assert summary.to_dict()["service"] == SERVICE_PAYLOAD
        # from_entries defensively copies: mutating the input doesn't leak.
        payload = dict(SERVICE_PAYLOAD)
        summary = make_summary(service=payload)
        payload["num_workers"] = 99
        assert summary.service["num_workers"] == 4


class TestMonitorSection:
    def test_renders_windows_and_alarms(self):
        line = _monitor_section(make_summary(monitor=MONITOR_PAYLOAD))
        assert line == (
            "streaming monitor: 8 window(s) over 8192 sample(s) "
            "(63 Welch segment(s)); 2 alarm(s) [output_power], first at window 5"
        )

    def test_quiet_session_renders_no_alarm_clause(self):
        payload = dict(MONITOR_PAYLOAD, alarms=0, alarmed_metrics=[], first_alarm_window=None)
        line = _monitor_section(make_summary(monitor=payload))
        assert line.endswith("no drift alarms")

    def test_batch_campaign_renders_nothing(self):
        assert _monitor_section(make_summary()) is None

    def test_monitor_dict_round_trips_through_to_dict(self):
        summary = make_summary(monitor=MONITOR_PAYLOAD)
        assert summary.to_dict()["monitor"] == MONITOR_PAYLOAD
        payload = dict(MONITOR_PAYLOAD)
        summary = make_summary(monitor=payload)
        payload["alarms"] = 99
        assert summary.monitor["alarms"] == 2


class TestChannelMatrixSection:
    def test_renders_shape_and_failed_combinations(self):
        line = _channel_matrix_section(make_summary(channel_matrix=CHANNEL_MATRIX_PAYLOAD))
        assert line == (
            "channel matrix: 2 TX x 2 RX (4 combination(s)); FAIL at TX2/RX1"
        )

    def test_healthy_matrix_renders_all_passed(self):
        payload = dict(
            CHANNEL_MATRIX_PAYLOAD,
            all_passed=True,
            num_passed=4,
            combinations=[
                dict(combo, passed=True)
                for combo in CHANNEL_MATRIX_PAYLOAD["combinations"]
            ],
        )
        line = _channel_matrix_section(make_summary(channel_matrix=payload))
        assert line.endswith("all combinations passed")

    def test_single_channel_campaign_renders_nothing(self):
        assert _channel_matrix_section(make_summary()) is None

    def test_channel_matrix_dict_round_trips_through_to_dict(self):
        summary = make_summary(channel_matrix=CHANNEL_MATRIX_PAYLOAD)
        assert summary.to_dict()["channel_matrix"] == CHANNEL_MATRIX_PAYLOAD
        payload = dict(CHANNEL_MATRIX_PAYLOAD)
        summary = make_summary(channel_matrix=payload)
        payload["num_tx"] = 99
        assert summary.channel_matrix["num_tx"] == 2
