"""Campaign-compiler tests: grouping, batched execution and safety nets.

The compiler's contract is strictly "same results, less work": every test
here pins either the grouping rules (what is allowed to batch) or the
bit-identity of compiled outcomes against the serial/pooled reference
paths.
"""

import json

import numpy as np
import pytest

from repro.bist import (
    BistConfig,
    CampaignCompiler,
    CampaignRunner,
    CampaignScenario,
    CompilerStats,
    ScenarioGrid,
    pa_saturation_sweep,
    skew_sweep,
)
from repro.bist.runner import CampaignExecution, ExecutionBudget
from repro.errors import BudgetExhaustedError, ValidationError
from repro.sampling import PlanStructureCache
from repro.store import CampaignStore
from repro.transmitter import ImpairmentConfig

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


def severity_sweep(num: int = 4):
    """A homogeneous group: one profile, one fault axis, varying severity."""
    return (
        ScenarioGrid()
        .add_profile("paper-qpsk-1ghz")
        .add_converters(skew_sweep(np.linspace(0.0, 3e-12, num)))
        .build()
    )


def build_tasks(scenarios, **runner_kwargs):
    runner = CampaignRunner(bist_config=FAST_CONFIG, **runner_kwargs)
    return runner._build_tasks(scenarios)


class TestGrouping:
    def test_homogeneous_sweep_forms_one_group(self):
        compiler = CampaignCompiler()
        groups, remainder = compiler.group(build_tasks(severity_sweep(4)))
        assert len(groups) == 1
        assert len(groups[0]) == 4
        assert remainder == []

    def test_heterogeneous_profiles_fall_back_entirely(self):
        scenarios = [
            CampaignScenario(profile="paper-qpsk-1ghz", label="a"),
            CampaignScenario(profile="uhf-8psk-400mhz", label="b"),
            CampaignScenario(profile="narrowband-vhf-bpsk", label="c"),
        ]
        compiler = CampaignCompiler()
        groups, remainder = compiler.group(build_tasks(scenarios))
        assert groups == []
        assert [task.label for task in remainder] == ["a", "b", "c"]
        assert compiler.stats.scenarios_pooled == 3

    def test_singleton_buckets_join_the_remainder(self):
        # Two skew scenarios share geometry; the lone 8psk one does not.
        scenarios = list(severity_sweep(2)) + [
            CampaignScenario(profile="uhf-8psk-400mhz", label="odd-one-out")
        ]
        compiler = CampaignCompiler()
        groups, remainder = compiler.group(build_tasks(scenarios))
        assert len(groups) == 1 and len(groups[0]) == 2
        assert [task.label for task in remainder] == ["odd-one-out"]

    def test_mixed_ofdm_and_single_carrier_split_into_groups(self):
        grid = (
            ScenarioGrid()
            .add_profiles("paper-qpsk-1ghz", "ofdm-uhf-qpsk-400mhz")
            .add_converters(skew_sweep([0.0, 2e-12]))
        )
        compiler = CampaignCompiler()
        groups, remainder = compiler.group(build_tasks(grid.build()))
        assert len(groups) == 2
        assert sorted(len(group) for group in groups) == [2, 2]
        assert remainder == []
        # No group mixes the two waveform families.
        for group in groups:
            profiles = {task.scenario.profile for task in group}
            assert len(profiles) == 1

    def test_impairment_axis_does_not_split_a_group(self):
        # Transmitter impairments change sample values, not acquisition
        # geometry, so a PA severity sweep is one group.
        grid = (
            ScenarioGrid()
            .add_profile("paper-qpsk-1ghz")
            .add_impairment("nominal", ImpairmentConfig())
            .add_impairments(pa_saturation_sweep([0.75, 1.5]))
        )
        compiler = CampaignCompiler()
        groups, remainder = compiler.group(build_tasks(grid.build()))
        assert len(groups) == 1 and len(groups[0]) == 3
        assert remainder == []

    def test_per_scenario_seeds_do_not_split_a_group(self):
        tasks = build_tasks(severity_sweep(3), seed_policy="per-scenario")
        seeds = {task.seed for task in tasks}
        assert len(seeds) == 3, "per-scenario policy should decorrelate seeds"
        compiler = CampaignCompiler()
        groups, remainder = compiler.group(tasks)
        assert len(groups) == 1 and remainder == []

    def test_unresolvable_scenario_goes_to_the_remainder(self):
        scenarios = list(severity_sweep(2)) + [
            CampaignScenario(profile="no-such-profile", label="bad")
        ]
        compiler = CampaignCompiler()
        groups, remainder = compiler.group(build_tasks(scenarios))
        assert len(groups) == 1
        assert [task.label for task in remainder] == ["bad"]

    def test_group_rejects_non_tasks(self):
        with pytest.raises(ValidationError):
            CampaignCompiler().group([object()])

    def test_compiler_rejects_bad_configuration(self):
        with pytest.raises(ValidationError):
            CampaignCompiler(structure_cache=object())
        with pytest.raises(ValidationError):
            CampaignCompiler(chunk_scenarios=0)


class TestCompiledExecution:
    def test_compiled_outcomes_bit_identical_to_serial_and_pooled(self):
        # The tentpole safety net: serial == pooled == compiled, exactly.
        scenarios = severity_sweep(4)
        serial = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        pooled = CampaignRunner(bist_config=FAST_CONFIG, max_workers=2).run(scenarios)
        compiled = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios, compile=True)
        assert all(outcome.ok for outcome in serial.outcomes)
        for reference, candidate in ((pooled, compiled), (serial, compiled)):
            for a, b in zip(reference.outcomes, candidate.outcomes):
                assert a.label == b.label
                assert a.report.to_dict() == b.report.to_dict()
        assert all(
            outcome.worker.startswith("compiled-pid-") for outcome in compiled.outcomes
        )
        stats = compiled.compiler_stats
        assert stats.groups_formed == 1
        assert stats.scenarios_batched == 4
        assert stats.scenarios_pooled == 0
        assert stats.structure_cache["hits"] > 0

    def test_compiled_run_with_heterogeneous_remainder(self):
        # Two batchable scenarios plus one lone profile: the compiler takes
        # the group, the remainder flows through the ordinary serial path,
        # and submission order is preserved in the outcomes.
        scenarios = [
            CampaignScenario(profile="uhf-8psk-400mhz", label="lone"),
        ] + list(severity_sweep(2))
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios, compile=True)
        assert [outcome.ok for outcome in execution.outcomes] == [True, True, True]
        assert execution.outcomes[0].label == "lone"
        assert execution.outcomes[0].worker.startswith("pid-")
        assert execution.outcomes[1].worker.startswith("compiled-pid-")
        stats = execution.compiler_stats
        assert stats.scenarios_batched == 2
        assert stats.scenarios_pooled == 1

    def test_chunking_does_not_change_results(self):
        scenarios = severity_sweep(3)
        tasks = build_tasks(scenarios)
        whole = CampaignCompiler().execute_group(tasks)
        chopped = CampaignCompiler(chunk_scenarios=1).execute_group(tasks)
        for a, b in zip(whole, chopped):
            assert a.ok and b.ok
            assert a.report.to_dict() == b.report.to_dict()

    def test_execute_group_isolates_per_scenario_errors(self):
        # An unresolvable scenario inside a group (only reachable by calling
        # execute_group directly) errors alone; its neighbours succeed.
        scenarios = list(severity_sweep(2)) + [
            CampaignScenario(profile="no-such-profile", label="bad")
        ]
        outcomes = CampaignCompiler().execute_group(build_tasks(scenarios))
        assert [outcome.ok for outcome in outcomes] == [True, True, False]
        assert "no-such-profile" in outcomes[-1].error
        assert outcomes[-1].traceback_text

    def test_compiled_run_serves_and_feeds_the_store(self, tmp_path):
        scenarios = severity_sweep(3)
        store = CampaignStore(tmp_path / "store")
        first = CampaignRunner(bist_config=FAST_CONFIG, store=store).run(
            scenarios, compile=True
        )
        assert first.cache_hits == 0
        second = CampaignRunner(bist_config=FAST_CONFIG, store=store).run(
            scenarios, compile=True
        )
        assert second.cache_hits == 3
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.report.to_dict() == b.report.to_dict()

    def test_budget_charged_per_scenario_not_per_group(self):
        scenarios = severity_sweep(4)
        with pytest.raises(BudgetExhaustedError):
            CampaignRunner(bist_config=FAST_CONFIG).run(
                scenarios, budget=ExecutionBudget(3), compile=True
            )
        budget = ExecutionBudget(4)
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(
            scenarios, budget=budget, compile=True
        )
        assert all(outcome.ok for outcome in execution.outcomes)
        assert budget.remaining == 0

    def test_progress_callback_fires_for_compiled_scenarios(self):
        seen = []
        runner = CampaignRunner(
            bist_config=FAST_CONFIG,
            progress_callback=lambda outcome: seen.append(outcome.label),
        )
        scenarios = severity_sweep(3)
        runner.run(scenarios, compile=True)
        assert sorted(seen) == sorted(s.resolved_label() for s in scenarios)


class TestCompilerStats:
    def test_round_trip(self):
        stats = CompilerStats(
            groups_formed=2,
            scenarios_batched=7,
            scenarios_pooled=1,
            structure_cache={"hits": 5, "misses": 2, "evictions": 0},
        )
        payload = json.loads(json.dumps(stats.to_dict()))
        assert CompilerStats.from_dict(payload) == stats
        assert CompilerStats.from_dict({}) == CompilerStats()

    def test_execution_round_trip_preserves_compiler_stats(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(
            severity_sweep(2), compile=True
        )
        assert execution.compiler_stats is not None
        payload = json.loads(json.dumps(execution.to_dict()))
        rebuilt = CampaignExecution.from_dict(payload)
        assert rebuilt.compiler_stats == execution.compiler_stats
        assert rebuilt.to_dict() == execution.to_dict()

    def test_summary_reports_compiler_line(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(
            severity_sweep(2), compile=True
        )
        summary = execution.summary()
        assert summary.compiler == execution.compiler_stats.to_dict()
        text = summary.to_text()
        assert "campaign compiler: 1 group(s), 2 batched, 0 pooled" in text
        payload = summary.to_dict()
        assert payload["compiler"]["scenarios_batched"] == 2

    def test_uncompiled_run_has_no_compiler_stats(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(severity_sweep(2))
        assert execution.compiler_stats is None
        assert execution.summary().compiler is None
        assert "campaign compiler" not in execution.summary().to_text()


class TestSharedStructureCache:
    def test_group_execution_populates_the_cache(self):
        cache = PlanStructureCache()
        compiler = CampaignCompiler(structure_cache=cache)
        outcomes = compiler.execute_group(build_tasks(severity_sweep(3)))
        assert all(outcome.ok for outcome in outcomes)
        stats = cache.stats
        # Cost-function plans and dense grids re-use structures across the
        # group: every scenario after the first should hit.
        assert stats["hits"] > 0
        assert stats["entries"] >= 1
