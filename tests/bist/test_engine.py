"""Tests for repro.bist.engine (the full BIST loop, reduced-size runs)."""

import pytest

from repro.adc import AdcChannel, BpTiadc, DigitallyControlledDelayElement, UniformQuantizer
from repro.bist import BistConfig, TransmitterBist, Verdict, default_converter
from repro.errors import ConfigurationError, ValidationError
from repro.rf import RappAmplifier
from repro.transmitter import HomodyneTransmitter, ImpairmentConfig, TransmitterConfig


def small_config(**overrides):
    """A reduced-size BIST configuration to keep engine tests fast."""
    defaults = dict(
        num_samples_fast=256,
        num_samples_slow=128,
        lms_max_iterations=40,
        num_cost_points=120,
        measure_evm_enabled=False,
    )
    defaults.update(overrides)
    return BistConfig(**defaults)


@pytest.fixture(scope="module")
def healthy_report():
    config = small_config()
    transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=21))
    converter = default_converter(
        config.acquisition_bandwidth_hz,
        dcde_static_error_seconds=5e-12,
        channel1_skew_seconds=2e-12,
        seed=5,
    )
    engine = TransmitterBist(transmitter, converter, config=config)
    return engine.run()


class TestHealthyUnit:
    def test_overall_pass(self, healthy_report):
        assert healthy_report.passed
        assert healthy_report.verdict is Verdict.PASS

    def test_skew_estimated_to_sub_picosecond(self, healthy_report):
        calibration = healthy_report.calibration
        assert calibration.converged
        assert calibration.estimation_error_seconds < 1.0e-12

    def test_estimate_tracks_true_not_programmed_delay(self, healthy_report):
        calibration = healthy_report.calibration
        error_vs_true = abs(calibration.estimated_delay_seconds - calibration.true_delay_seconds)
        error_vs_programmed = abs(
            calibration.estimated_delay_seconds - calibration.programmed_delay_seconds
        )
        assert error_vs_true < error_vs_programmed

    def test_measurements_present(self, healthy_report):
        measurements = healthy_report.measurements
        assert measurements.output_power > 0.0
        assert measurements.acpr_db["worst_db"] < -20.0
        assert 5e6 < measurements.occupied_bandwidth_hz < 20e6

    def test_individual_checks(self, healthy_report):
        assert healthy_report.check("acpr").verdict is Verdict.PASS
        assert healthy_report.check("spectral_mask").verdict is Verdict.PASS
        assert healthy_report.check("evm").verdict is Verdict.SKIPPED

    def test_report_renders(self, healthy_report):
        text = healthy_report.to_text()
        assert "PASS" in text
        as_dict = healthy_report.to_dict()
        assert as_dict["profile"] == "paper-qpsk-1ghz"


class TestFaultDetection:
    def test_heavily_compressed_pa_fails_mask_or_acpr(self):
        """A strongly saturated PA must be caught by the spectral checks."""
        config = small_config()
        faulty = ImpairmentConfig().with_amplifier(
            RappAmplifier(gain_db=0.0, saturation_amplitude=0.75, smoothness=1.2)
        )
        transmitter = HomodyneTransmitter(
            TransmitterConfig.paper_default(impairments=faulty, seed=22)
        )
        converter = default_converter(config.acquisition_bandwidth_hz, seed=6)
        report = TransmitterBist(transmitter, converter, config=config).run()
        spectral_verdicts = [report.check("acpr").verdict, report.check("spectral_mask").verdict]
        assert Verdict.FAIL in spectral_verdicts
        assert not report.passed


class TestConfigurationErrors:
    def test_rate_mismatch_rejected(self):
        config = small_config()
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default())
        converter = default_converter(45e6)  # wrong rate vs config's 90 MHz
        with pytest.raises(ConfigurationError):
            TransmitterBist(transmitter, converter, config=config)

    def test_invalid_transmitter_type(self):
        converter = default_converter(90e6)
        with pytest.raises(ValidationError):
            TransmitterBist("transmitter", converter)

    def test_invalid_converter_type(self):
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default())
        with pytest.raises(ValidationError):
            TransmitterBist(transmitter, "converter")

    def test_required_burst_duration_covers_acquisitions(self):
        config = small_config()
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default())
        converter = default_converter(config.acquisition_bandwidth_hz)
        engine = TransmitterBist(transmitter, converter, config=config)
        duration = engine.required_burst_duration()
        assert duration >= config.num_samples_slow / (config.acquisition_bandwidth_hz / 2.0)

    def test_invalid_bist_config_values(self):
        with pytest.raises(ValidationError):
            BistConfig(num_samples_fast=10)

    def test_odd_num_taps_rejected_at_config_time(self):
        """An odd nw must fail when the config is built, not deep inside Eq. (6)."""
        with pytest.raises(ConfigurationError, match="must be even"):
            BistConfig(num_taps=61)

    def test_even_num_taps_accepted(self):
        assert BistConfig(num_taps=62).num_taps == 62
