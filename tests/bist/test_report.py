"""Tests for repro.bist.report."""

import numpy as np
import pytest

from repro.bist import BistReport, CheckResult, SkewCalibrationReport, Verdict
from repro.bist.measurements import TxMeasurements
from repro.dsp import SpectrumEstimate
from repro.errors import ValidationError


def dummy_measurements():
    frequencies = np.linspace(0.9e9, 1.1e9, 101)
    psd = np.ones_like(frequencies)
    spectrum = SpectrumEstimate(frequencies, psd, frequencies[1] - frequencies[0], False)
    return TxMeasurements(
        output_power=0.5,
        acpr_db={"lower_db": -45.0, "upper_db": -43.0, "worst_db": -43.0},
        occupied_bandwidth_hz=14e6,
        evm_percent=3.2,
        spectrum=spectrum,
    )


def dummy_calibration(converged=True):
    return SkewCalibrationReport(
        estimated_delay_seconds=187.2e-12,
        programmed_delay_seconds=180e-12,
        true_delay_seconds=187.0e-12,
        iterations=12,
        converged=converged,
        final_cost=1e-6,
    )


def make_report(checks):
    return BistReport(
        profile_name="paper-qpsk-1ghz",
        calibration=dummy_calibration(),
        measurements=dummy_measurements(),
        checks=tuple(checks),
    )


class TestVerdict:
    def test_passed_property(self):
        assert Verdict.PASS.passed
        assert Verdict.SKIPPED.passed
        assert not Verdict.FAIL.passed


class TestSkewCalibrationReport:
    def test_estimation_error(self):
        report = dummy_calibration()
        assert report.estimation_error_seconds == pytest.approx(0.2e-12)
        assert report.relative_error == pytest.approx(0.2 / 187.0, rel=1e-3)

    def test_unknown_true_delay(self):
        report = SkewCalibrationReport(
            estimated_delay_seconds=1e-10,
            programmed_delay_seconds=1e-10,
            true_delay_seconds=None,
            iterations=5,
            converged=True,
            final_cost=0.0,
        )
        assert report.estimation_error_seconds is None
        assert report.relative_error is None


class TestCheckResult:
    def test_summary_contains_fields(self):
        check = CheckResult("acpr", Verdict.PASS, measured=-43.0, limit=-35.0, details="dB")
        text = check.summary()
        assert "acpr" in text and "PASS" in text and "-43.000" in text

    def test_summary_handles_missing_values(self):
        check = CheckResult("evm", Verdict.SKIPPED)
        assert "n/a" in check.summary()


class TestBistReport:
    def test_overall_pass(self):
        report = make_report([CheckResult("acpr", Verdict.PASS), CheckResult("evm", Verdict.PASS)])
        assert report.verdict is Verdict.PASS
        assert report.passed

    def test_single_failure_fails_report(self):
        report = make_report([CheckResult("acpr", Verdict.PASS), CheckResult("evm", Verdict.FAIL)])
        assert report.verdict is Verdict.FAIL
        assert not report.passed

    def test_skipped_does_not_fail(self):
        report = make_report([CheckResult("acpr", Verdict.PASS), CheckResult("evm", Verdict.SKIPPED)])
        assert report.passed

    def test_check_lookup(self):
        report = make_report([CheckResult("acpr", Verdict.PASS, measured=-43.0)])
        assert report.check("acpr").measured == pytest.approx(-43.0)
        with pytest.raises(ValidationError):
            report.check("missing")

    def test_empty_checks_rejected(self):
        with pytest.raises(ValidationError):
            make_report([])

    def test_to_text_mentions_everything(self):
        report = make_report([CheckResult("acpr", Verdict.PASS, measured=-43.0, limit=-35.0)])
        text = report.to_text()
        assert "paper-qpsk-1ghz" in text
        assert "187.20 ps" in text
        assert "acpr" in text

    def test_to_dict_round_trip_fields(self):
        report = make_report([CheckResult("acpr", Verdict.FAIL, measured=-30.0, limit=-35.0)])
        as_dict = report.to_dict()
        assert as_dict["verdict"] == "fail"
        assert as_dict["checks"]["acpr"]["measured"] == pytest.approx(-30.0)
        assert as_dict["calibration"]["iterations"] == 12

    def test_from_dict_rebuilds_identical_report(self):
        import json

        report = make_report(
            [
                CheckResult("acpr", Verdict.FAIL, measured=-30.0, limit=-35.0, details="worst"),
                CheckResult("evm", Verdict.SKIPPED),
            ]
        )
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = BistReport.from_dict(payload)
        assert rebuilt.profile_name == report.profile_name
        assert rebuilt.verdict is report.verdict
        assert rebuilt.calibration == report.calibration
        assert rebuilt.checks == report.checks
        assert rebuilt.measurements.acpr_db == report.measurements.acpr_db
        assert np.array_equal(
            rebuilt.measurements.spectrum.psd, report.measurements.spectrum.psd
        )
        # The archive format is stable under a second cycle.
        assert rebuilt.to_dict() == report.to_dict()

    def test_calibration_round_trip_is_exact(self):
        calibration = dummy_calibration()
        rebuilt = SkewCalibrationReport.from_dict(calibration.to_dict())
        assert rebuilt == calibration
