"""Tests for repro.bist.runner: parallel campaign orchestration.

The determinism tests run real (small) BIST executions, serially and on a
process pool, and require bit-identical reports; the grid and error-isolation
tests are cheap plumbing checks.
"""

import os
import pickle

import numpy as np
import pytest

import repro.bist.runner as runner_module

from repro.bist import (
    BistCampaign,
    BistConfig,
    CampaignRunner,
    CampaignScenario,
    CampaignSummary,
    ConverterSpec,
    ScenarioGrid,
    default_converter,
    derive_scenario_seed,
    dc_offset_sweep,
    dcde_error_sweep,
    channel_mismatch_sweep,
    iq_imbalance_sweep,
    pa_saturation_sweep,
    skew_sweep,
)
from repro.errors import CampaignExecutionError, ConfigurationError, ValidationError
from repro.transmitter import ImpairmentConfig

#: Small-but-real engine configuration so the execution tests stay fast.
FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


def small_grid() -> tuple:
    """A 6-scenario grid: 3 transmitter faults x 2 converter skews."""
    return (
        ScenarioGrid()
        .add_profiles("paper-qpsk-1ghz")
        .add_impairment("nominal", ImpairmentConfig())
        .add_impairments(pa_saturation_sweep([0.75]))
        .add_impairments(iq_imbalance_sweep([(2.5, 15.0)]))
        .add_converters(skew_sweep([0.0, 2e-12]))
        .build()
    )


#: Set by test_transient_worker_death_recovered before patching; module-level
#: so the worker function pickles by reference and forked children see it.
_crash_flag_path = ""


def _crash_once_then_execute(task):
    if task.label == "victim" and not os.path.exists(_crash_flag_path):
        with open(_crash_flag_path, "w") as flag:
            flag.write("crashed")
        os._exit(1)
    return runner_module.__dict__["_original_execute_task"](task)


# Keep a stable reference the crasher can reach even while _execute_task is
# monkeypatched.
runner_module._original_execute_task = runner_module._execute_task


def reports_identical(a, b) -> bool:
    """Bit-identical comparison including the measured spectra."""
    if a.to_dict() != b.to_dict():
        return False
    return np.array_equal(
        a.measurements.spectrum.psd, b.measurements.spectrum.psd
    ) and np.array_equal(
        a.measurements.spectrum.frequencies_hz, b.measurements.spectrum.frequencies_hz
    )


class TestConverterSpec:
    def test_matches_default_converter(self):
        spec = ConverterSpec(dcde_static_error_seconds=5e-12, channel1_skew_seconds=2e-12, seed=7)
        built = spec(90e6)
        reference = default_converter(
            90e6, dcde_static_error_seconds=5e-12, channel1_skew_seconds=2e-12, seed=7
        )
        assert built.sample_rate == pytest.approx(reference.sample_rate)
        built.program_delay(180e-12)
        reference.program_delay(180e-12)
        assert built.true_delay == pytest.approx(reference.true_delay)

    def test_channel_mismatch_fields(self):
        spec = ConverterSpec(channel1_gain_error=0.02, channel1_offset=0.01)
        converter = spec.build(90e6)
        assert converter.channel1.mismatch.gain_error == pytest.approx(0.02)
        assert converter.channel1.mismatch.offset == pytest.approx(0.01)

    def test_picklable(self):
        spec = ConverterSpec(channel1_skew_seconds=2e-12)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestScenarioGrid:
    def test_cartesian_expansion_count(self):
        grid = (
            ScenarioGrid()
            .add_profiles("paper-qpsk-1ghz", "uhf-8psk-400mhz")
            .add_impairments(pa_saturation_sweep([0.5, 0.75, 1.0]))
            .add_converters(skew_sweep([0.0, 1e-12]))
        )
        assert len(grid) == 2 * 3 * 2
        scenarios = grid.build()
        assert len(scenarios) == 12
        assert all(isinstance(s, CampaignScenario) for s in scenarios)

    def test_labels_compose_axes(self):
        scenarios = (
            ScenarioGrid()
            .add_profile("paper-qpsk-1ghz", label="paper")
            .add_impairment("nominal", ImpairmentConfig())
            .add_converters(dcde_error_sweep([5e-12]))
            .build()
        )
        assert scenarios[0].label == "paper/nominal/dcde-5ps"

    def test_axes_optional(self):
        scenarios = ScenarioGrid().add_profiles("paper-qpsk-1ghz").build()
        assert len(scenarios) == 1
        assert scenarios[0].label == "paper-qpsk-1ghz"
        assert scenarios[0].converter is None

    def test_labels_unique(self):
        grid = (
            ScenarioGrid()
            .add_profiles("paper-qpsk-1ghz")
            .add_impairment("dup", ImpairmentConfig())
            .add_impairment("dup", ImpairmentConfig())
        )
        with pytest.raises(ConfigurationError, match="duplicate label.*'paper-qpsk-1ghz/dup'"):
            grid.build()

    def test_duplicate_error_lists_every_collision(self):
        grid = (
            ScenarioGrid()
            .add_profiles("paper-qpsk-1ghz", "uhf-8psk-400mhz")
            .add_impairment("dup", ImpairmentConfig())
            .add_impairment("dup", ImpairmentConfig())
        )
        with pytest.raises(ConfigurationError) as excinfo:
            grid.build()
        assert "paper-qpsk-1ghz/dup" in str(excinfo.value)
        assert "uhf-8psk-400mhz/dup" in str(excinfo.value)

    def test_empty_profile_axis_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioGrid().build()

    def test_num_symbols_propagates(self):
        scenarios = ScenarioGrid(num_symbols=256).add_profiles("paper-qpsk-1ghz").build()
        assert scenarios[0].num_symbols == 256

    def test_sweep_helpers_label_values(self):
        assert pa_saturation_sweep([0.75])[0][0] == "pa-sat-0.75"
        assert iq_imbalance_sweep([(2.5, 15.0)])[0][0] == "iq-2.5dB-15deg"
        assert dc_offset_sweep([0.05])[0][0] == "dc-0.05"
        assert skew_sweep([2e-12])[0][0] == "skew-2ps"
        assert dcde_error_sweep([5e-12])[0][0] == "dcde-5ps"
        label, spec = channel_mismatch_sweep([(0.02, 0.01)])[0]
        assert label == "mismatch-g0.02-o0.01"
        assert spec.channel1_gain_error == pytest.approx(0.02)


class TestSeedDerivation:
    def test_deterministic_and_decorrelated(self):
        a = derive_scenario_seed(2014, 0, "x")
        assert a == derive_scenario_seed(2014, 0, "x")
        assert a != derive_scenario_seed(2014, 1, "x")
        assert a != derive_scenario_seed(2014, 0, "y")
        assert a != derive_scenario_seed(2015, 0, "x")

    def test_none_base_seed_stays_none(self):
        assert derive_scenario_seed(None, 3, "x") is None


class TestRunnerValidation:
    def test_bad_workers_rejected(self):
        with pytest.raises(ValidationError):
            CampaignRunner(max_workers=0)

    def test_bad_seed_policy_rejected(self):
        with pytest.raises(ValidationError):
            CampaignRunner(seed_policy="chaotic")

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValidationError):
            CampaignRunner().run([])

    def test_non_scenario_rejected(self):
        with pytest.raises(ValidationError):
            CampaignRunner().run(["not a scenario"])

    def test_unpicklable_factory_rejected_for_parallel(self):
        runner = CampaignRunner(
            bist_config=FAST_CONFIG,
            converter_factory=lambda bandwidth: default_converter(bandwidth),
            max_workers=2,
        )
        with pytest.raises(ConfigurationError):
            runner.run(small_grid())


@pytest.mark.slow
class TestRunnerExecution:
    def test_parallel_matches_serial_bit_identical(self):
        scenarios = small_grid()
        serial = CampaignRunner(bist_config=FAST_CONFIG, max_workers=1).run(scenarios)
        parallel = CampaignRunner(bist_config=FAST_CONFIG, max_workers=2).run(scenarios)
        assert not serial.errors and not parallel.errors
        assert [o.label for o in serial.outcomes] == [o.label for o in parallel.outcomes]
        assert len(serial.reports) == len(scenarios)
        for a, b in zip(serial.reports, parallel.reports):
            assert reports_identical(a, b)

    def test_per_scenario_seed_policy_deterministic(self):
        scenarios = small_grid()[:2]
        kwargs = dict(bist_config=FAST_CONFIG, seed_policy="per-scenario")
        first = CampaignRunner(max_workers=1, **kwargs).run(scenarios)
        second = CampaignRunner(max_workers=2, **kwargs).run(scenarios)
        for a, b in zip(first.reports, second.reports):
            assert reports_identical(a, b)
        # The shared policy uses one seed for everything; per-scenario must not.
        shared = CampaignRunner(max_workers=1, bist_config=FAST_CONFIG).run(scenarios)
        assert not reports_identical(first.reports[0], shared.reports[0])

    def test_execution_to_dict_round_trip(self):
        import json

        from repro.bist import CampaignExecution, ScenarioOutcome

        scenarios = [
            CampaignScenario(profile="paper-qpsk-1ghz", label="good"),
            CampaignScenario(profile="no-such-profile", label="bad"),
        ]
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        payload = json.loads(json.dumps(execution.to_dict()))
        rebuilt = CampaignExecution.from_dict(payload)
        # The archive preserves successes and captured errors alike, exactly.
        assert rebuilt.to_dict() == execution.to_dict()
        assert [outcome.label for outcome in rebuilt.outcomes] == ["good", "bad"]
        assert rebuilt.outcomes[0].ok and not rebuilt.outcomes[1].ok
        assert rebuilt.errors == execution.errors
        assert np.array_equal(
            rebuilt.outcomes[0].report.measurements.spectrum.psd,
            execution.outcomes[0].report.measurements.spectrum.psd,
        )
        assert rebuilt.summary().to_dict() == execution.summary().to_dict()
        # A single outcome round-trips through its own pair as well.
        outcome = execution.outcomes[0]
        assert ScenarioOutcome.from_dict(outcome.to_dict()).to_dict() == outcome.to_dict()

    def test_error_isolation(self):
        scenarios = [
            CampaignScenario(profile="paper-qpsk-1ghz", label="good"),
            CampaignScenario(profile="no-such-profile", label="bad"),
        ]
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        assert len(execution.outcomes) == 2
        good, bad = execution.outcomes
        assert good.ok and good.report.profile_name == "paper-qpsk-1ghz"
        assert not bad.ok and "no-such-profile" in bad.error
        assert "ValidationError" in bad.error
        assert bad.traceback_text
        assert execution.errors == [("bad", bad.error)]
        with pytest.raises(CampaignExecutionError):
            execution.to_result()

    def test_error_isolation_parallel(self):
        scenarios = [
            CampaignScenario(profile="no-such-profile", label="bad"),
            CampaignScenario(profile="paper-qpsk-1ghz", label="good"),
        ]
        execution = CampaignRunner(bist_config=FAST_CONFIG, max_workers=2).run(scenarios)
        assert [o.label for o in execution.outcomes] == ["bad", "good"]
        assert not execution.outcomes[0].ok
        assert execution.outcomes[1].ok

    def test_transient_worker_death_recovered(self, monkeypatch, tmp_path):
        # A worker that dies mid-campaign fails every outstanding future with
        # BrokenProcessPool; the runner must give those scenarios a fresh pool
        # round instead of recording spurious errors.  The crash is transient
        # (first execution only), so everything must eventually succeed.
        global _crash_flag_path
        _crash_flag_path = str(tmp_path / "crashed")
        monkeypatch.setattr(runner_module, "_execute_task", _crash_once_then_execute)
        scenarios = [
            CampaignScenario(profile="paper-qpsk-1ghz", label=label)
            for label in ("a", "victim", "b")
        ]
        # dedup=False: the three scenarios are content-identical, and the
        # fingerprint fan-out would otherwise execute only one of them —
        # this test needs "victim" to actually reach a worker.
        execution = CampaignRunner(bist_config=FAST_CONFIG, max_workers=2, dedup=False).run(
            scenarios
        )
        assert os.path.exists(_crash_flag_path), "the crash never happened"
        assert execution.errors == []
        assert [outcome.label for outcome in execution.outcomes] == ["a", "victim", "b"]
        assert all(outcome.ok for outcome in execution.outcomes)

    def test_progress_callback_sees_every_scenario(self):
        seen = []
        runner = CampaignRunner(
            bist_config=FAST_CONFIG, progress_callback=lambda outcome: seen.append(outcome.label)
        )
        scenarios = small_grid()[:2]
        runner.run(scenarios)
        assert sorted(seen) == sorted(s.resolved_label() for s in scenarios)

    def test_scenario_converter_overrides_factory(self):
        # The per-scenario spec injects a DCDE error the campaign factory lacks;
        # the reconstruction must see the different physical delay.
        scenarios = [
            CampaignScenario(profile="paper-qpsk-1ghz", label="nominal"),
            CampaignScenario(
                profile="paper-qpsk-1ghz",
                label="dcde-fault",
                converter=ConverterSpec(dcde_static_error_seconds=8e-12),
            ),
        ]
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        nominal, fault = execution.reports
        delta = (
            fault.calibration.true_delay_seconds - nominal.calibration.true_delay_seconds
        )
        assert delta == pytest.approx(8e-12)


class TestBistCampaignFacade:
    def test_run_delegates_and_keeps_result_shape(self):
        scenarios = small_grid()[:2]
        result = BistCampaign(scenarios, bist_config=FAST_CONFIG).run()
        assert len(result.entries) == 2
        assert result.reports[0].profile_name == "paper-qpsk-1ghz"
        # Identical to the runner's serial path.
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        for (_, a), b in zip(result.entries, execution.reports):
            assert reports_identical(a, b)

    def test_run_raises_on_scenario_error(self):
        campaign = BistCampaign(
            [CampaignScenario(profile="no-such-profile")], bist_config=FAST_CONFIG
        )
        with pytest.raises(CampaignExecutionError):
            campaign.run()

    def test_lambda_factory_still_works_serially(self):
        result = BistCampaign(
            small_grid()[:1],
            bist_config=FAST_CONFIG,
            converter_factory=lambda bandwidth: default_converter(bandwidth, seed=5),
        ).run()
        assert len(result.entries) == 1


class TestCampaignSummary:
    def test_aggregates_pass_rates_and_margins(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(small_grid())
        summary = execution.summary()
        assert summary.num_scenarios == 6
        assert summary.num_passed + summary.num_failed == 6
        assert summary.num_errors == 0
        profile = summary.profile("paper-qpsk-1ghz")
        assert profile.num_scenarios == 6
        assert 0.0 <= profile.pass_rate <= 1.0
        assert profile.worst_acpr_margin_db is not None
        assert profile.max_skew_error_ps is not None
        assert summary.max_skew_error_ps >= summary.mean_skew_error_ps > 0.0
        text = summary.to_text()
        assert "paper-qpsk-1ghz" in text
        assert "pass rate" in text
        payload = summary.to_dict()
        assert payload["profiles"]["paper-qpsk-1ghz"]["num_scenarios"] == 6

    def test_counts_errors(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(
            [
                CampaignScenario(profile="paper-qpsk-1ghz", label="good"),
                CampaignScenario(profile="no-such-profile", label="bad"),
            ]
        )
        summary = execution.summary()
        assert summary.num_scenarios == 2
        assert summary.num_errors == 1
        assert summary.errors[0][0] == "bad"
        assert "ERROR bad" in summary.to_text()

    def test_result_summary_matches_execution_summary(self):
        scenarios = small_grid()[:2]
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        assert execution.summary().to_dict() == execution.to_result().summary().to_dict()

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CampaignSummary.from_entries([], errors=())
