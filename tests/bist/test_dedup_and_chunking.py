"""Fingerprint dedup and chunked pool submission in CampaignRunner."""

import numpy as np
import pytest

from repro.bist import (
    BistConfig,
    CampaignRunner,
    CampaignScenario,
    ScenarioGrid,
    skew_sweep,
)
from repro.errors import ValidationError
from repro.store import CampaignStore

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


def identical_scenarios(count, profile="paper-qpsk-1ghz"):
    return [CampaignScenario(profile=profile, label=f"s{i}") for i in range(count)]


class TestFingerprintDedup:
    def test_identical_scenarios_execute_once(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(identical_scenarios(4))
        workers = [outcome.worker for outcome in execution.outcomes]
        assert workers.count("dedup") == 3
        assert execution.dedup_hits == 3
        primary = execution.outcomes[0]
        for outcome in execution.outcomes[1:]:
            assert outcome.deduplicated
            assert outcome.duration_seconds == 0.0
            assert outcome.report.to_dict() == primary.report.to_dict()

    def test_dedup_preserves_labels_and_order(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(identical_scenarios(3))
        assert [outcome.label for outcome in execution.outcomes] == ["s0", "s1", "s2"]

    def test_distinct_scenarios_are_not_deduplicated(self):
        scenarios = (
            ScenarioGrid()
            .add_profile("paper-qpsk-1ghz")
            .add_converters(skew_sweep([0.0, 2e-12]))
            .build()
        )
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        assert execution.dedup_hits == 0
        assert not any(outcome.deduplicated for outcome in execution.outcomes)

    def test_per_scenario_seed_policy_defeats_dedup(self):
        # Decorrelated seeds change the fingerprint, so nominally identical
        # scenarios legitimately execute separately.
        execution = CampaignRunner(
            bist_config=FAST_CONFIG, seed_policy="per-scenario"
        ).run(identical_scenarios(3))
        assert execution.dedup_hits == 0

    def test_dedup_false_executes_every_scenario(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG, dedup=False).run(
            identical_scenarios(3)
        )
        assert execution.dedup_hits == 0
        assert all(outcome.worker.startswith("pid-") for outcome in execution.outcomes)

    def test_dedup_results_identical_to_undeduplicated(self):
        scenarios = identical_scenarios(3)
        deduped = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        executed = CampaignRunner(bist_config=FAST_CONFIG, dedup=False).run(scenarios)
        for a, b in zip(deduped.outcomes, executed.outcomes):
            assert a.report.to_dict() == b.report.to_dict()

    def test_dedup_with_store_archives_the_primary_once(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        runner = CampaignRunner(bist_config=FAST_CONFIG, store=store)
        first = runner.run(identical_scenarios(3))
        assert first.dedup_hits == 2
        assert len(store) == 1
        # A rerun serves everything from the one archived fingerprint.
        second = CampaignRunner(bist_config=FAST_CONFIG, store=store).run(
            identical_scenarios(3)
        )
        assert second.cache_hits == 3
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.report.to_dict() == b.report.to_dict()

    def test_dedup_counts_surface_in_the_summary(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(identical_scenarios(3))
        summary = execution.summary()
        assert summary.deduplicated == 2
        assert summary.cache_misses == 1
        assert "2 deduplicated" in summary.to_text()
        assert summary.to_dict()["deduplicated"] == 2

    def test_unfingerprintable_scenarios_bypass_dedup(self):
        # An unresolvable profile cannot be fingerprinted, so each copy runs
        # (and errors) on its own — dedup never guesses about equivalence.
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(
            identical_scenarios(2, profile="no-such-profile")
        )
        assert not execution.outcomes[0].ok and not execution.outcomes[1].ok
        assert not any(outcome.deduplicated for outcome in execution.outcomes)
        assert execution.dedup_hits == 0


class TestChunkedSubmission:
    def test_chunk_size_validation(self):
        with pytest.raises(ValidationError):
            CampaignRunner(bist_config=FAST_CONFIG, chunk_size=0)
        with pytest.raises(ValidationError):
            CampaignRunner(bist_config=FAST_CONFIG, chunk_size=True)

    def test_effective_chunk_size_scales_with_workers(self):
        runner = CampaignRunner(bist_config=FAST_CONFIG, max_workers=2)
        # ceil(num_tasks / (max_workers * 4)) keeps >= 4 chunks per worker
        # for load balance while amortising submission overhead.
        assert runner._effective_chunk_size(4) == 1
        assert runner._effective_chunk_size(16) == 2
        assert runner._effective_chunk_size(33) == 5
        explicit = CampaignRunner(bist_config=FAST_CONFIG, max_workers=2, chunk_size=7)
        assert explicit._effective_chunk_size(100) == 7

    def test_chunked_pool_matches_serial_bit_for_bit(self):
        scenarios = (
            ScenarioGrid()
            .add_profile("paper-qpsk-1ghz")
            .add_converters(skew_sweep(np.linspace(0.0, 3e-12, 4)))
            .build()
        )
        serial = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        chunked = CampaignRunner(
            bist_config=FAST_CONFIG, max_workers=2, chunk_size=2
        ).run(scenarios)
        assert all(outcome.ok for outcome in chunked.outcomes)
        for a, b in zip(serial.outcomes, chunked.outcomes):
            assert a.label == b.label
            assert a.report.to_dict() == b.report.to_dict()

    def test_chunk_error_isolated_to_its_scenarios(self):
        # An unresolvable scenario inside a chunk errors alone; the rest of
        # the chunk (and the other chunk) succeed.
        scenarios = [
            CampaignScenario(profile="paper-qpsk-1ghz", label="ok-1"),
            CampaignScenario(profile="no-such-profile", label="bad"),
            CampaignScenario(profile="uhf-8psk-400mhz", label="ok-2"),
        ]
        execution = CampaignRunner(
            bist_config=FAST_CONFIG, max_workers=2, chunk_size=2, dedup=False
        ).run(scenarios)
        by_label = {outcome.label: outcome for outcome in execution.outcomes}
        assert by_label["ok-1"].ok and by_label["ok-2"].ok
        assert not by_label["bad"].ok and "no-such-profile" in by_label["bad"].error
