"""Tests for repro.bist.masks."""

import numpy as np
import pytest

from repro.bist import SpectralMask
from repro.dsp import SpectrumEstimate
from repro.errors import MaskError, ValidationError
from repro.signals import get_profile


def synthetic_spectrum(centre_hz=1e9, span_hz=100e6, num=2001, skirt_db_per_hz=None):
    """A synthetic PSD: flat main lobe +/- 7.5 MHz, then a falling skirt."""
    frequencies = np.linspace(centre_hz - span_hz / 2, centre_hz + span_hz / 2, num)
    offsets = np.abs(frequencies - centre_hz)
    level_db = np.where(offsets <= 7.5e6, 0.0, -(offsets - 7.5e6) * 1.5e-6)
    psd = 10.0 ** (level_db / 10.0)
    return SpectrumEstimate(
        frequencies_hz=frequencies,
        psd=psd,
        resolution_hz=frequencies[1] - frequencies[0],
        two_sided=False,
    )


def simple_mask():
    return SpectralMask(
        name="test-mask",
        offsets_hz=np.array([0.0, 7.5e6, 10e6, 20e6, 40e6]),
        limits_db=np.array([0.0, 0.0, -10.0, -25.0, -45.0]),
    )


class TestMaskDefinition:
    def test_limit_interpolation(self):
        mask = simple_mask()
        assert mask.limit_at(0.0) == pytest.approx(0.0)
        assert mask.limit_at(15e6) == pytest.approx(-17.5)
        assert mask.limit_at(-15e6) == pytest.approx(-17.5)  # symmetric

    def test_limit_beyond_last_breakpoint_flat(self):
        assert simple_mask().limit_at(80e6) == pytest.approx(-45.0)

    def test_span(self):
        assert simple_mask().span_hz == pytest.approx(40e6)

    def test_from_profile(self):
        mask = SpectralMask.from_profile(get_profile("paper-qpsk-1ghz"))
        assert mask.offsets_hz[0] == pytest.approx(0.0)
        assert mask.limits_db[0] == pytest.approx(0.0)

    def test_unsorted_offsets_rejected(self):
        with pytest.raises(MaskError):
            SpectralMask("bad", np.array([0.0, 2e6, 1e6]), np.array([0.0, -10.0, -20.0]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MaskError):
            SpectralMask("bad", np.array([0.0, 1e6, 2e6]), np.array([0.0, -10.0]))

    def test_negative_offset_rejected(self):
        with pytest.raises(MaskError):
            SpectralMask("bad", np.array([-1e6, 1e6]), np.array([0.0, -10.0]))

    def test_profile_type_check(self):
        with pytest.raises(ValidationError):
            SpectralMask.from_profile("profile")


class TestMaskChecking:
    def test_compliant_spectrum_passes(self):
        # Skirt falls at 1.5 dB/MHz; mask allows -10 dB at 10 MHz (skirt is at
        # -3.75 dB there)... choose a looser mask to pass.
        mask = SpectralMask(
            name="loose",
            offsets_hz=np.array([0.0, 7.5e6, 10e6, 40e6]),
            limits_db=np.array([0.0, 0.0, -1.0, -40.0]),
        )
        result = mask.check(synthetic_spectrum(), channel_centre_hz=1e9)
        assert result.passed
        assert result.worst_margin_db >= 0.0
        assert result.violations == ()

    def test_violating_spectrum_fails(self):
        mask = SpectralMask(
            name="tight",
            offsets_hz=np.array([0.0, 7.5e6, 8e6, 40e6]),
            limits_db=np.array([0.0, 0.0, -30.0, -80.0]),
        )
        result = mask.check(synthetic_spectrum(), channel_centre_hz=1e9)
        assert not result.passed
        assert result.worst_margin_db < 0.0
        assert len(result.violations) > 0
        worst = min(violation.margin_db for violation in result.violations)
        assert worst == pytest.approx(result.worst_margin_db)

    def test_violation_details(self):
        mask = SpectralMask(
            name="tight",
            offsets_hz=np.array([0.0, 7.5e6, 8e6, 40e6]),
            limits_db=np.array([0.0, 0.0, -30.0, -80.0]),
        )
        result = mask.check(synthetic_spectrum(), channel_centre_hz=1e9)
        violation = result.violations[0]
        assert violation.measured_db > violation.limit_db
        assert violation.margin_db < 0.0

    def test_in_band_region_exempt(self):
        # A mask whose first negative limit starts at 10 MHz must not flag the
        # flat in-band region even though it sits at 0 dB.
        mask = simple_mask()
        result = mask.check(synthetic_spectrum(), channel_centre_hz=1e9)
        for violation in result.violations:
            assert abs(violation.frequency_offset_hz) >= 10e6 - 1e5

    def test_spectrum_not_covering_mask_rejected(self):
        narrow = synthetic_spectrum(span_hz=10e6)
        mask = SpectralMask(
            name="wide",
            offsets_hz=np.array([0.0, 20e6, 40e6]),
            limits_db=np.array([0.0, -20.0, -40.0]),
        )
        with pytest.raises(MaskError):
            mask.check(narrow, channel_centre_hz=1e9, exclude_in_band_hz=20e6)


class TestMaskEdgeCases:
    def test_zero_width_segment_rejected(self):
        # Repeated breakpoint offsets would define a zero-width segment with
        # two limits at the same frequency; the mask must refuse them.
        with pytest.raises(MaskError):
            SpectralMask(
                "zero-width",
                np.array([0.0, 10e6, 10e6, 20e6]),
                np.array([0.0, 0.0, -20.0, -30.0]),
            )

    def test_overlapping_segments_rejected(self):
        # A breakpoint list that doubles back on itself describes overlapping
        # segments (two different limits over 5..10 MHz).
        with pytest.raises(MaskError):
            SpectralMask(
                "overlap",
                np.array([0.0, 10e6, 5e6, 20e6]),
                np.array([0.0, -10.0, -5.0, -30.0]),
            )

    def test_near_vertical_step_interpolates_inside_step(self):
        # A brick-wall edge is modelled by an epsilon-wide segment; limits on
        # either side of the step must be the breakpoint values.
        mask = SpectralMask(
            "step",
            np.array([0.0, 10e6, 10e6 + 1.0, 20e6]),
            np.array([0.0, 0.0, -30.0, -30.0]),
        )
        assert mask.limit_at(10e6) == pytest.approx(0.0)
        assert mask.limit_at(10e6 + 1.0) == pytest.approx(-30.0)
        assert mask.limit_at(15e6) == pytest.approx(-30.0)

    def test_spectrum_entirely_inside_exempt_band_rejected(self):
        # The grid spans the mask frequencies but every bin sits inside the
        # in-band exemption: nothing is actually checkable.
        narrow = synthetic_spectrum(span_hz=12e6)  # bins within +/- 6 MHz
        mask = simple_mask()  # exemption reaches the first negative limit at 10 MHz
        with pytest.raises(MaskError):
            mask.check(narrow, channel_centre_hz=1e9)

    def test_spectrum_partially_spanning_mask_checks_covered_bins_only(self):
        # Grid reaches 15 MHz offsets, mask extends to 40 MHz: the overlap
        # (10..15 MHz) is checked and bins beyond the grid are simply absent.
        partial = synthetic_spectrum(span_hz=30e6)
        result = simple_mask().check(partial, channel_centre_hz=1e9)
        assert abs(result.worst_offset_hz) <= 15e6 + 1e3
        for violation in result.violations:
            assert abs(violation.frequency_offset_hz) <= 15e6 + 1e3

    def test_grid_beyond_mask_span_is_ignored(self):
        # Bins past the last breakpoint are outside the mask's jurisdiction
        # even if they would violate the final limit.
        wide = synthetic_spectrum(span_hz=200e6)
        mask = SpectralMask(
            "short-span",
            np.array([0.0, 10e6, 20e6]),
            np.array([0.0, -5.0, -10.0]),
        )
        result = mask.check(wide, channel_centre_hz=1e9)
        assert abs(result.worst_offset_hz) <= 20e6 + 1e3
        for violation in result.violations:
            assert abs(violation.frequency_offset_hz) <= 20e6 + 1e3

    def test_result_round_trip(self):
        import json

        from repro.bist import MaskCheckResult

        result = simple_mask().check(synthetic_spectrum(), channel_centre_hz=1e9)
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = MaskCheckResult.from_dict(payload)
        assert rebuilt == result
