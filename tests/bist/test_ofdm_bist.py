"""End-to-end BIST of the OFDM waveform family.

Covers the acceptance path of the multicarrier subsystem: a full
acquire -> skew-estimate -> measure -> evaluate run producing per-subcarrier
EVM, bit-identical serial/parallel campaign execution over an OFDM x fault
grid, store round-tripping of OFDM outcomes, and fault detectability under
OFDM with the existing dictionary machinery.
"""

import json

import numpy as np
import pytest

from repro.bist import (
    BistConfig,
    CampaignRunner,
    CampaignScenario,
    ScenarioGrid,
    execute_scenario,
    scenario_bist_config,
    scenario_num_samples_fast,
)
from repro.bist.report import BistReport, Verdict
from repro.bist.runner import CampaignExecution
from repro.faults import FaultCampaign, FilterDriftFault, IqImbalanceFault
from repro.signals import get_profile, list_profiles
from repro.transmitter import ImpairmentConfig

#: Reduced-but-complete engine settings (EVM measured, all checks active).
FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=True,
)

OFDM_PROFILES = [name for name in list_profiles() if get_profile(name).family == "ofdm"]


def run_nominal(profile_name: str) -> BistReport:
    return execute_scenario(CampaignScenario(profile=profile_name), FAST_CONFIG)


class TestOfdmEndToEnd:
    def test_ofdm_profiles_exist(self):
        assert len(OFDM_PROFILES) >= 2

    @pytest.mark.parametrize("profile_name", OFDM_PROFILES)
    def test_nominal_ofdm_bist_passes_with_per_subcarrier_evm(self, profile_name):
        profile = get_profile(profile_name)
        report = run_nominal(profile_name)
        assert report.passed, report.to_text()
        measurements = report.measurements
        assert measurements.evm_percent is not None
        per_subcarrier = measurements.per_subcarrier_evm_percent
        assert per_subcarrier is not None
        assert len(per_subcarrier) == profile.ofdm.num_subcarriers
        assert len(measurements.subcarrier_indices) == profile.ofdm.num_subcarriers
        assert all(evm > 0.0 for evm in per_subcarrier)
        # Aggregate EVM lies within the per-subcarrier envelope.
        assert min(per_subcarrier) <= measurements.evm_percent <= max(per_subcarrier)
        assert measurements.spectral_flatness_db is not None
        assert report.check("spectral_flatness").verdict is Verdict.PASS
        assert report.check("evm").verdict is Verdict.PASS
        assert report.check("spectral_mask").verdict is Verdict.PASS

    def test_single_carrier_reports_carry_no_subcarrier_fields(self):
        report = execute_scenario(
            CampaignScenario(profile="paper-qpsk-1ghz"), FAST_CONFIG
        )
        assert report.measurements.per_subcarrier_evm_percent is None
        assert report.measurements.subcarrier_indices is None
        assert report.measurements.spectral_flatness_db is None

    def test_ofdm_report_round_trips_through_json(self):
        report = run_nominal(OFDM_PROFILES[0])
        data = json.loads(json.dumps(report.to_dict()))
        rebuilt = BistReport.from_dict(data)
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.measurements.per_subcarrier_evm_percent == pytest.approx(
            report.measurements.per_subcarrier_evm_percent
        )

    def test_acquisition_window_is_sized_in_whole_ofdm_symbols(self):
        profile = get_profile(OFDM_PROFILES[0])
        config = scenario_bist_config(CampaignScenario(profile=profile), FAST_CONFIG)
        assert config.num_samples_fast > FAST_CONFIG.num_samples_fast
        assert config.num_samples_fast == scenario_num_samples_fast(
            profile, config.acquisition_bandwidth_hz, FAST_CONFIG
        )
        # Single-carrier profiles keep the configured window.
        sc_config = scenario_bist_config(
            CampaignScenario(profile="paper-qpsk-1ghz"), FAST_CONFIG
        )
        assert sc_config.num_samples_fast == FAST_CONFIG.num_samples_fast


class TestOfdmFaultDetection:
    def test_iq_imbalance_under_ofdm_raises_per_subcarrier_evm(self):
        nominal = run_nominal("ofdm-uhf-qpsk-400mhz")
        fault = IqImbalanceFault(severity=1.0)
        faulty = execute_scenario(
            fault.apply_scenario(
                CampaignScenario(profile="ofdm-uhf-qpsk-400mhz"),
                label="ofdm-uhf-qpsk-400mhz/iq",
            ),
            FAST_CONFIG,
        )
        assert not faulty.passed
        assert faulty.measurements.evm_percent > 5.0 * nominal.measurements.evm_percent
        assert max(faulty.measurements.per_subcarrier_evm_percent) > max(
            nominal.measurements.per_subcarrier_evm_percent
        )

    def test_filter_drift_under_ofdm_shows_up_as_flatness(self):
        fault = FilterDriftFault(severity=1.0)
        faulty = execute_scenario(
            fault.apply_scenario(
                CampaignScenario(profile="ofdm-uhf-qpsk-400mhz"),
                label="ofdm-uhf-qpsk-400mhz/filter",
            ),
            FAST_CONFIG,
        )
        profile = get_profile("ofdm-uhf-qpsk-400mhz")
        assert faulty.measurements.spectral_flatness_db > profile.flatness_limit_db
        assert faulty.check("spectral_flatness").verdict is Verdict.FAIL
        # The edge subcarriers take the brunt of a narrowed output filter.
        per_subcarrier = np.asarray(faulty.measurements.per_subcarrier_evm_percent)
        half = len(per_subcarrier) // 2
        innermost = per_subcarrier[half - 2 : half + 2]
        edges = np.array([per_subcarrier[0], per_subcarrier[-1]])
        assert np.min(edges) > 2.0 * np.max(innermost)

    def test_fault_dictionary_detects_iq_imbalance_under_ofdm(self):
        campaign = FaultCampaign(
            profiles=["ofdm-uhf-qpsk-400mhz"],
            faults=[IqImbalanceFault(severity=1.0)],
            bist_config=FAST_CONFIG,
            num_repeats=2,
            num_reference=2,
        )
        dictionary = campaign.run().dictionary()
        assert (
            dictionary.detection_probability("ofdm-uhf-qpsk-400mhz/iq-imbalance-s1") == 1.0
        )
        assert dictionary.coverage().coverage == 1.0
        assert dictionary.false_alarm_rate() == 0.0


class TestOfdmCampaignDeterminism:
    def _grid_execution(self, max_workers: int) -> CampaignExecution:
        grid = (
            ScenarioGrid()
            .add_profiles(*OFDM_PROFILES)
            .add_impairment("nominal", ImpairmentConfig())
            .add_impairment(
                "iq-imbalance",
                IqImbalanceFault(severity=1.0).apply_transmitter(ImpairmentConfig()),
            )
        )
        runner = CampaignRunner(
            bist_config=FAST_CONFIG,
            max_workers=max_workers,
            seed_policy="per-scenario",
        )
        return runner.run(grid.build())

    @pytest.mark.slow
    def test_serial_equals_parallel_bit_identical_for_ofdm_fault_grid(self):
        serial = self._grid_execution(max_workers=1)
        parallel = self._grid_execution(max_workers=2)
        assert [outcome.label for outcome in serial.outcomes] == [
            outcome.label for outcome in parallel.outcomes
        ]
        assert not serial.errors, serial.errors
        # Bit-identical reports, PSD arrays and per-subcarrier EVM included
        # (wall clocks and worker pids legitimately differ).  The boolean
        # comparison keeps pytest from diffing megabytes of JSON on failure.
        for serial_outcome, parallel_outcome in zip(serial.outcomes, parallel.outcomes):
            identical = json.dumps(
                serial_outcome.report.to_dict(), sort_keys=True
            ) == json.dumps(parallel_outcome.report.to_dict(), sort_keys=True)
            assert identical, f"report drift in {serial_outcome.label!r}"

    def test_ofdm_outcomes_round_trip_through_campaign_store(self, tmp_path):
        from repro.store import CampaignStore

        store = CampaignStore(tmp_path / "store")
        scenarios = (CampaignScenario(profile="ofdm-uhf-qpsk-400mhz"),)
        runner = CampaignRunner(bist_config=FAST_CONFIG, store=store)
        first = runner.run(scenarios)
        assert first.cache_hits == 0 and first.cache_misses == 1
        resumed = CampaignRunner(bist_config=FAST_CONFIG, store=store).run(scenarios)
        assert resumed.cache_hits == 1 and resumed.cache_misses == 0
        assert resumed.outcomes[0].worker == "store"
        assert (
            resumed.outcomes[0].report.to_dict() == first.outcomes[0].report.to_dict()
        )
