"""Tests for repro.bist.campaign (scenario plumbing; heavy runs live in integration)."""

import pytest

from repro.bist import BistCampaign, CampaignScenario, default_converter
from repro.errors import ValidationError
from repro.rf import RappAmplifier
from repro.signals import get_profile
from repro.transmitter import ImpairmentConfig


class TestDefaultConverter:
    def test_paper_configuration(self):
        converter = default_converter(90e6)
        assert converter.sample_rate == pytest.approx(90e6)
        assert converter.channel0.quantizer.resolution_bits == 10
        assert converter.skew_jitter_rms_seconds == pytest.approx(3e-12)

    def test_injected_timing_errors(self):
        converter = default_converter(
            90e6, dcde_static_error_seconds=6e-12, channel1_skew_seconds=2e-12
        )
        converter.program_delay(180e-12)
        assert converter.true_delay == pytest.approx(188e-12)

    def test_resolution_override(self):
        converter = default_converter(90e6, resolution_bits=12)
        assert converter.channel1.quantizer.resolution_bits == 12


class TestConverterSpecBandwidth:
    def test_bandwidth_folds_into_channel1_mismatch(self):
        from repro.bist import ConverterSpec

        spec = ConverterSpec(channel1_bandwidth_hz=1.0e9, bandwidth_reference_hz=1.0e9)
        converter = spec.build(90e6)
        mismatch = converter.channel1.mismatch
        assert mismatch.gain == pytest.approx(1.0 / 2.0**0.5)
        assert mismatch.skew_seconds == pytest.approx(125e-12)
        # Channel 0 keeps its nominal response.
        assert converter.channel0.mismatch.is_ideal

    def test_bandwidth_without_reference_rejected(self):
        from repro.bist import ConverterSpec
        from repro.errors import ConfigurationError

        spec = ConverterSpec(channel1_bandwidth_hz=1.0e9)
        with pytest.raises(ConfigurationError):
            spec.build(90e6)

    def test_no_bandwidth_keeps_legacy_build(self):
        from repro.bist import ConverterSpec

        nominal = ConverterSpec().build(90e6)
        assert nominal.channel1.mismatch.is_ideal


class TestCampaignScenario:
    def test_profile_resolution_by_name(self):
        scenario = CampaignScenario(profile="paper-qpsk-1ghz")
        assert scenario.resolved_profile().carrier_frequency_hz == pytest.approx(1e9)
        assert scenario.resolved_label() == "paper-qpsk-1ghz"

    def test_profile_object_passthrough(self):
        profile = get_profile("uhf-8psk-400mhz")
        scenario = CampaignScenario(profile=profile, label="uhf-nominal")
        assert scenario.resolved_profile() is profile
        assert scenario.resolved_label() == "uhf-nominal"

    def test_impairments_default_ideal(self):
        scenario = CampaignScenario(profile="paper-qpsk-1ghz")
        assert scenario.impairments.iq_imbalance.is_ideal

    def test_custom_impairments(self):
        impairments = ImpairmentConfig().with_amplifier(RappAmplifier(saturation_amplitude=0.6))
        scenario = CampaignScenario(profile="paper-qpsk-1ghz", impairments=impairments)
        assert isinstance(scenario.impairments.amplifier, RappAmplifier)


class TestCampaignConstruction:
    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValidationError):
            BistCampaign([])

    def test_non_scenario_rejected(self):
        with pytest.raises(ValidationError):
            BistCampaign(["not a scenario"])

    def test_scenario_bandwidth_scales_for_narrowband(self):
        campaign = BistCampaign([CampaignScenario(profile="narrowband-vhf-bpsk")])
        profile = get_profile("narrowband-vhf-bpsk")
        bandwidth = campaign._scenario_bandwidth(profile)
        assert bandwidth < 90e6
        assert bandwidth >= 2.5 * profile.occupied_bandwidth_hz

    def test_scenario_bandwidth_keeps_nominal_for_wideband(self):
        campaign = BistCampaign([CampaignScenario(profile="paper-qpsk-1ghz")])
        profile = get_profile("paper-qpsk-1ghz")
        assert campaign._scenario_bandwidth(profile) == pytest.approx(60e6, rel=0.01)
