"""Tests for repro.rf.amplifier."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.rf import IdealAmplifier, PolynomialAmplifier, RappAmplifier, SalehAmplifier
from repro.signals import ComplexEnvelope


def make_envelope(amplitude=0.1, num=512, rate=100e6):
    rng = np.random.default_rng(0)
    phases = rng.uniform(0, 2 * np.pi, num)
    return ComplexEnvelope(amplitude * np.exp(1j * phases), rate)


class TestIdealAmplifier:
    def test_gain_applied(self):
        amplifier = IdealAmplifier(gain_db=20.0)
        envelope = make_envelope(0.1)
        amplified = amplifier.apply(envelope)
        assert amplified.rms() == pytest.approx(10.0 * envelope.rms())

    def test_no_distortion(self):
        amplifier = IdealAmplifier(gain_db=6.0)
        magnitudes = np.linspace(0.01, 10.0, 50)
        gains = np.abs(amplifier.gain(magnitudes))
        np.testing.assert_allclose(gains, gains[0])

    def test_no_phase_shift(self):
        amplifier = IdealAmplifier(gain_db=10.0)
        np.testing.assert_allclose(amplifier.phase_shift(np.linspace(0.1, 2.0, 10)), 0.0)


class TestRappAmplifier:
    def test_small_signal_gain(self):
        amplifier = RappAmplifier(gain_db=20.0, saturation_amplitude=1.0, smoothness=2.0)
        tiny = np.array([1e-4])
        assert amplifier.transfer(tiny)[0] / tiny[0] == pytest.approx(10.0, rel=1e-3)

    def test_output_saturates(self):
        amplifier = RappAmplifier(gain_db=20.0, saturation_amplitude=1.0, smoothness=3.0)
        huge = np.array([100.0])
        assert amplifier.transfer(huge)[0] <= 1.0 * 1.01

    def test_monotone_transfer(self):
        amplifier = RappAmplifier(gain_db=15.0, saturation_amplitude=1.0)
        magnitudes = np.linspace(0.0, 5.0, 200)
        transfer = amplifier.transfer(magnitudes)
        assert np.all(np.diff(transfer) >= -1e-12)

    def test_no_am_pm(self):
        amplifier = RappAmplifier()
        np.testing.assert_allclose(amplifier.phase_shift(np.linspace(0.01, 2.0, 20)), 0.0)

    def test_sharper_knee_with_higher_smoothness(self):
        soft = RappAmplifier(gain_db=20.0, saturation_amplitude=1.0, smoothness=1.0)
        hard = RappAmplifier(gain_db=20.0, saturation_amplitude=1.0, smoothness=10.0)
        at_knee = np.array([0.1])  # driven right at saturation
        assert hard.transfer(at_knee)[0] > soft.transfer(at_knee)[0]

    def test_compression_creates_spectral_regrowth(self):
        """A driven Rapp PA must widen the spectrum of a shaped signal."""
        from repro.dsp import welch_psd, band_power
        from repro.signals import PulseShaper, qpsk

        rng = np.random.default_rng(1)
        shaper = PulseShaper.root_raised_cosine(8, span_symbols=10, rolloff=0.3)
        symbols = qpsk().map(rng.integers(0, 4, 512))
        envelope = ComplexEnvelope(shaper.shape_trimmed(symbols), 8e6).scaled_to_power(0.5)
        amplifier = RappAmplifier(gain_db=0.0, saturation_amplitude=0.8, smoothness=2.0)
        amplified = amplifier.apply(envelope)
        clean = welch_psd(envelope.samples, 8e6, segment_length=1024)
        distorted = welch_psd(amplified.samples, 8e6, segment_length=1024)
        # Out-of-band power (beyond 0.8 MHz from centre) grows.
        clean_oob = band_power(clean, 1.0e6, 3.9e6)
        distorted_oob = band_power(distorted, 1.0e6, 3.9e6)
        assert distorted_oob > 2.0 * clean_oob

    def test_invalid_saturation(self):
        with pytest.raises(ValidationError):
            RappAmplifier(saturation_amplitude=0.0)


class TestSalehAmplifier:
    def test_am_pm_present(self):
        amplifier = SalehAmplifier()
        assert abs(amplifier.phase_shift(np.array([0.5]))[0]) > 0.01

    def test_gain_compresses_at_high_drive(self):
        amplifier = SalehAmplifier()
        low = np.abs(amplifier.gain(np.array([0.05])))[0]
        high = np.abs(amplifier.gain(np.array([2.0])))[0]
        assert high < low

    def test_transfer_peaks_then_falls(self):
        amplifier = SalehAmplifier()
        magnitudes = np.linspace(0.01, 3.0, 300)
        transfer = amplifier.transfer(magnitudes)
        peak_index = int(np.argmax(transfer))
        assert 0 < peak_index < magnitudes.size - 1

    def test_apply_preserves_length(self):
        envelope = make_envelope(0.3)
        assert len(SalehAmplifier().apply(envelope)) == len(envelope)


class TestPolynomialAmplifier:
    def test_linear_when_only_a1(self):
        amplifier = PolynomialAmplifier(a1=5.0, a3=0.0, a5=0.0)
        magnitudes = np.linspace(0.01, 1.0, 20)
        np.testing.assert_allclose(amplifier.transfer(magnitudes), 5.0 * magnitudes)

    def test_third_order_compression(self):
        amplifier = PolynomialAmplifier(a1=10.0, a3=-1.0, a5=0.0)
        assert amplifier.transfer(np.array([1.0]))[0] < 10.0

    def test_zero_a1_rejected(self):
        with pytest.raises(ValidationError):
            PolynomialAmplifier(a1=0.0)

    def test_apply_type_check(self):
        with pytest.raises(ValidationError):
            PolynomialAmplifier().apply(np.ones(16))
