"""Tests for repro.rf.impairments."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.rf import DcOffset, IqImbalance, image_rejection_ratio_db
from repro.signals import ComplexEnvelope


def tone_envelope(offset_hz=5e6, rate=100e6, num=4096):
    t = np.arange(num) / rate
    return ComplexEnvelope(np.exp(2j * np.pi * offset_hz * t), rate)


class TestIqImbalance:
    def test_ideal_is_identity(self):
        envelope = tone_envelope()
        balanced = IqImbalance()
        assert balanced.is_ideal
        assert balanced.apply(envelope) is envelope

    def test_coefficients_ideal_case(self):
        balanced = IqImbalance()
        assert balanced.mu == pytest.approx(1.0)
        assert balanced.nu == pytest.approx(0.0)

    def test_image_created(self):
        """Gain/phase imbalance creates an image tone at the mirrored offset."""
        envelope = tone_envelope(offset_hz=5e6)
        impaired = IqImbalance(gain_imbalance_db=1.0, phase_imbalance_deg=5.0).apply(envelope)
        spectrum = np.fft.fftshift(np.fft.fft(impaired.samples))
        frequencies = np.fft.fftshift(np.fft.fftfreq(len(envelope), 1.0 / envelope.sample_rate))
        wanted_bin = np.argmin(np.abs(frequencies - 5e6))
        image_bin = np.argmin(np.abs(frequencies + 5e6))
        wanted = abs(spectrum[wanted_bin])
        image = abs(spectrum[image_bin])
        assert image > 0.01 * wanted

    def test_image_rejection_matches_formula(self):
        imbalance = IqImbalance(gain_imbalance_db=0.5, phase_imbalance_deg=2.0)
        envelope = tone_envelope(offset_hz=5e6)
        impaired = imbalance.apply(envelope)
        spectrum = np.abs(np.fft.fftshift(np.fft.fft(impaired.samples))) ** 2
        frequencies = np.fft.fftshift(np.fft.fftfreq(len(envelope), 1.0 / envelope.sample_rate))
        wanted = spectrum[np.argmin(np.abs(frequencies - 5e6))]
        image = spectrum[np.argmin(np.abs(frequencies + 5e6))]
        measured_irr = 10.0 * np.log10(wanted / image)
        assert measured_irr == pytest.approx(image_rejection_ratio_db(imbalance), abs=0.5)

    def test_ideal_irr_infinite(self):
        assert image_rejection_ratio_db(IqImbalance()) == float("inf")

    def test_power_approximately_preserved_for_small_imbalance(self):
        envelope = tone_envelope()
        impaired = IqImbalance(gain_imbalance_db=0.2, phase_imbalance_deg=1.0).apply(envelope)
        assert impaired.mean_power() == pytest.approx(envelope.mean_power(), rel=0.05)

    def test_type_check(self):
        with pytest.raises(ValidationError):
            IqImbalance(1.0, 1.0).apply(np.ones(8))


class TestDcOffset:
    def test_ideal_is_identity(self):
        envelope = tone_envelope()
        assert DcOffset().apply(envelope) is envelope

    def test_offset_added(self):
        envelope = tone_envelope()
        impaired = DcOffset(i_offset=0.1, q_offset=-0.05).apply(envelope)
        assert np.mean(impaired.samples).real == pytest.approx(0.1, abs=1e-3)
        assert np.mean(impaired.samples).imag == pytest.approx(-0.05, abs=1e-3)

    def test_creates_carrier_spur(self):
        """DC offset appears as energy at zero envelope frequency (the carrier)."""
        envelope = tone_envelope(offset_hz=5e6)
        impaired = DcOffset(i_offset=0.2).apply(envelope)
        spectrum = np.abs(np.fft.fft(impaired.samples))
        assert spectrum[0] > 100.0 * np.abs(np.fft.fft(envelope.samples))[0] + 1.0

    def test_complex_offset_property(self):
        assert DcOffset(0.1, 0.2).complex_offset == pytest.approx(0.1 + 0.2j)

    def test_type_check(self):
        with pytest.raises(ValidationError):
            DcOffset(0.1, 0.1).apply([1, 2, 3])
