"""Tests for repro.rf.mixer and repro.rf.filters."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.rf import (
    AnalogBandpass,
    AnalogLowpass,
    DcOffset,
    IqImbalance,
    LocalOscillator,
    PhaseNoiseModel,
    QuadratureModulator,
)
from repro.signals import ComplexEnvelope


def tone_envelope(offset_hz, rate=100e6, num=4096, amplitude=1.0):
    t = np.arange(num) / rate
    return ComplexEnvelope(amplitude * np.exp(2j * np.pi * offset_hz * t), rate)


class TestAnalogLowpass:
    def test_passband_tone_survives(self):
        envelope = tone_envelope(2e6)
        filtered = AnalogLowpass(cutoff_hz=10e6, order=5).apply(envelope)
        assert filtered.mean_power() == pytest.approx(envelope.mean_power(), rel=0.02)

    def test_stopband_tone_attenuated(self):
        envelope = tone_envelope(40e6)
        filtered = AnalogLowpass(cutoff_hz=10e6, order=5).apply(envelope)
        assert filtered.mean_power() < 0.01 * envelope.mean_power()

    def test_cutoff_above_nyquist_is_identity(self):
        envelope = tone_envelope(2e6)
        assert AnalogLowpass(cutoff_hz=80e6).apply(envelope) is envelope

    def test_type_check(self):
        with pytest.raises(ValidationError):
            AnalogLowpass(cutoff_hz=1e6).apply(np.ones(10))


class TestAnalogBandpass:
    def test_centred_filter_keeps_inband(self):
        envelope = tone_envelope(3e6)
        filtered = AnalogBandpass(bandwidth_hz=20e6).apply(envelope)
        assert filtered.mean_power() == pytest.approx(envelope.mean_power(), rel=0.05)

    def test_centred_filter_rejects_far_out(self):
        envelope = tone_envelope(45e6)
        filtered = AnalogBandpass(bandwidth_hz=20e6).apply(envelope)
        assert filtered.mean_power() < 0.05 * envelope.mean_power()

    def test_offset_filter_moves_passband(self):
        # Filter centred +30 MHz from the carrier: a +30 MHz envelope tone passes,
        # a -30 MHz tone is rejected.
        passband_tone = tone_envelope(30e6)
        stopband_tone = tone_envelope(-30e6)
        bandpass = AnalogBandpass(bandwidth_hz=10e6, centre_offset_hz=30e6)
        assert bandpass.apply(passband_tone).mean_power() == pytest.approx(
            passband_tone.mean_power(), rel=0.05
        )
        assert bandpass.apply(stopband_tone).mean_power() < 0.05 * stopband_tone.mean_power()


class TestQuadratureModulator:
    def make_modulator(self, **kwargs):
        return QuadratureModulator(
            local_oscillator=LocalOscillator(frequency_hz=1e9), **kwargs
        )

    def test_carrier_frequency(self):
        assert self.make_modulator().carrier_frequency == pytest.approx(1e9)

    def test_ideal_upconversion_preserves_envelope(self):
        envelope = tone_envelope(5e6)
        signal = self.make_modulator().upconvert(envelope)
        np.testing.assert_allclose(signal.envelope.samples, envelope.samples)
        assert signal.carrier_frequency == pytest.approx(1e9)

    def test_impairments_applied(self):
        envelope = tone_envelope(5e6)
        modulator = self.make_modulator(
            iq_imbalance=IqImbalance(gain_imbalance_db=1.0, phase_imbalance_deg=3.0),
            dc_offset=DcOffset(i_offset=0.1),
        )
        impaired = modulator.impair_envelope(envelope)
        assert not np.allclose(impaired.samples, envelope.samples)
        assert np.mean(impaired.samples).real == pytest.approx(0.1, abs=5e-3)

    def test_phase_noise_applied(self):
        envelope = tone_envelope(5e6)
        modulator = QuadratureModulator(
            local_oscillator=LocalOscillator(
                frequency_hz=1e9, phase_noise=PhaseNoiseModel(linewidth_hz=1e4), seed=0
            )
        )
        impaired = modulator.impair_envelope(envelope)
        assert not np.allclose(impaired.samples, envelope.samples)
        np.testing.assert_allclose(np.abs(impaired.samples), np.abs(envelope.samples), atol=1e-12)

    def test_passband_waveform_matches_expected_tone(self):
        # envelope tone at +5 MHz on a 1 GHz carrier -> passband tone at 1.005 GHz.
        envelope = tone_envelope(5e6, amplitude=1.0)
        signal = self.make_modulator().upconvert(envelope)
        times = 5e-6 + np.arange(32) / 8.1e9
        expected = np.cos(2 * np.pi * 1.005e9 * times)
        np.testing.assert_allclose(signal.evaluate(times), expected, atol=5e-3)

    def test_invalid_lo_type(self):
        with pytest.raises(ValidationError):
            QuadratureModulator(local_oscillator="lo")
