"""Tests for repro.rf.noise and repro.rf.oscillator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.rf import (
    AdditiveWhiteNoise,
    LocalOscillator,
    PhaseNoiseModel,
    add_noise_for_snr,
    thermal_noise_power,
)
from repro.signals import ComplexEnvelope


def flat_envelope(num=8192, rate=100e6):
    return ComplexEnvelope(np.ones(num, dtype=complex), rate)


class TestThermalNoise:
    def test_kTB_at_room_temperature(self):
        # kTB for 1 Hz at 290 K is about -174 dBm = 4e-21 W.
        assert thermal_noise_power(1.0) == pytest.approx(4.0e-21, rel=0.01)

    def test_noise_figure_scales_power(self):
        assert thermal_noise_power(1e6, noise_figure_db=3.0) == pytest.approx(
            2.0 * thermal_noise_power(1e6), rel=1e-3
        )

    def test_invalid_bandwidth(self):
        with pytest.raises(ValidationError):
            thermal_noise_power(0.0)


class TestAdditiveWhiteNoise:
    def test_zero_power_is_identity(self):
        envelope = flat_envelope()
        assert AdditiveWhiteNoise(power=0.0).apply(envelope) is envelope

    def test_noise_power_close_to_requested(self):
        envelope = flat_envelope()
        noisy = AdditiveWhiteNoise(power=0.25, seed=0).apply(envelope)
        measured = np.mean(np.abs(noisy.samples - envelope.samples) ** 2)
        assert measured == pytest.approx(0.25, rel=0.1)

    def test_reproducible_with_seed(self):
        envelope = flat_envelope(1024)
        a = AdditiveWhiteNoise(power=0.1, seed=3).apply(envelope)
        b = AdditiveWhiteNoise(power=0.1, seed=3).apply(envelope)
        np.testing.assert_allclose(a.samples, b.samples)

    def test_negative_power_rejected(self):
        with pytest.raises(ValidationError):
            AdditiveWhiteNoise(power=-1.0)

    def test_snr_helper(self):
        envelope = flat_envelope()
        noisy = add_noise_for_snr(envelope, snr_db=20.0, seed=1)
        noise_power = np.mean(np.abs(noisy.samples - envelope.samples) ** 2)
        snr = 10.0 * np.log10(envelope.mean_power() / noise_power)
        assert snr == pytest.approx(20.0, abs=0.5)

    def test_snr_helper_zero_signal_rejected(self):
        silent = ComplexEnvelope(np.zeros(64, dtype=complex), 1e6)
        with pytest.raises(ValidationError):
            add_noise_for_snr(silent, 10.0)


class TestPhaseNoise:
    def test_ideal_model(self):
        assert PhaseNoiseModel().is_ideal
        assert not PhaseNoiseModel(linewidth_hz=100.0).is_ideal

    def test_ideal_oscillator_identity(self):
        envelope = flat_envelope()
        oscillator = LocalOscillator(frequency_hz=1e9)
        assert oscillator.apply_phase_noise(envelope) is envelope

    def test_initial_phase_rotation(self):
        envelope = flat_envelope(128)
        oscillator = LocalOscillator(frequency_hz=1e9, initial_phase=np.pi / 2.0)
        rotated = oscillator.apply_phase_noise(envelope)
        np.testing.assert_allclose(rotated.samples, 1j * envelope.samples, atol=1e-12)

    def test_magnitude_preserved(self):
        envelope = flat_envelope(4096)
        oscillator = LocalOscillator(
            frequency_hz=1e9,
            phase_noise=PhaseNoiseModel(linewidth_hz=1e3, rms_jitter_seconds=1e-12),
            seed=0,
        )
        noisy = oscillator.apply_phase_noise(envelope)
        np.testing.assert_allclose(np.abs(noisy.samples), 1.0, atol=1e-12)

    def test_wiener_phase_variance_grows(self):
        oscillator = LocalOscillator(
            frequency_hz=1e9, phase_noise=PhaseNoiseModel(linewidth_hz=10e3), seed=1
        )
        phase = oscillator.phase_realisation(20000, 100e6)
        early = np.var(phase[:2000])
        late = np.var(phase[-2000:] - np.mean(phase[-2000:]) + np.mean(phase[:2000]))
        assert np.abs(phase[-1] - phase[0]) >= 0.0  # random walk moved
        assert np.var(np.diff(phase)) > 0.0

    def test_white_jitter_phase_std(self):
        jitter = 3e-12
        oscillator = LocalOscillator(
            frequency_hz=1e9, phase_noise=PhaseNoiseModel(rms_jitter_seconds=jitter), seed=2
        )
        phase = oscillator.phase_realisation(50000, 100e6)
        expected_std = 2.0 * np.pi * 1e9 * jitter
        assert np.std(phase) == pytest.approx(expected_std, rel=0.05)

    def test_invalid_num_samples(self):
        oscillator = LocalOscillator(frequency_hz=1e9)
        with pytest.raises(ValidationError):
            oscillator.phase_realisation(0, 1e6)

    def test_negative_linewidth_rejected(self):
        with pytest.raises(ValidationError):
            PhaseNoiseModel(linewidth_hz=-1.0)
