"""Concurrency tests for the store: live multi-process shard writers.

The distributed BIST service leans on two store guarantees:

* worker processes appending to *separate* shards of one store directory
  never corrupt each other, and a merged ``load()`` sees every fsync'd
  record the instant the writers finish;
* ``compact()`` resolves duplicate fingerprints exactly as ``load()``
  would (first record in sorted shard order) and never deletes a shard it
  did not scan, so a concurrent writer cannot lose data.

These tests exercise those guarantees with real OS processes, not mocks.
"""

import multiprocessing
from dataclasses import replace

from repro.bist import BistConfig, CampaignRunner, ScenarioGrid
from repro.store import CampaignStore

#: Small-but-real engine configuration so execution stays fast.
FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)

RECORDS_PER_WRITER = 4


def _real_outcome():
    grid = ScenarioGrid().add_profiles("paper-qpsk-1ghz").build()
    execution = CampaignRunner(bist_config=FAST_CONFIG).run(grid)
    outcome = execution.outcomes[0]
    assert outcome.ok
    return outcome


def _append_interleaved(root, shard: str, outcome, barrier) -> None:
    """Child-process body: fsync'd puts lock-stepped against the sibling.

    The barrier before every ``put`` forces the two writers' appends to
    interleave in time instead of one racing ahead, which is the pattern a
    busy coordinator produces.  Each writer also records one *shared*
    fingerprint so the merge has a genuine cross-shard duplicate to resolve.
    """
    store = CampaignStore(root, shard=shard)
    for i in range(RECORDS_PER_WRITER):
        barrier.wait(timeout=30)
        store.put(f"fp-{shard}-{i}", replace(outcome, index=i, label=f"{shard}-{i}"))
    barrier.wait(timeout=30)
    store.put("fp-shared", replace(outcome, index=99, label=f"shared-by-{shard}"))


class TestLiveConcurrentWriters:
    def test_interleaved_fsynced_appends_merge_completely(self, tmp_path):
        root = tmp_path / "store"
        outcome = _real_outcome()
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        writers = [
            context.Process(
                target=_append_interleaved,
                args=(root, shard, outcome, barrier),
            )
            for shard in ("worker-a", "worker-b")
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0

        # A store instance that never saw the writers reads everything.
        merged = CampaignStore(root)
        fingerprints = merged.fingerprints()
        expected = {
            f"fp-{shard}-{i}"
            for shard in ("worker-a", "worker-b")
            for i in range(RECORDS_PER_WRITER)
        } | {"fp-shared"}
        assert set(fingerprints) == expected
        # The cross-shard duplicate resolves by sorted shard order: the
        # lexicographically-first shard wins, regardless of wall-clock order.
        assert merged.get("fp-shared").label == "shared-by-worker-a"
        # Every record parses cleanly — interleaving tore nothing.
        assert len(merged.load()) == len(expected)


class TestCompactDeterminism:
    def make_duplicate_store(self, root, outcome) -> CampaignStore:
        """Two shards that disagree about ``fp-dup`` (plus one unique each)."""
        root.mkdir()
        (root / "b-late.jsonl").write_text(
            CampaignStore._record_line("fp-dup", replace(outcome, label="late"))
            + "\n"
            + CampaignStore._record_line("fp-b", replace(outcome, label="only-b"))
            + "\n"
        )
        (root / "a-early.jsonl").write_text(
            CampaignStore._record_line("fp-dup", replace(outcome, label="early")) + "\n"
        )
        return CampaignStore(root, shard="combined")

    def test_compact_preserves_first_record_wins(self, tmp_path):
        outcome = _real_outcome()
        store = self.make_duplicate_store(tmp_path / "store", outcome)
        served_before = {
            fingerprint: record.label for fingerprint, record in store.load().items()
        }
        assert store.compact() == 2
        fresh = CampaignStore(tmp_path / "store")
        served_after = {
            fingerprint: record.label for fingerprint, record in fresh.load().items()
        }
        # The survivor per fingerprint is exactly what load() served before.
        assert served_after == served_before
        assert served_after["fp-dup"] == "early"

    def test_compact_output_is_sorted_and_stable(self, tmp_path):
        outcome = _real_outcome()
        store = self.make_duplicate_store(tmp_path / "store", outcome)
        store.compact()
        first = (tmp_path / "store" / "combined.jsonl").read_text()
        # Re-compacting an already-compact store is a fixed point.
        CampaignStore(tmp_path / "store", shard="combined").compact()
        assert (tmp_path / "store" / "combined.jsonl").read_text() == first
        assert CampaignStore(tmp_path / "store").fingerprints() == sorted(
            ["fp-dup", "fp-b"]
        )

    def test_compact_spares_a_shard_created_mid_scan(self, tmp_path, monkeypatch):
        """A shard born between snapshot and cleanup must survive unread."""
        root = tmp_path / "store"
        outcome = _real_outcome()
        store = self.make_duplicate_store(root, outcome)
        original_scan = store._scan

        def scan_then_race(paths):
            index = original_scan(paths)
            # A concurrent worker lands a new shard mid-compaction.
            CampaignStore(root, shard="latecomer").put(
                "fp-late", replace(outcome, label="late-arrival")
            )
            return index

        monkeypatch.setattr(store, "_scan", scan_then_race)
        store.compact()
        assert (root / "latecomer.jsonl").exists()
        fresh = CampaignStore(root)
        assert fresh.get("fp-late").label == "late-arrival"
        assert set(fresh.fingerprints()) == {"fp-dup", "fp-b", "fp-late"}
