"""Tests for repro.store.fingerprint: content-addressed scenario identity.

The fingerprint must change exactly when the execution result could change:
any knob of the transmitter, converter, engine or burst length moves it; a
relabelled but otherwise identical scenario keeps it.
"""

from dataclasses import replace

import pytest

import repro.store.fingerprint as fingerprint_module

from repro.bist import BistConfig, CampaignScenario, ConverterSpec
from repro.errors import ConfigurationError, ValidationError
from repro.faults import IqImbalanceFault
from repro.store import canonical_json, fingerprint_payload, scenario_fingerprint
from repro.transmitter import ImpairmentConfig

BASE = CampaignScenario(profile="paper-qpsk-1ghz")
CONFIG = BistConfig(num_samples_fast=128, num_samples_slow=64)


class TestStability:
    def test_deterministic_across_calls(self):
        assert scenario_fingerprint(BASE, CONFIG) == scenario_fingerprint(BASE, CONFIG)

    def test_sha256_hex_shape(self):
        fingerprint = scenario_fingerprint(BASE, CONFIG)
        assert len(fingerprint) == 64
        int(fingerprint, 16)

    def test_canonical_json_ignores_key_order(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_label_does_not_change_identity(self):
        relabelled = replace(BASE, label="some-other-name")
        assert scenario_fingerprint(relabelled, CONFIG) == scenario_fingerprint(BASE, CONFIG)

    def test_equivalent_profile_spellings_share_identity(self):
        from repro.signals.standards import get_profile

        by_object = replace(BASE, profile=get_profile("paper-qpsk-1ghz"))
        assert scenario_fingerprint(by_object, CONFIG) == scenario_fingerprint(BASE, CONFIG)


class TestSensitivity:
    def fingerprints_differ(self, a_kwargs, b_kwargs) -> bool:
        return scenario_fingerprint(**a_kwargs) != scenario_fingerprint(**b_kwargs)

    def test_profile_changes_identity(self):
        other = replace(BASE, profile="uhf-8psk-400mhz")
        assert self.fingerprints_differ(
            dict(scenario=BASE, bist_config=CONFIG), dict(scenario=other, bist_config=CONFIG)
        )

    def test_impairments_change_identity(self):
        faulty = replace(
            BASE,
            impairments=IqImbalanceFault(severity=1.0).apply_transmitter(ImpairmentConfig()),
        )
        assert self.fingerprints_differ(
            dict(scenario=BASE, bist_config=CONFIG), dict(scenario=faulty, bist_config=CONFIG)
        )

    def test_converter_spec_changes_identity(self):
        skewed = replace(BASE, converter=ConverterSpec(channel1_skew_seconds=2e-12))
        assert self.fingerprints_differ(
            dict(scenario=BASE, bist_config=CONFIG), dict(scenario=skewed, bist_config=CONFIG)
        )

    def test_bist_config_changes_identity(self):
        other = replace(CONFIG, num_taps=40)
        assert self.fingerprints_differ(
            dict(scenario=BASE, bist_config=CONFIG), dict(scenario=BASE, bist_config=other)
        )

    def test_num_symbols_changes_identity(self):
        longer = replace(BASE, num_symbols=256)
        assert self.fingerprints_differ(
            dict(scenario=BASE, bist_config=CONFIG), dict(scenario=longer, bist_config=CONFIG)
        )

    def test_seed_override_changes_identity(self):
        assert scenario_fingerprint(BASE, CONFIG, seed=1) != scenario_fingerprint(
            BASE, CONFIG, seed=2
        )
        # The ... sentinel (historical seeding) is its own identity too.
        assert scenario_fingerprint(BASE, CONFIG) != scenario_fingerprint(BASE, CONFIG, seed=1)

    def test_schema_version_changes_identity(self, monkeypatch):
        before = scenario_fingerprint(BASE, CONFIG)
        monkeypatch.setattr(fingerprint_module, "SCHEMA_VERSION", 999)
        assert scenario_fingerprint(BASE, CONFIG) != before


class TestPayload:
    def test_payload_captures_effective_configuration(self):
        payload = fingerprint_payload(BASE, CONFIG)
        assert payload["schema_version"] == fingerprint_module.SCHEMA_VERSION
        assert payload["profile"]["name"] == "paper-qpsk-1ghz"
        # The per-scenario bandwidth adaptation must be reflected (narrowband
        # profiles shrink the acquisition below the campaign nominal).
        narrow = CampaignScenario(profile="narrowband-vhf-bpsk")
        narrow_payload = fingerprint_payload(narrow, CONFIG)
        assert (
            narrow_payload["bist"]["acquisition_bandwidth_hz"]
            < payload["bist"]["acquisition_bandwidth_hz"]
        )

    def test_payload_is_json_canonicalisable(self):
        canonical_json(fingerprint_payload(BASE, CONFIG, seed=7))

    def test_arbitrary_callable_factory_rejected(self):
        with pytest.raises(ConfigurationError, match="ConverterSpec"):
            scenario_fingerprint(BASE, CONFIG, converter_factory=lambda bandwidth: None)

    def test_scenario_type_checked(self):
        with pytest.raises(ValidationError):
            scenario_fingerprint("not-a-scenario", CONFIG)
