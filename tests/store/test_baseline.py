"""Tests for repro.store.baseline: golden-baseline regression gating.

The comparator must pass a campaign against itself, flag exactly the metric
that was perturbed beyond tolerance, and surface structural drift (verdict
flips, vanished or new scenarios, fresh errors) unconditionally.
"""

import copy
from dataclasses import replace

import pytest

from repro.bist import BistConfig, CampaignRunner, ScenarioGrid
from repro.bist.runner import CampaignExecution, ScenarioOutcome
from repro.errors import ValidationError
from repro.store import BaselineComparator, BaselineTolerances

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


@pytest.fixture(scope="module")
def execution() -> CampaignExecution:
    grid = ScenarioGrid().add_profiles("paper-qpsk-1ghz", "uhf-8psk-400mhz").build()
    return CampaignRunner(bist_config=FAST_CONFIG).run(grid)


def perturbed(execution: CampaignExecution, label: str, mutate) -> CampaignExecution:
    """Copy of an execution with one outcome's report dictionary mutated."""
    outcomes = []
    for outcome in execution.outcomes:
        if outcome.label == label:
            data = copy.deepcopy(outcome.to_dict())
            mutate(data["report"])
            outcome = ScenarioOutcome.from_dict(data)
        outcomes.append(outcome)
    return CampaignExecution(outcomes=tuple(outcomes))


class TestCleanComparison:
    def test_execution_matches_itself(self, execution):
        report = BaselineComparator().compare(execution, execution)
        assert report.passed
        assert not report.drifted
        # Five numeric metrics (EVM disabled) plus the verdict per scenario.
        assert report.num_compared == 2 * 6

    def test_within_tolerance_drift_passes(self, execution):
        nudged = perturbed(
            execution,
            "paper-qpsk-1ghz",
            lambda report: report["measurements"].__setitem__(
                "occupied_bandwidth_hz",
                report["measurements"]["occupied_bandwidth_hz"] + 1.0e4,
            ),
        )
        comparison = BaselineComparator().compare(execution, nudged)
        assert comparison.passed

    def test_report_serialises(self, execution):
        comparison = BaselineComparator().compare(execution, execution)
        data = comparison.to_dict()
        assert data["passed"] is True
        assert data["num_compared"] == comparison.num_compared
        assert data["tolerances"] == BaselineTolerances().to_dict()
        assert "PASS" in comparison.to_text()


class TestMetricDrift:
    def test_flags_exactly_the_perturbed_metric(self, execution):
        drifted = perturbed(
            execution,
            "paper-qpsk-1ghz",
            lambda report: report["measurements"].__setitem__(
                "occupied_bandwidth_hz",
                report["measurements"]["occupied_bandwidth_hz"] + 5.0e6,
            ),
        )
        comparison = BaselineComparator().compare(execution, drifted)
        assert not comparison.passed
        assert [(entry.label, entry.metric) for entry in comparison.drifted] == [
            ("paper-qpsk-1ghz", "occupied_bandwidth_hz")
        ]
        entry = comparison.drifted[0]
        assert entry.delta == pytest.approx(5.0e6)
        assert entry.tolerance == BaselineTolerances().occupied_bandwidth_hz

    def test_skew_estimate_drift_flagged(self, execution):
        drifted = perturbed(
            execution,
            "uhf-8psk-400mhz",
            lambda report: report["calibration"].__setitem__(
                "estimated_delay_seconds",
                report["calibration"]["estimated_delay_seconds"] + 5e-12,
            ),
        )
        comparison = BaselineComparator().compare(execution, drifted)
        assert [entry.metric for entry in comparison.drifted] == ["skew_estimate_ps"]

    def test_custom_tolerances_rescale_the_gate(self, execution):
        drifted = perturbed(
            execution,
            "paper-qpsk-1ghz",
            lambda report: report["measurements"].__setitem__(
                "occupied_bandwidth_hz",
                report["measurements"]["occupied_bandwidth_hz"] + 5.0e6,
            ),
        )
        loose = BaselineComparator(BaselineTolerances(occupied_bandwidth_hz=1.0e7))
        assert loose.compare(execution, drifted).passed

    def test_verdict_flip_always_flagged(self, execution):
        def fail_acpr(report):
            report["checks"]["acpr"]["verdict"] = "fail"

        flipped = perturbed(execution, "paper-qpsk-1ghz", fail_acpr)
        comparison = BaselineComparator().compare(execution, flipped)
        assert any(
            entry.metric == "verdict" and entry.current == "fail"
            for entry in comparison.drifted
        )


class TestStructuralDrift:
    def test_missing_scenario_flagged(self, execution):
        shorter = CampaignExecution(outcomes=execution.outcomes[:1])
        comparison = BaselineComparator().compare(execution, shorter)
        assert any(
            entry.kind == "scenario" and entry.current == "missing"
            for entry in comparison.drifted
        )

    def test_new_scenario_flagged(self, execution):
        shorter = CampaignExecution(outcomes=execution.outcomes[:1])
        comparison = BaselineComparator().compare(shorter, execution)
        assert any(
            entry.kind == "scenario" and entry.baseline == "missing"
            for entry in comparison.drifted
        )

    def test_fresh_error_flagged(self, execution):
        errored_outcomes = []
        for outcome in execution.outcomes:
            if outcome.label == "paper-qpsk-1ghz":
                outcome = ScenarioOutcome(
                    index=outcome.index, label=outcome.label, error="RuntimeError: boom"
                )
            errored_outcomes.append(outcome)
        errored = CampaignExecution(outcomes=tuple(errored_outcomes))
        comparison = BaselineComparator().compare(execution, errored)
        assert any(
            entry.kind == "scenario" and "error" in str(entry.current)
            for entry in comparison.drifted
        )

    def test_duplicate_labels_rejected(self, execution):
        doubled = CampaignExecution(
            outcomes=execution.outcomes + (replace(execution.outcomes[0], index=99),)
        )
        with pytest.raises(ValidationError, match="duplicate"):
            BaselineComparator().compare(doubled, doubled)


class TestTolerances:
    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValidationError):
            BaselineTolerances(acpr_db=-0.1)

    def test_round_trip_with_unknown_keys(self):
        tolerances = BaselineTolerances(evm_percent=1.5)
        data = tolerances.to_dict()
        data["__future_field__"] = 42
        assert BaselineTolerances.from_dict(data) == tolerances

    def test_type_checked_inputs(self, execution):
        with pytest.raises(ValidationError):
            BaselineComparator().compare(execution, "not-an-execution")
