"""Tests for repro.store.store: the content-addressed JSONL campaign store.

Robustness is the contract under test: corrupt lines are skipped with a
warning (the rest of the shard survives), merges deduplicate by fingerprint
with deterministic first-record-wins semantics, and incremental appends are
immediately visible to fresh store instances.
"""

import json
from dataclasses import replace

import pytest

from repro.bist import BistConfig, CampaignRunner, ScenarioGrid
from repro.bist.runner import ScenarioOutcome
from repro.errors import ValidationError
from repro.store import SCHEMA_VERSION, CampaignStore, CampaignStoreWarning

#: Small-but-real engine configuration so execution stays fast.
FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


@pytest.fixture(scope="module")
def real_outcome() -> ScenarioOutcome:
    """One real, successful scenario outcome (module-scoped: runs once)."""
    grid = ScenarioGrid().add_profiles("paper-qpsk-1ghz").build()
    execution = CampaignRunner(bist_config=FAST_CONFIG).run(grid)
    outcome = execution.outcomes[0]
    assert outcome.ok
    return outcome


def synthetic_outcomes(base: ScenarioOutcome, count: int) -> list:
    """Distinct outcomes cloned from a real one (cheap, no execution)."""
    return [replace(base, index=i, label=f"clone-{i}") for i in range(count)]


class TestPutGet:
    def test_round_trips_exactly(self, tmp_path, real_outcome):
        store = CampaignStore(tmp_path / "store")
        assert store.put("fp-1", real_outcome)
        loaded = CampaignStore(tmp_path / "store").get("fp-1")
        assert loaded.to_dict() == real_outcome.to_dict()

    def test_contains_len_fingerprints(self, tmp_path, real_outcome):
        store = CampaignStore(tmp_path / "store")
        for index, outcome in enumerate(synthetic_outcomes(real_outcome, 3)):
            store.put(f"fp-{index}", outcome)
        assert len(store) == 3
        assert "fp-1" in store
        assert "fp-9" not in store
        assert store.fingerprints() == ["fp-0", "fp-1", "fp-2"]
        assert store.get("missing") is None

    def test_reput_is_noop(self, tmp_path, real_outcome):
        store = CampaignStore(tmp_path / "store")
        assert store.put("fp-1", real_outcome)
        assert not store.put("fp-1", real_outcome)
        lines = store.shard_path.read_text().splitlines()
        assert len(lines) == 1

    def test_refuses_errored_outcomes(self, tmp_path):
        errored = ScenarioOutcome(index=0, label="bad", error="RuntimeError: boom")
        store = CampaignStore(tmp_path / "store")
        with pytest.raises(ValidationError, match="errored"):
            store.put("fp-err", errored)

    def test_rejects_path_like_shard_names(self, tmp_path):
        with pytest.raises(ValidationError):
            CampaignStore(tmp_path, shard="../escape")
        with pytest.raises(ValidationError):
            CampaignStore(tmp_path, shard="")

    def test_empty_store_reads_cleanly(self, tmp_path):
        store = CampaignStore(tmp_path / "nonexistent")
        assert len(store) == 0
        assert store.load() == {}
        assert store.shard_paths() == []


class TestCorruptionRecovery:
    def _shard_with_lines(self, tmp_path, lines) -> CampaignStore:
        root = tmp_path / "store"
        root.mkdir()
        (root / "campaign.jsonl").write_text("\n".join(lines) + "\n")
        return CampaignStore(root)

    def test_truncated_line_skipped_with_warning(self, tmp_path, real_outcome):
        store = CampaignStore(tmp_path / "store")
        store.put("fp-a", real_outcome)
        store.put("fp-b", replace(real_outcome, label="other"))
        # Simulate a torn final append: truncate the last line mid-record.
        text = store.shard_path.read_text()
        lines = text.splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        store.shard_path.write_text("\n".join(lines) + "\n")
        fresh = CampaignStore(tmp_path / "store")
        with pytest.warns(CampaignStoreWarning, match="corrupt record"):
            index = fresh.load()
        assert sorted(index) == ["fp-a"]
        assert index["fp-a"].to_dict() == real_outcome.to_dict()

    def test_garbage_between_good_lines_survives(self, tmp_path, real_outcome):
        good_a = CampaignStore._record_line("fp-a", real_outcome)
        good_b = CampaignStore._record_line("fp-b", real_outcome)
        store = self._shard_with_lines(
            tmp_path, [good_a, "{not json at all", good_b, '{"fingerprint": 1}']
        )
        with pytest.warns(CampaignStoreWarning):
            index = store.load()
        assert sorted(index) == ["fp-a", "fp-b"]

    def test_blank_lines_ignored_silently(self, tmp_path, real_outcome):
        good = CampaignStore._record_line("fp-a", real_outcome)
        store = self._shard_with_lines(tmp_path, [good, "", "   ", good])
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            index = store.load()
        assert sorted(index) == ["fp-a"]

    def test_schema_mismatch_not_served(self, tmp_path, real_outcome):
        record = json.loads(CampaignStore._record_line("fp-a", real_outcome))
        record["schema_version"] = SCHEMA_VERSION + 1
        store = self._shard_with_lines(tmp_path, [json.dumps(record)])
        # Another-era record is not corruption: no warning, but also no hit.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.load() == {}


class TestMerge:
    def test_merge_combines_disjoint_shards(self, tmp_path, real_outcome):
        a = CampaignStore(tmp_path / "a", shard="worker-a")
        b = CampaignStore(tmp_path / "b", shard="worker-b")
        a.put("fp-1", real_outcome)
        b.put("fp-2", replace(real_outcome, label="other"))
        destination = CampaignStore(tmp_path / "merged")
        assert destination.merge(a, b) == 2
        assert destination.fingerprints() == ["fp-1", "fp-2"]

    def test_duplicate_fingerprints_keep_first_deterministically(
        self, tmp_path, real_outcome
    ):
        first = replace(real_outcome, label="first")
        second = replace(real_outcome, label="second")
        a = CampaignStore(tmp_path / "a")
        b = CampaignStore(tmp_path / "b")
        a.put("fp-dup", first)
        b.put("fp-dup", second)
        destination = CampaignStore(tmp_path / "merged")
        assert destination.merge(a, b) == 1
        assert destination.get("fp-dup").label == "first"
        # Merging again in any order adds nothing and keeps the winner.
        assert destination.merge(b, a) == 0
        assert destination.get("fp-dup").label == "first"

    def test_own_records_beat_merged_ones(self, tmp_path, real_outcome):
        mine = replace(real_outcome, label="mine")
        theirs = replace(real_outcome, label="theirs")
        destination = CampaignStore(tmp_path / "merged")
        destination.put("fp-dup", mine)
        source = CampaignStore(tmp_path / "source")
        source.put("fp-dup", theirs)
        assert destination.merge(source) == 0
        assert destination.get("fp-dup").label == "mine"

    def test_merge_accepts_paths(self, tmp_path, real_outcome):
        source = CampaignStore(tmp_path / "source")
        source.put("fp-1", real_outcome)
        destination = CampaignStore(tmp_path / "merged")
        assert destination.merge(tmp_path / "source") == 1
        assert "fp-1" in destination


class TestShardsAndCompact:
    def test_reads_cover_every_shard(self, tmp_path, real_outcome):
        root = tmp_path / "store"
        CampaignStore(root, shard="worker-a").put("fp-1", real_outcome)
        CampaignStore(root, shard="worker-b").put("fp-2", real_outcome)
        combined = CampaignStore(root)
        assert combined.fingerprints() == ["fp-1", "fp-2"]

    def test_duplicate_across_shards_resolves_by_shard_order(self, tmp_path, real_outcome):
        # Two workers that filled their shards independently (no shared view,
        # so no put-time dedup) can overlap; write the files directly.
        root = tmp_path / "store"
        root.mkdir()
        (root / "z-late.jsonl").write_text(
            CampaignStore._record_line("fp-dup", replace(real_outcome, label="late")) + "\n"
        )
        (root / "a-early.jsonl").write_text(
            CampaignStore._record_line("fp-dup", replace(real_outcome, label="early")) + "\n"
        )
        # Shards scan in sorted name order, so "a-early" wins regardless of
        # which file was written first.
        assert CampaignStore(root).get("fp-dup").label == "early"

    def test_compact_dedups_and_drops_corruption(self, tmp_path, real_outcome):
        root = tmp_path / "store"
        CampaignStore(root, shard="worker-a").put("fp-1", real_outcome)
        CampaignStore(root, shard="worker-b").put("fp-2", real_outcome)
        with open(root / "worker-b.jsonl", "a") as handle:
            handle.write("garbage\n")
        store = CampaignStore(root, shard="combined")
        with pytest.warns(CampaignStoreWarning):
            assert store.compact() == 2
        assert [path.name for path in store.shard_paths()] == ["combined.jsonl"]
        fresh = CampaignStore(root)
        assert fresh.fingerprints() == ["fp-1", "fp-2"]
        # Compacted shard parses cleanly: no warnings on reload.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fresh.load()
