"""Seeded round-trip fuzz of every serializable archive dataclass.

The campaign store persists outcomes as JSON; these tests generate random
(but valid) instances of every dataclass in the archive graph and assert
``from_dict(to_dict(x))`` is an exact round trip, that the dictionaries
survive a real ``json.dumps``/``json.loads`` cycle, and that every
``from_dict`` tolerates unknown keys (forward compatibility with archives
written by newer library versions).
"""

import json
import random

import pytest

from repro.adc.acquisition import AcquisitionMetadata
from repro.bist import BistConfig, ConverterSpec
from repro.bist.masks import MaskCheckResult, MaskViolation
from repro.bist.measurements import TxMeasurements
from repro.bist.report import BistReport, CheckResult, SkewCalibrationReport, Verdict
from repro.bist.runner import CampaignExecution, ScenarioOutcome
from repro.dsp.spectrum import SpectrumEstimate
from repro.faults import (
    AdaptiveConfig,
    FamilyThreshold,
    FaultSignature,
    ImportanceEscapeEstimate,
    ProbeResult,
    TestLimits,
    ThresholdReport,
)
from repro.mimo import MimoSpec
from repro.rf.amplifier import (
    IdealAmplifier,
    PolynomialAmplifier,
    RappAmplifier,
    SalehAmplifier,
)
from repro.rf.impairments import DcOffset, IqImbalance
from repro.rf.oscillator import PhaseNoiseModel
from repro.signals import WaveformProfile
from repro.signals.ofdm import OfdmParams
from repro.transmitter import ImpairmentConfig, TransmitterConfig
from repro.transmitter.dac import TransmitDac

SEEDS = range(8)


def maybe(rng: random.Random, value, probability: float = 0.3):
    """``value`` or ``None`` with the given probability."""
    return None if rng.random() < probability else value


def random_amplifier(rng: random.Random):
    kind = rng.randrange(4)
    if kind == 0:
        return IdealAmplifier(gain_db=rng.uniform(-3.0, 20.0))
    if kind == 1:
        return RappAmplifier(
            gain_db=rng.uniform(0.0, 10.0),
            saturation_amplitude=rng.uniform(0.5, 3.0),
            smoothness=rng.uniform(1.0, 4.0),
        )
    if kind == 2:
        return SalehAmplifier(
            alpha_amplitude=rng.uniform(1.0, 3.0),
            beta_amplitude=rng.uniform(0.5, 2.0),
            alpha_phase=rng.uniform(1.0, 5.0),
            beta_phase=rng.uniform(5.0, 12.0),
        )
    return PolynomialAmplifier(
        a1=complex(rng.uniform(5.0, 12.0), rng.uniform(-0.5, 0.5)),
        a3=complex(rng.uniform(-1.0, 0.0), rng.uniform(-0.1, 0.1)),
        a5=complex(rng.uniform(-0.2, 0.2), rng.uniform(-0.05, 0.05)),
    )


def random_impairments(rng: random.Random) -> ImpairmentConfig:
    return ImpairmentConfig(
        amplifier=random_amplifier(rng),
        iq_imbalance=IqImbalance(
            gain_imbalance_db=rng.uniform(-1.0, 1.0),
            phase_imbalance_deg=rng.uniform(-10.0, 10.0),
        ),
        dc_offset=DcOffset(
            i_offset=rng.uniform(-0.05, 0.05), q_offset=rng.uniform(-0.05, 0.05)
        ),
        phase_noise=PhaseNoiseModel(
            linewidth_hz=rng.uniform(0.0, 1e4),
            rms_jitter_seconds=rng.uniform(0.0, 1e-12),
        ),
        output_snr_db=maybe(rng, rng.uniform(20.0, 60.0)),
        dac=maybe(
            rng,
            TransmitDac(
                resolution_bits=rng.randrange(6, 16),
                full_scale=rng.uniform(1.0, 5.0),
                apply_zero_order_hold_droop=rng.random() < 0.5,
                inl_fraction_lsb=rng.uniform(0.0, 2.0),
            ),
            probability=0.5,
        ),
        output_filter_bandwidth_scale=rng.uniform(0.5, 1.5),
    )


def random_ofdm_params(rng: random.Random) -> OfdmParams:
    fft_size = rng.choice([16, 32, 64, 128])
    num_subcarriers = 2 * rng.randrange(1, (fft_size - 2) // 2 + 1)
    return OfdmParams(
        fft_size=fft_size,
        num_subcarriers=num_subcarriers,
        cp_length=rng.randrange(1, fft_size),
        pilot_spacing=rng.randrange(2, max(3, num_subcarriers + 1)),
        pilot_amplitude=rng.uniform(0.5, 2.0),
    )


def random_transmitter_config(rng: random.Random) -> TransmitterConfig:
    return TransmitterConfig(
        carrier_frequency_hz=rng.uniform(0.4e9, 2.0e9),
        symbol_rate_hz=rng.uniform(1.0e6, 20.0e6),
        modulation=rng.choice(["qpsk", "16qam", "8psk"]),
        rolloff=rng.uniform(0.1, 0.9),
        samples_per_symbol=rng.randrange(4, 17),
        pulse_span_symbols=rng.randrange(4, 12),
        output_power=rng.uniform(0.5, 2.0),
        impairments=random_impairments(rng),
        seed=maybe(rng, rng.randrange(2**31)),
        ofdm=maybe(rng, random_ofdm_params(rng), probability=0.6),
    )


def random_profile(rng: random.Random) -> WaveformProfile:
    """A random (but valid) waveform profile, either family."""
    ofdm = maybe(rng, random_ofdm_params(rng), probability=0.5)
    num_points = rng.randrange(0, 5)
    offsets = sorted(rng.uniform(0.0, 50e6) for _ in range(num_points))
    mask = tuple(
        (offset, rng.uniform(-60.0, 0.0)) for offset in offsets
    )
    return WaveformProfile(
        name=f"fuzz-profile-{rng.randrange(10**6)}",
        carrier_frequency_hz=rng.uniform(0.4e9, 2.0e9),
        symbol_rate_hz=rng.uniform(1.0e6, 40.0e6),
        modulation=rng.choice(["qpsk", "16qam", "8psk", "64qam"]),
        rolloff=0.0 if ofdm is not None else rng.uniform(0.1, 0.9),
        channel_bandwidth_hz=rng.uniform(1.0e6, 40.0e6),
        channel_spacing_hz=rng.uniform(1.0e6, 50.0e6),
        acpr_limit_db=rng.uniform(-60.0, -10.0),
        evm_limit_percent=rng.uniform(2.0, 20.0),
        mask_points_db=mask,
        family="single-carrier" if ofdm is None else "ofdm",
        ofdm=ofdm,
        flatness_limit_db=maybe(rng, rng.uniform(1.0, 10.0)),
    )


def random_converter_spec(rng: random.Random) -> ConverterSpec:
    reference = maybe(rng, rng.uniform(0.5e9, 1.5e9), probability=0.5)
    return ConverterSpec(
        resolution_bits=rng.randrange(6, 14),
        skew_jitter_rms_seconds=rng.uniform(0.0, 5e-12),
        dcde_static_error_seconds=rng.uniform(-5e-12, 5e-12),
        channel1_skew_seconds=rng.uniform(-5e-12, 5e-12),
        channel1_gain_error=rng.uniform(-0.05, 0.05),
        channel1_offset=rng.uniform(-0.05, 0.05),
        channel1_bandwidth_hz=None if reference is None else rng.uniform(1e9, 5e9),
        bandwidth_reference_hz=reference,
        full_scale=rng.uniform(1.0, 5.0),
        seed=maybe(rng, rng.randrange(2**31)),
    )


def random_bist_config(rng: random.Random) -> BistConfig:
    return BistConfig(
        acquisition_bandwidth_hz=rng.uniform(50e6, 120e6),
        num_samples_fast=rng.randrange(64, 512),
        num_samples_slow=rng.randrange(64, 256),
        programmed_delay_seconds=rng.uniform(50e-12, 300e-12),
        num_taps=2 * rng.randrange(1, 40),
        lms_initial_delay_seconds=maybe(rng, rng.uniform(50e-12, 300e-12)),
        lms_initial_step_seconds=rng.uniform(0.1e-12, 5e-12),
        lms_max_iterations=rng.randrange(1, 100),
        num_cost_points=rng.randrange(10, 500),
        correct_static_mismatch=rng.random() < 0.5,
        measure_evm_enabled=rng.random() < 0.5,
        seed=maybe(rng, rng.randrange(2**31)),
    )


def random_spectrum(rng: random.Random) -> SpectrumEstimate:
    size = rng.randrange(8, 32)
    start = rng.uniform(0.9e9, 1.1e9)
    step = rng.uniform(1e4, 1e6)
    return SpectrumEstimate(
        frequencies_hz=[start + i * step for i in range(size)],
        psd=[rng.uniform(1e-12, 1e-3) for _ in range(size)],
        resolution_hz=step,
        two_sided=rng.random() < 0.5,
    )


def random_measurements(rng: random.Random) -> TxMeasurements:
    lower = rng.uniform(-60.0, -20.0)
    upper = rng.uniform(-60.0, -20.0)
    return TxMeasurements(
        output_power=rng.uniform(0.1, 3.0),
        acpr_db={"lower_db": lower, "upper_db": upper, "worst_db": max(lower, upper)},
        occupied_bandwidth_hz=rng.uniform(5e6, 40e6),
        evm_percent=maybe(rng, rng.uniform(0.1, 20.0)),
        spectrum=random_spectrum(rng),
    )


def random_calibration(rng: random.Random) -> SkewCalibrationReport:
    return SkewCalibrationReport(
        estimated_delay_seconds=rng.uniform(50e-12, 300e-12),
        programmed_delay_seconds=rng.uniform(50e-12, 300e-12),
        true_delay_seconds=maybe(rng, rng.uniform(50e-12, 300e-12)),
        iterations=rng.randrange(1, 100),
        converged=rng.random() < 0.8,
        final_cost=rng.uniform(0.0, 1.0),
        method=rng.choice(["lms", "sine-fit"]),
    )


def random_check(rng: random.Random, name: str) -> CheckResult:
    return CheckResult(
        name=name,
        verdict=rng.choice(list(Verdict)),
        measured=maybe(rng, rng.uniform(-60.0, 60.0)),
        limit=maybe(rng, rng.uniform(-60.0, 60.0)),
        details=rng.choice(["", "within limits", "marginal"]),
    )


def random_mask_result(rng: random.Random) -> MaskCheckResult:
    violations = tuple(
        MaskViolation(
            frequency_offset_hz=rng.uniform(-40e6, 40e6),
            measured_db=rng.uniform(-80.0, 0.0),
            limit_db=rng.uniform(-60.0, 0.0),
        )
        for _ in range(rng.randrange(0, 3))
    )
    return MaskCheckResult(
        passed=not violations,
        worst_margin_db=rng.uniform(-10.0, 10.0),
        worst_offset_hz=rng.uniform(-40e6, 40e6),
        violations=violations,
    )


def random_report(rng: random.Random) -> BistReport:
    names = rng.sample(["acpr", "occupied_bandwidth", "evm", "spectral_mask"], k=rng.randrange(1, 5))
    return BistReport(
        profile_name=rng.choice(["paper-qpsk-1ghz", "uhf-8psk-400mhz"]),
        calibration=random_calibration(rng),
        measurements=random_measurements(rng),
        checks=tuple(random_check(rng, name) for name in names),
        mask_result=maybe(rng, random_mask_result(rng), probability=0.5),
    )


def random_outcome(rng: random.Random, index: int = 0) -> ScenarioOutcome:
    if rng.random() < 0.25:
        return ScenarioOutcome(
            index=index,
            label=f"scenario-{index}",
            error="RuntimeError: synthetic failure",
            traceback_text="Traceback (most recent call last): ...",
            duration_seconds=rng.uniform(0.0, 5.0),
            worker=f"pid-{rng.randrange(1000, 9999)}",
        )
    return ScenarioOutcome(
        index=index,
        label=f"scenario-{index}",
        report=random_report(rng),
        duration_seconds=rng.uniform(0.0, 5.0),
        worker=f"pid-{rng.randrange(1000, 9999)}",
        cached=rng.random() < 0.3,
    )


def random_execution(rng: random.Random) -> CampaignExecution:
    return CampaignExecution(
        outcomes=tuple(random_outcome(rng, index) for index in range(rng.randrange(1, 5)))
    )


def random_signature(rng: random.Random) -> FaultSignature:
    return FaultSignature(
        label=f"point-{rng.randrange(100)}",
        profile_name=maybe(rng, "paper-qpsk-1ghz"),
        executed=rng.random() < 0.9,
        bist_failed=rng.random() < 0.3,
        evm_percent=maybe(rng, rng.uniform(0.1, 20.0)),
        acpr_worst_db=maybe(rng, rng.uniform(-60.0, -20.0)),
        occupied_bandwidth_hz=maybe(rng, rng.uniform(5e6, 40e6)),
        mask_margin_db=maybe(rng, rng.uniform(-10.0, 10.0)),
        skew_deviation_ps=maybe(rng, rng.uniform(0.0, 10.0)),
        error=maybe(rng, "RuntimeError: synthetic", probability=0.8),
    )


def random_limits(rng: random.Random) -> TestLimits:
    return TestLimits(
        use_bist_verdict=rng.random() < 0.5,
        max_evm_percent=maybe(rng, rng.uniform(1.0, 20.0)),
        max_acpr_db=maybe(rng, rng.uniform(-60.0, -20.0)),
        max_occupied_bandwidth_hz=maybe(rng, rng.uniform(5e6, 40e6)),
        min_mask_margin_db=maybe(rng, rng.uniform(-5.0, 5.0)),
        max_skew_deviation_ps=maybe(rng, rng.uniform(0.5, 10.0)),
        flag_errors=rng.random() < 0.5,
    )


def random_adaptive_config(rng: random.Random) -> AdaptiveConfig:
    min_severity = rng.uniform(0.0, 0.3)
    return AdaptiveConfig(
        num_steps=rng.randrange(2, 64),
        min_severity=min_severity,
        max_severity=rng.uniform(min_severity + 0.1, 1.0),
        repeats_per_round=rng.randrange(1, 6),
        max_rounds_per_probe=rng.randrange(1, 4),
        detection_threshold=rng.uniform(0.2, 0.8),
        confidence=rng.uniform(0.8, 0.99),
        interval_method=rng.choice(["wilson", "clopper-pearson"]),
        strategy=rng.choice(["bisection", "probabilistic"]),
        verdict_error_rate=rng.uniform(0.0, 0.4),
        pba_stop_posterior=rng.uniform(0.7, 0.99),
        pba_max_queries=rng.randrange(1, 50),
    )


def random_probe_result(rng: random.Random) -> ProbeResult:
    trials = rng.randrange(1, 12)
    ci_low, ci_high = sorted((rng.random(), rng.random()))
    return ProbeResult(
        severity=rng.uniform(0.0, 1.0),
        num_detected=rng.randrange(0, trials + 1),
        num_trials=trials,
        ci_low=ci_low,
        ci_high=ci_high,
        decision=rng.choice(["detected", "undetected"]),
        conclusive=rng.random() < 0.7,
    )


def random_family_threshold(rng: random.Random) -> FamilyThreshold:
    grid_size = rng.randrange(2, 33)
    probes = tuple(random_probe_result(rng) for _ in range(rng.randrange(1, 5)))
    found = rng.random() < 0.7
    if found:
        threshold_index = rng.randrange(0, grid_size)
        threshold = rng.uniform(0.0, 1.0)
        ci_low, ci_high = sorted((rng.random(), rng.random()))
    else:
        threshold_index = threshold = ci_low = ci_high = None
    return FamilyThreshold(
        family=rng.choice(["pa-compression", "dcde-error", "fuzz-family"]),
        profile_name=rng.choice(["paper-qpsk-1ghz", "synthetic"]),
        found=found,
        threshold=threshold,
        threshold_index=threshold_index,
        ci_low=ci_low,
        ci_high=ci_high,
        scenarios_spent=sum(probe.num_trials for probe in probes),
        grid_size=grid_size,
        strategy=rng.choice(["bisection", "probabilistic"]),
        probes=probes,
        posterior_confidence=maybe(rng, rng.uniform(0.5, 1.0)),
    )


def random_threshold_report(rng: random.Random) -> ThresholdReport:
    return ThresholdReport(
        config=random_adaptive_config(rng),
        thresholds=tuple(
            random_family_threshold(rng) for _ in range(rng.randrange(1, 4))
        ),
    )


def random_acquisition_metadata(rng: random.Random) -> AcquisitionMetadata:
    return AcquisitionMetadata(
        kind=rng.choice(["simulated-tiadc", "captured-samples"]),
        sample_rate_hz=rng.uniform(50e6, 120e6),
        num_captures=rng.randrange(0, 8),
        programmed_delay_seconds=maybe(rng, rng.uniform(50e-12, 300e-12)),
        true_delay_seconds=maybe(rng, rng.uniform(50e-12, 300e-12)),
    )


def random_mimo_spec(rng: random.Random) -> MimoSpec:
    return MimoSpec(
        num_chains=rng.randrange(1, 5),
        tx_leakage_db=maybe(rng, rng.uniform(-60.0, -10.0)),
        tx_leakage_phase_deg=rng.uniform(-180.0, 180.0),
        shared_lo_correlation=rng.uniform(0.0, 1.0),
        shared_lo_linewidth_hz=rng.uniform(0.0, 1e5),
        gain_spread_db=rng.uniform(0.0, 6.0),
        skew_spread_seconds=rng.uniform(0.0, 100e-12),
        seed=maybe(rng, rng.randrange(2**31)),
    )


def random_importance_estimate(rng: random.Random) -> ImportanceEscapeEstimate:
    return ImportanceEscapeEstimate(
        fault_probability=rng.uniform(0.01, 0.2),
        num_trials=rng.randrange(1, 10**5),
        test_escape_rate=rng.uniform(0.0, 0.1),
        yield_loss_rate=rng.uniform(0.0, 0.1),
        faulty_pass_rate=rng.uniform(0.0, 1.0),
        standard_error=rng.uniform(0.0, 0.05),
        effective_sample_size=rng.uniform(1.0, 10**4),
        proposal_floor=rng.uniform(0.05, 1.0),
        seed=rng.randrange(2**31),
    )


#: Every fuzzed dataclass: (generator, from_dict caller, exact-equality safe).
#: Classes whose fields hold arrays/dicts compare via to_dict only.
CASES = {
    "WaveformProfile": (random_profile, WaveformProfile.from_dict, True),
    "OfdmParams": (random_ofdm_params, OfdmParams.from_dict, True),
    "TransmitterConfig": (random_transmitter_config, TransmitterConfig.from_dict, True),
    "ImpairmentConfig": (random_impairments, ImpairmentConfig.from_dict, True),
    "ConverterSpec": (random_converter_spec, ConverterSpec.from_dict, True),
    "BistConfig": (random_bist_config, BistConfig.from_dict, True),
    "SpectrumEstimate": (random_spectrum, SpectrumEstimate.from_dict, False),
    "TxMeasurements": (random_measurements, TxMeasurements.from_dict, False),
    "SkewCalibrationReport": (random_calibration, SkewCalibrationReport.from_dict, True),
    "MaskCheckResult": (random_mask_result, MaskCheckResult.from_dict, True),
    "BistReport": (random_report, BistReport.from_dict, False),
    "ScenarioOutcome": (random_outcome, ScenarioOutcome.from_dict, False),
    "CampaignExecution": (random_execution, CampaignExecution.from_dict, False),
    "FaultSignature": (random_signature, FaultSignature.from_dict, True),
    "TestLimits": (random_limits, TestLimits.from_dict, True),
    "AdaptiveConfig": (random_adaptive_config, AdaptiveConfig.from_dict, True),
    "ProbeResult": (random_probe_result, ProbeResult.from_dict, True),
    "FamilyThreshold": (random_family_threshold, FamilyThreshold.from_dict, True),
    "ThresholdReport": (random_threshold_report, ThresholdReport.from_dict, True),
    "ImportanceEscapeEstimate": (
        random_importance_estimate,
        ImportanceEscapeEstimate.from_dict,
        True,
    ),
    "AcquisitionMetadata": (
        random_acquisition_metadata,
        AcquisitionMetadata.from_dict,
        True,
    ),
    "MimoSpec": (random_mimo_spec, MimoSpec.from_dict, True),
}


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("seed", SEEDS)
class TestRoundTrip:
    def test_from_dict_to_dict_is_idempotent(self, case, seed):
        generator, from_dict, exact = CASES[case]
        original = generator(random.Random(seed))
        # Push through real JSON so only JSON-representable state survives.
        data = json.loads(json.dumps(original.to_dict()))
        rebuilt = from_dict(data)
        assert rebuilt.to_dict() == original.to_dict()
        if exact:
            assert rebuilt == original
        # Second generation of the cycle changes nothing (idempotence).
        assert from_dict(json.loads(json.dumps(rebuilt.to_dict()))).to_dict() == data

    def test_unknown_keys_are_tolerated(self, case, seed):
        generator, from_dict, _ = CASES[case]
        original = generator(random.Random(seed))
        data = json.loads(json.dumps(original.to_dict()))
        data["__introduced_by_a_newer_version__"] = {"nested": [1, 2, 3]}
        rebuilt = from_dict(data)
        assert rebuilt.to_dict() == original.to_dict()


class TestCheckResultRoundTrip:
    """CheckResult serializes name-externally (keyed in the report dict)."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip(self, seed):
        check = random_check(random.Random(seed), "acpr")
        data = json.loads(json.dumps(check.to_dict()))
        data["__future__"] = True
        assert CheckResult.from_dict("acpr", data) == check
