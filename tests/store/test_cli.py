"""End-to-end tests of the ``python -m repro.store`` command line."""

import json

import pytest

from repro.bist.runner import CampaignExecution
from repro.store import CampaignStore
from repro.store.cli import main

#: CLI round trips are quick, high-signal checks — part of the smoke set.
pytestmark = pytest.mark.smoke


def run_cli(*argv) -> int:
    return main(list(argv))


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """A store plus archive produced by one fast CLI run."""
    root = tmp_path_factory.mktemp("cli")
    store = root / "store"
    archive = root / "baseline.json"
    code = run_cli(
        "run",
        "--store", str(store),
        "--profiles", "paper-qpsk-1ghz",
        "--fast", "--quiet",
        "--output", str(archive),
    )
    assert code == 0
    return root, store, archive


class TestRunAndResume:
    def test_run_writes_store_and_archive(self, populated):
        _, store, archive = populated
        assert len(CampaignStore(store)) == 1
        execution = CampaignExecution.from_dict(json.loads(archive.read_text()))
        assert [outcome.label for outcome in execution.outcomes] == ["paper-qpsk-1ghz"]

    def test_resume_serves_hits_and_extends(self, populated, capsys):
        root, store, _ = populated
        archive = root / "extended.json"
        code = run_cli(
            "resume",
            "--store", str(store),
            "--profiles", "paper-qpsk-1ghz,uhf-8psk-400mhz",
            "--fast", "--quiet",
            "--output", str(archive),
        )
        assert code == 0
        assert "1 cache hit(s), 1 executed" in capsys.readouterr().out
        assert len(CampaignStore(store)) == 2

    def test_resume_requires_existing_store(self, tmp_path, capsys):
        code = run_cli(
            "resume",
            "--store", str(tmp_path / "missing"),
            "--profiles", "paper-qpsk-1ghz",
            "--fast", "--quiet",
        )
        assert code == 2
        assert "nothing to resume" in capsys.readouterr().err


class TestMerge:
    def test_merge_folds_sources(self, populated, tmp_path):
        _, store, _ = populated
        destination = tmp_path / "merged"
        assert run_cli("merge", "--into", str(destination), str(store)) == 0
        assert CampaignStore(destination).fingerprints() == CampaignStore(
            store
        ).fingerprints()


class TestCompare:
    def test_identical_archives_pass(self, populated, tmp_path):
        _, _, archive = populated
        drift_path = tmp_path / "drift.json"
        code = run_cli(
            "compare",
            "--baseline", str(archive),
            "--candidate", str(archive),
            "--output", str(drift_path),
        )
        assert code == 0
        drift = json.loads(drift_path.read_text())
        assert drift["passed"] is True
        assert drift["num_drifted"] == 0

    def test_injected_drift_fails_with_exit_code(self, populated, tmp_path, capsys):
        _, _, archive = populated
        data = json.loads(archive.read_text())
        measurements = data["outcomes"][0]["report"]["measurements"]
        measurements["occupied_bandwidth_hz"] += 5.0e6
        candidate = tmp_path / "drifted.json"
        candidate.write_text(json.dumps(data))
        code = run_cli("compare", "--baseline", str(archive), "--candidate", str(candidate))
        assert code == 1
        assert "occupied_bandwidth_hz" in capsys.readouterr().out

    def test_tolerance_override_can_absorb_drift(self, populated, tmp_path):
        _, _, archive = populated
        data = json.loads(archive.read_text())
        data["outcomes"][0]["report"]["measurements"]["occupied_bandwidth_hz"] += 5.0e6
        candidate = tmp_path / "drifted.json"
        candidate.write_text(json.dumps(data))
        code = run_cli(
            "compare",
            "--baseline", str(archive),
            "--candidate", str(candidate),
            "--tol-occupied-bandwidth-hz", "1e7",
        )
        assert code == 0
