"""Tests for the CampaignRunner/FaultCampaign store hook.

The acceptance contract of the persistent store: cache hits verifiably skip
execution (counters asserted, and the execution path physically disabled),
and an interrupted campaign resumed from the store produces a merged
execution bit-identical to a single uninterrupted run with the same seed.
"""

import pytest

import repro.bist.runner as runner_module

from repro.bist import BistConfig, CampaignRunner, ScenarioGrid, skew_sweep
from repro.bist.campaign import CampaignScenario
from repro.faults import FaultCampaign, IqImbalanceFault, TiadcSkewFault
from repro.store import CampaignStore
from repro.transmitter import ImpairmentConfig

FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=False,
)


def small_grid() -> tuple:
    """A 4-scenario grid: 2 impairment points x 2 converter skews."""
    return (
        ScenarioGrid()
        .add_profiles("paper-qpsk-1ghz")
        .add_impairment("nominal", ImpairmentConfig())
        .add_impairment(
            "iq-fault", IqImbalanceFault(severity=1.0).apply_transmitter(ImpairmentConfig())
        )
        .add_converters(skew_sweep([0.0, 2e-12]))
        .build()
    )


def report_dicts(execution) -> list:
    return [
        None if outcome.report is None else outcome.report.to_dict()
        for outcome in execution.outcomes
    ]


class TestCacheHits:
    def test_second_run_is_all_hits_with_identical_reports(self, tmp_path):
        scenarios = small_grid()
        first = CampaignRunner(
            bist_config=FAST_CONFIG, store=CampaignStore(tmp_path / "store")
        ).run(scenarios)
        assert first.cache_hits == 0
        assert first.cache_misses == len(scenarios)
        second = CampaignRunner(
            bist_config=FAST_CONFIG, store=CampaignStore(tmp_path / "store")
        ).run(scenarios)
        assert second.cache_hits == len(scenarios)
        assert second.cache_misses == 0
        assert report_dicts(second) == report_dicts(first)
        assert [outcome.label for outcome in second.outcomes] == [
            outcome.label for outcome in first.outcomes
        ]
        assert all(outcome.worker == "store" for outcome in second.outcomes)

    def test_cached_run_never_enters_the_execution_path(self, tmp_path, monkeypatch):
        scenarios = small_grid()
        store = CampaignStore(tmp_path / "store")
        CampaignRunner(bist_config=FAST_CONFIG, store=store).run(scenarios)

        def explode(task):
            raise AssertionError("cache hit must not execute the scenario")

        monkeypatch.setattr(runner_module, "_execute_task", explode)
        execution = CampaignRunner(
            bist_config=FAST_CONFIG, store=CampaignStore(tmp_path / "store")
        ).run(scenarios)
        assert execution.cache_hits == len(scenarios)

    def test_counters_surface_in_summary(self, tmp_path):
        scenarios = small_grid()
        store_root = tmp_path / "store"
        CampaignRunner(bist_config=FAST_CONFIG, store=CampaignStore(store_root)).run(scenarios)
        summary = (
            CampaignRunner(bist_config=FAST_CONFIG, store=CampaignStore(store_root))
            .run(scenarios)
            .summary()
        )
        assert summary.cache_hits == len(scenarios)
        assert summary.cache_misses == 0
        assert summary.to_dict()["cache_hits"] == len(scenarios)
        assert "cache hit" in summary.to_text()

    def test_runs_without_store_count_everything_as_executed(self):
        execution = CampaignRunner(bist_config=FAST_CONFIG).run(small_grid()[:2])
        assert execution.cache_hits == 0
        assert execution.cache_misses == 2
        assert execution.summary().cache_hits == 0

    def test_partial_overlap_executes_only_new_scenarios(self, tmp_path):
        scenarios = small_grid()
        store_root = tmp_path / "store"
        CampaignRunner(bist_config=FAST_CONFIG, store=CampaignStore(store_root)).run(
            scenarios[:2]
        )
        executed = []
        execution = CampaignRunner(
            bist_config=FAST_CONFIG,
            store=CampaignStore(store_root),
            progress_callback=lambda outcome: executed.append(outcome.label)
            if not outcome.cached
            else None,
        ).run(scenarios)
        assert execution.cache_hits == 2
        assert sorted(executed) == sorted(
            scenario.resolved_label() for scenario in scenarios[2:]
        )


class TestInterruptAndResume:
    def test_resumed_campaign_bit_identical_to_uninterrupted(self, tmp_path):
        scenarios = small_grid()
        uninterrupted = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)

        class Interrupt(Exception):
            pass

        completed = 0

        def kill_after_two(outcome):
            nonlocal completed
            completed += 1
            if completed == 2:
                raise Interrupt()

        with pytest.raises(Interrupt):
            CampaignRunner(
                bist_config=FAST_CONFIG,
                store=CampaignStore(tmp_path / "store"),
                progress_callback=kill_after_two,
            ).run(scenarios)

        # The two finished scenarios were flushed before the crash.
        survived = CampaignStore(tmp_path / "store")
        assert len(survived) == 2

        resumed = CampaignRunner(
            bist_config=FAST_CONFIG, store=CampaignStore(tmp_path / "store")
        ).run(scenarios)
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == 2
        assert report_dicts(resumed) == report_dicts(uninterrupted)
        assert [outcome.index for outcome in resumed.outcomes] == [
            outcome.index for outcome in uninterrupted.outcomes
        ]
        assert [outcome.label for outcome in resumed.outcomes] == [
            outcome.label for outcome in uninterrupted.outcomes
        ]

    def test_parallel_resume_matches_serial_uninterrupted(self, tmp_path):
        scenarios = small_grid()
        uninterrupted = CampaignRunner(bist_config=FAST_CONFIG).run(scenarios)
        store_root = tmp_path / "store"
        CampaignRunner(bist_config=FAST_CONFIG, store=CampaignStore(store_root)).run(
            scenarios[:2]
        )
        resumed = CampaignRunner(
            bist_config=FAST_CONFIG, store=CampaignStore(store_root), max_workers=2
        ).run(scenarios)
        assert resumed.cache_hits == 2
        assert report_dicts(resumed) == report_dicts(uninterrupted)


class TestErrorHandling:
    def test_callable_factory_with_store_raises_loudly(self, tmp_path):
        # Mirrors the picklability contract: a campaign-level factory that
        # cannot be fingerprinted is a configuration error, not a silent
        # cache bypass.
        from repro.errors import ConfigurationError

        runner = CampaignRunner(
            bist_config=FAST_CONFIG,
            converter_factory=lambda bandwidth: None,
            store=CampaignStore(tmp_path / "store"),
        )
        # A scenario without its own ConverterSpec makes the campaign-level
        # callable the effective factory.
        with pytest.raises(ConfigurationError, match="ConverterSpec"):
            runner.run((CampaignScenario(profile="paper-qpsk-1ghz"),))

    def test_errored_scenarios_are_not_cached(self, tmp_path):
        scenarios = (CampaignScenario(profile="no-such-profile"),)
        store_root = tmp_path / "store"
        first = CampaignRunner(
            bist_config=FAST_CONFIG, store=CampaignStore(store_root)
        ).run(scenarios)
        assert first.errors
        assert len(CampaignStore(store_root)) == 0
        second = CampaignRunner(
            bist_config=FAST_CONFIG, store=CampaignStore(store_root)
        ).run(scenarios)
        # The failure re-executes on resume instead of being replayed.
        assert second.cache_hits == 0
        assert second.errors


class TestFaultCampaignStore:
    @pytest.mark.slow
    def test_fault_campaign_resumes_with_identical_dictionary(self, tmp_path):
        campaign = FaultCampaign(
            profiles=["paper-qpsk-1ghz"],
            faults=[IqImbalanceFault(severity=1.0), TiadcSkewFault(severity=1.0)],
            bist_config=FAST_CONFIG,
            num_repeats=2,
            num_reference=2,
        )
        store_root = tmp_path / "store"
        first = campaign.run(store=CampaignStore(store_root))
        second = campaign.run(store=CampaignStore(store_root))
        assert second.execution.cache_hits == len(campaign)
        assert (
            second.dictionary().to_dict() == first.dictionary().to_dict()
        )
