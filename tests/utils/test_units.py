"""Tests for repro.utils.units."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils import units


class TestPowerConversions:
    def test_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_inverse(self):
        assert units.linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValidationError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValidationError):
            units.linear_to_db(-1.0)

    def test_vectorised(self):
        values = units.db_to_linear(np.array([0.0, 10.0, 20.0]))
        np.testing.assert_allclose(values, [1.0, 10.0, 100.0])

    @given(st.floats(min_value=-120.0, max_value=120.0))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_power(self, value_db):
        assert units.linear_to_db(units.db_to_linear(value_db)) == pytest.approx(value_db, abs=1e-9)

    @given(st.floats(min_value=-120.0, max_value=120.0))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_amplitude(self, value_db):
        linear = units.db_to_amplitude_ratio(value_db)
        assert units.amplitude_ratio_to_db(linear) == pytest.approx(value_db, abs=1e-9)

    def test_amplitude_vs_power_db_factor_two(self):
        # The same dB value corresponds to the square root in amplitude terms.
        assert units.db_to_amplitude_ratio(20.0) == pytest.approx(10.0)
        assert units.db_to_linear(20.0) == pytest.approx(100.0)


class TestDbmConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watt(30.0) == pytest.approx(1.0)

    def test_watt_to_dbm_round_trip(self):
        assert units.watt_to_dbm(units.dbm_to_watt(17.0)) == pytest.approx(17.0)

    def test_watt_to_dbm_rejects_zero(self):
        with pytest.raises(ValidationError):
            units.watt_to_dbm(0.0)

    def test_dbm_to_vrms_50_ohm(self):
        # 0 dBm into 50 ohm is about 223.6 mV rms.
        assert units.dbm_to_vrms(0.0) == pytest.approx(0.2236, rel=1e-3)

    def test_vrms_round_trip(self):
        assert units.vrms_to_dbm(units.dbm_to_vrms(-10.0)) == pytest.approx(-10.0)

    def test_vrms_rejects_bad_impedance(self):
        with pytest.raises(ValidationError):
            units.dbm_to_vrms(0.0, impedance_ohms=0.0)


class TestFrequencyAndTime:
    def test_prefix_helpers(self):
        assert units.khz(1.0) == 1e3
        assert units.mhz(90.0) == 90e6
        assert units.ghz(1.0) == 1e9
        assert units.hz(42.0) == 42.0

    def test_picosecond_round_trip(self):
        assert units.ps_to_seconds(units.seconds_to_ps(1.8e-10)) == pytest.approx(1.8e-10)

    def test_nanosecond_round_trip(self):
        assert units.seconds_to_ns(units.ns_to_seconds(470.0)) == pytest.approx(470.0)

    def test_period_of_1ghz(self):
        assert units.period(1e9) == pytest.approx(1e-9)

    def test_period_rejects_zero(self):
        with pytest.raises(ValidationError):
            units.period(0.0)

    def test_wavelength_of_1ghz(self):
        assert units.wavelength(1e9) == pytest.approx(0.2998, rel=1e-3)

    def test_wavelength_rejects_negative(self):
        with pytest.raises(ValidationError):
            units.wavelength(-1.0)
