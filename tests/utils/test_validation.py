"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils import validation


class TestRequire:
    def test_passes_on_true(self):
        validation.require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValidationError, match="broken"):
            validation.require(False, "broken")


class TestScalarChecks:
    def test_check_positive_accepts(self):
        assert validation.check_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValidationError):
            validation.check_positive(bad, "x")

    def test_check_non_negative_accepts_zero(self):
        assert validation.check_non_negative(0.0, "x") == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            validation.check_non_negative(-0.1, "x")

    def test_check_in_range_inclusive(self):
        assert validation.check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_check_in_range_exclusive_high(self):
        with pytest.raises(ValidationError):
            validation.check_in_range(1.0, "x", 0.0, 1.0, inclusive_high=False)

    def test_check_in_range_exclusive_low(self):
        with pytest.raises(ValidationError):
            validation.check_in_range(0.0, "x", 0.0, 1.0, inclusive_low=False)

    def test_check_probability(self):
        assert validation.check_probability(0.5, "p") == 0.5
        with pytest.raises(ValidationError):
            validation.check_probability(1.5, "p")


class TestIntegerChecks:
    def test_check_integer_accepts_int_like_float(self):
        assert validation.check_integer(4.0, "n") == 4

    def test_check_integer_rejects_fraction(self):
        with pytest.raises(ValidationError):
            validation.check_integer(4.5, "n")

    def test_check_integer_rejects_bool(self):
        with pytest.raises(ValidationError):
            validation.check_integer(True, "n")

    def test_check_integer_minimum(self):
        with pytest.raises(ValidationError):
            validation.check_integer(1, "n", minimum=2)

    def test_check_odd(self):
        assert validation.check_odd(61, "taps") == 61
        with pytest.raises(ValidationError):
            validation.check_odd(60, "taps")

    @pytest.mark.parametrize("value,ok", [(1, True), (2, True), (1024, True), (3, False), (0, False)])
    def test_check_power_of_two(self, value, ok):
        if ok:
            assert validation.check_power_of_two(value, "n") == value
        else:
            with pytest.raises(ValidationError):
                validation.check_power_of_two(value, "n")


class TestArrayChecks:
    def test_check_1d_array_converts_lists(self):
        out = validation.check_1d_array([1, 2, 3], "a")
        assert isinstance(out, np.ndarray)
        assert out.shape == (3,)

    def test_check_1d_array_rejects_2d(self):
        with pytest.raises(ValidationError):
            validation.check_1d_array(np.zeros((2, 2)), "a")

    def test_check_1d_array_min_length(self):
        with pytest.raises(ValidationError):
            validation.check_1d_array([1.0], "a", min_length=2)

    def test_check_same_length(self):
        validation.check_same_length("a", [1, 2], "b", [3, 4])
        with pytest.raises(ValidationError):
            validation.check_same_length("a", [1, 2], "b", [3])

    def test_check_choice(self):
        assert validation.check_choice("kaiser", "w", ("kaiser", "hann")) == "kaiser"
        with pytest.raises(ValidationError):
            validation.check_choice("boxcar", "w", ("kaiser", "hann"))
