"""Tests for repro.utils.windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils import windows


ALL_WINDOWS = ["kaiser", "hann", "hamming", "blackman", "rectangular"]


class TestWindowShapes:
    @pytest.mark.parametrize("name", ALL_WINDOWS)
    def test_length(self, name):
        assert len(windows.make_window(name, 61)) == 61

    @pytest.mark.parametrize("name", ALL_WINDOWS)
    def test_symmetry(self, name):
        w = windows.make_window(name, 61)
        np.testing.assert_allclose(w, w[::-1], atol=1e-12)

    @pytest.mark.parametrize("name", [n for n in ALL_WINDOWS if n != "rectangular"])
    def test_peak_at_centre(self, name):
        w = windows.make_window(name, 61)
        assert np.argmax(w) == 30

    @pytest.mark.parametrize("name", ALL_WINDOWS)
    def test_values_in_unit_interval(self, name):
        w = windows.make_window(name, 129)
        assert np.all(w <= 1.0 + 1e-12)
        assert np.all(w >= -1e-12)

    @pytest.mark.parametrize("name", ALL_WINDOWS)
    def test_single_tap_is_one(self, name):
        np.testing.assert_allclose(windows.make_window(name, 1), [1.0])

    def test_rectangular_is_all_ones(self):
        np.testing.assert_allclose(windows.rectangular_window(10), np.ones(10))

    def test_kaiser_beta_zero_is_rectangular(self):
        np.testing.assert_allclose(windows.kaiser_window(31, beta=0.0), np.ones(31))

    def test_kaiser_larger_beta_narrower(self):
        narrow = windows.kaiser_window(61, beta=12.0)
        wide = windows.kaiser_window(61, beta=2.0)
        # Higher beta concentrates energy: edge samples are smaller.
        assert narrow[0] < wide[0]

    def test_unknown_window_rejected(self):
        with pytest.raises(ValidationError):
            windows.make_window("gaussian", 11)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValidationError):
            windows.kaiser_window(0)


class TestKaiserBetaFormula:
    def test_high_attenuation_branch(self):
        assert windows.kaiser_beta_for_attenuation(60.0) == pytest.approx(0.1102 * (60.0 - 8.7))

    def test_mid_attenuation_branch(self):
        beta = windows.kaiser_beta_for_attenuation(30.0)
        assert 0.0 < beta < 5.0

    def test_low_attenuation_is_zero(self):
        assert windows.kaiser_beta_for_attenuation(10.0) == 0.0

    @given(st.floats(min_value=0.0, max_value=120.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_attenuation(self, attenuation):
        beta_low = windows.kaiser_beta_for_attenuation(attenuation)
        beta_high = windows.kaiser_beta_for_attenuation(attenuation + 5.0)
        assert beta_high >= beta_low
