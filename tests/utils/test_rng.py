"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils import ensure_generator, spawn_generators


class TestEnsureGenerator:
    def test_none_gives_generator(self):
        assert isinstance(ensure_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_generator(42).integers(0, 1000, 10)
        b = ensure_generator(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_generator(1).integers(0, 1_000_000, 20)
        b = ensure_generator(2).integers(0, 1_000_000, 20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        generator = ensure_generator(np.random.SeedSequence(5))
        assert isinstance(generator, np.random.Generator)

    def test_invalid_seed_rejected(self):
        with pytest.raises(ValidationError):
            ensure_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(7, 4)) == 4

    def test_children_are_independent(self):
        children = spawn_generators(7, 2)
        a = children[0].normal(size=50)
        b = children[1].normal(size=50)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_children_reproducible_from_int_seed(self):
        first = [g.integers(0, 10**9) for g in spawn_generators(11, 3)]
        second = [g.integers(0, 10**9) for g in spawn_generators(11, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(3), 3)
        assert len(children) == 3

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            spawn_generators(1, 0)

    def test_invalid_seed_type(self):
        with pytest.raises(ValidationError):
            spawn_generators(3.5, 2)
