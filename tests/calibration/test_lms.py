"""Tests for repro.calibration.lms (Algorithm 1)."""

import numpy as np
import pytest

from repro.calibration import LmsSkewEstimator, SkewCostFunction
from repro.errors import CalibrationError, ValidationError


DELAY = 180e-12


@pytest.fixture(scope="module")
def cost_function(request):
    fast = request.getfixturevalue("fast_sample_set")
    slow = request.getfixturevalue("slow_sample_set")
    return SkewCostFunction(fast, slow, num_evaluation_points=200, seed=5)


class TestConvergence:
    @pytest.mark.parametrize("initial_ps", [50.0, 100.0, 350.0, 400.0])
    def test_converges_from_paper_starting_points(self, cost_function, initial_ps):
        """Fig. 6: the LMS converges from 50/100/350/400 ps starting points."""
        estimator = LmsSkewEstimator(cost_function, initial_step_seconds=1e-12, max_iterations=60)
        result = estimator.estimate(initial_ps * 1e-12)
        assert result.converged
        assert abs(result.estimate - DELAY) < 0.5e-12

    def test_fast_convergence_under_20_iterations(self, cost_function):
        """The paper reports convergence in fewer than 20 iterations."""
        estimator = LmsSkewEstimator(cost_function, initial_step_seconds=1e-12, max_iterations=60)
        result = estimator.estimate(50e-12)
        assert result.iterations < 20

    def test_cost_trajectory_reaches_minimum(self, cost_function):
        estimator = LmsSkewEstimator(cost_function, initial_step_seconds=1e-12, max_iterations=60)
        result = estimator.estimate(100e-12)
        trajectory = result.cost_trajectory()
        assert trajectory[-1] < 1e-3 * trajectory[0]
        assert trajectory[-1] == pytest.approx(result.final_cost)

    def test_estimate_trajectory_ends_at_estimate(self, cost_function):
        estimator = LmsSkewEstimator(cost_function, initial_step_seconds=1e-12)
        result = estimator.estimate(350e-12)
        assert result.estimate_trajectory()[-1] == pytest.approx(result.estimate)

    def test_history_is_ordered(self, cost_function):
        estimator = LmsSkewEstimator(cost_function, initial_step_seconds=1e-12)
        result = estimator.estimate(50e-12)
        iterations = [item.iteration for item in result.history]
        assert iterations == sorted(iterations)

    def test_cost_evaluation_count_reported(self, cost_function):
        estimator = LmsSkewEstimator(cost_function, initial_step_seconds=1e-12)
        result = estimator.estimate(50e-12)
        assert result.cost_evaluations >= result.iterations


class TestBatchedProbes:
    @pytest.mark.parametrize("initial_ps", [50.0, 100.0, 350.0, 400.0])
    def test_batched_and_sequential_trajectories_identical(self, cost_function, initial_ps):
        """Batching the probe pairs must not change the accepted iterates."""
        batched = LmsSkewEstimator(
            cost_function, initial_step_seconds=1e-12, max_iterations=60, batched=True
        ).estimate(initial_ps * 1e-12)
        sequential = LmsSkewEstimator(
            cost_function, initial_step_seconds=1e-12, max_iterations=60, batched=False
        ).estimate(initial_ps * 1e-12)
        assert batched.estimate == sequential.estimate
        assert batched.iterations == sequential.iterations
        assert [item.estimate for item in batched.history] == [
            item.estimate for item in sequential.history
        ]
        assert [item.cost for item in batched.history] == [
            item.cost for item in sequential.history
        ]

    def test_batched_is_default(self, cost_function):
        assert LmsSkewEstimator(cost_function).batched is True

    def test_batched_counts_both_probes(self, cost_function):
        result = LmsSkewEstimator(
            cost_function, initial_step_seconds=1e-12, batched=True
        ).estimate(50e-12)
        # Every probe evaluates the forward and mirrored candidates together.
        assert result.cost_evaluations >= 2 * (result.iterations - 1)


class TestConfiguration:
    def test_initial_delay_outside_interval_rejected(self, cost_function):
        estimator = LmsSkewEstimator(cost_function)
        with pytest.raises(CalibrationError):
            estimator.estimate(600e-12)

    def test_zero_initial_delay_rejected(self, cost_function):
        estimator = LmsSkewEstimator(cost_function)
        with pytest.raises(ValidationError):
            estimator.estimate(0.0)

    def test_invalid_cost_function_type(self):
        with pytest.raises(ValidationError):
            LmsSkewEstimator("cost")

    def test_iteration_budget_respected(self, cost_function):
        estimator = LmsSkewEstimator(cost_function, initial_step_seconds=1e-14, max_iterations=5)
        result = estimator.estimate(50e-12)
        assert result.iterations <= 5

    def test_larger_initial_step_converges_too(self, cost_function):
        estimator = LmsSkewEstimator(cost_function, initial_step_seconds=20e-12, max_iterations=60)
        result = estimator.estimate(50e-12)
        assert abs(result.estimate - DELAY) < 1e-12
