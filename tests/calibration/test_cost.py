"""Tests for repro.calibration.cost (Eq. 8 / Eq. 9 of the paper)."""

import numpy as np
import pytest

from repro.calibration import (
    SkewCostFunction,
    default_evaluation_times,
    search_upper_bound,
    uniqueness_conditions_met,
)
from repro.errors import CalibrationError, ValidationError


DELAY = 180e-12


@pytest.fixture(scope="module")
def cost_function(request):
    fast = request.getfixturevalue("fast_sample_set")
    slow = request.getfixturevalue("slow_sample_set")
    return SkewCostFunction(fast, slow, num_evaluation_points=200, seed=17)


class TestUniquenessConditions:
    def test_paper_rate_pair_satisfies_conditions(self, fast_sample_set, slow_sample_set):
        assert uniqueness_conditions_met(fast_sample_set, slow_sample_set)

    def test_swapped_rates_rejected(self, fast_sample_set, slow_sample_set):
        with pytest.raises(ValidationError):
            uniqueness_conditions_met(slow_sample_set, fast_sample_set)

    def test_search_upper_bound_is_paper_m(self, fast_sample_set, slow_sample_set):
        """m = 483 ps for B = 90 MHz, B1 = 45 MHz at fc = 1 GHz (Section V)."""
        bound = search_upper_bound(fast_sample_set, slow_sample_set)
        assert bound == pytest.approx(483.09e-12, rel=1e-3)


class TestEvaluationTimes:
    def test_default_times_inside_overlap(self, fast_sample_set, slow_sample_set):
        times = default_evaluation_times(fast_sample_set, slow_sample_set, num_points=100, seed=1)
        assert times.size == 100
        assert times.min() > fast_sample_set.start_time
        assert times.max() < min(fast_sample_set.end_time, slow_sample_set.end_time)

    def test_reproducible_with_seed(self, fast_sample_set, slow_sample_set):
        a = default_evaluation_times(fast_sample_set, slow_sample_set, num_points=50, seed=2)
        b = default_evaluation_times(fast_sample_set, slow_sample_set, num_points=50, seed=2)
        np.testing.assert_allclose(a, b)

    def test_insufficient_overlap_rejected(self, fast_sample_set, slow_sample_set):
        with pytest.raises(CalibrationError):
            default_evaluation_times(fast_sample_set, slow_sample_set, num_taps=10_000)


class TestCostFunctionShape:
    def test_minimum_at_true_delay(self, cost_function):
        """Fig. 5: the cost is minimal exactly at D_hat = D."""
        at_truth = cost_function(DELAY)
        for offset in (-40e-12, -15e-12, 15e-12, 40e-12):
            assert cost_function(DELAY + offset) > at_truth

    def test_cost_at_truth_is_tiny(self, cost_function):
        signal_power = np.mean(cost_function.sample_set_fast.on_grid ** 2)
        assert cost_function(DELAY) < 1e-4 * signal_power

    def test_cost_grows_monotonically_away_from_minimum(self, cost_function):
        """On each side of the minimum the cost increases with distance (sampled coarsely)."""
        offsets = np.array([10e-12, 30e-12, 60e-12, 100e-12])
        right = cost_function.sweep(DELAY + offsets)
        left = cost_function.sweep(DELAY - offsets)
        assert np.all(np.diff(right) > 0)
        assert np.all(np.diff(left) > 0)

    def test_unique_minimum_over_search_interval(self, cost_function):
        """Coarse sweep over (0, m): the global minimum lands at the true delay."""
        candidates = np.linspace(20e-12, cost_function.upper_bound * 0.95, 47)
        costs = cost_function.sweep(candidates)
        best = candidates[int(np.argmin(costs))]
        assert abs(best - DELAY) < (candidates[1] - candidates[0])

    def test_candidate_outside_interval_rejected(self, cost_function):
        with pytest.raises(CalibrationError):
            cost_function(cost_function.upper_bound * 1.1)

    def test_negative_candidate_rejected(self, cost_function):
        with pytest.raises(ValidationError):
            cost_function(-1e-12)


class TestCostFunctionConfiguration:
    def test_swapped_sample_sets_rejected(self, fast_sample_set, slow_sample_set):
        with pytest.raises(ValidationError):
            SkewCostFunction(slow_sample_set, fast_sample_set)

    def test_explicit_evaluation_times_used(self, fast_sample_set, slow_sample_set):
        times = np.linspace(1e-6, 3e-6, 64)
        cost = SkewCostFunction(fast_sample_set, slow_sample_set, evaluation_times=times)
        np.testing.assert_allclose(cost.evaluation_times, times)

    def test_too_few_explicit_times_rejected(self, fast_sample_set, slow_sample_set):
        with pytest.raises(ValidationError):
            SkewCostFunction(fast_sample_set, slow_sample_set, evaluation_times=[1e-6, 2e-6])

    def test_invalid_types_rejected(self, fast_sample_set):
        with pytest.raises(ValidationError):
            SkewCostFunction(fast_sample_set, "slow")
