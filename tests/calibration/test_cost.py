"""Tests for repro.calibration.cost (Eq. 8 / Eq. 9 of the paper)."""

import numpy as np
import pytest

from repro.calibration import (
    SkewCostFunction,
    default_evaluation_times,
    search_upper_bound,
    uniqueness_conditions_met,
)
from repro.errors import CalibrationError, ValidationError


DELAY = 180e-12


@pytest.fixture(scope="module")
def cost_function(request):
    fast = request.getfixturevalue("fast_sample_set")
    slow = request.getfixturevalue("slow_sample_set")
    return SkewCostFunction(fast, slow, num_evaluation_points=200, seed=17)


class TestUniquenessConditions:
    def test_paper_rate_pair_satisfies_conditions(self, fast_sample_set, slow_sample_set):
        assert uniqueness_conditions_met(fast_sample_set, slow_sample_set)

    def test_swapped_rates_rejected(self, fast_sample_set, slow_sample_set):
        with pytest.raises(ValidationError):
            uniqueness_conditions_met(slow_sample_set, fast_sample_set)

    def test_search_upper_bound_is_paper_m(self, fast_sample_set, slow_sample_set):
        """m = 483 ps for B = 90 MHz, B1 = 45 MHz at fc = 1 GHz (Section V)."""
        bound = search_upper_bound(fast_sample_set, slow_sample_set)
        assert bound == pytest.approx(483.09e-12, rel=1e-3)


class TestEvaluationTimes:
    def test_default_times_inside_overlap(self, fast_sample_set, slow_sample_set):
        times = default_evaluation_times(fast_sample_set, slow_sample_set, num_points=100, seed=1)
        assert times.size == 100
        assert times.min() > fast_sample_set.start_time
        assert times.max() < min(fast_sample_set.end_time, slow_sample_set.end_time)

    def test_reproducible_with_seed(self, fast_sample_set, slow_sample_set):
        a = default_evaluation_times(fast_sample_set, slow_sample_set, num_points=50, seed=2)
        b = default_evaluation_times(fast_sample_set, slow_sample_set, num_points=50, seed=2)
        np.testing.assert_allclose(a, b)

    def test_insufficient_overlap_rejected(self, fast_sample_set, slow_sample_set):
        with pytest.raises(CalibrationError):
            default_evaluation_times(fast_sample_set, slow_sample_set, num_taps=10_000)


class TestCostFunctionShape:
    def test_minimum_at_true_delay(self, cost_function):
        """Fig. 5: the cost is minimal exactly at D_hat = D."""
        at_truth = cost_function(DELAY)
        for offset in (-40e-12, -15e-12, 15e-12, 40e-12):
            assert cost_function(DELAY + offset) > at_truth

    def test_cost_at_truth_is_tiny(self, cost_function):
        signal_power = np.mean(cost_function.sample_set_fast.on_grid ** 2)
        assert cost_function(DELAY) < 1e-4 * signal_power

    def test_cost_grows_monotonically_away_from_minimum(self, cost_function):
        """On each side of the minimum the cost increases with distance (sampled coarsely)."""
        offsets = np.array([10e-12, 30e-12, 60e-12, 100e-12])
        right = cost_function.sweep(DELAY + offsets)
        left = cost_function.sweep(DELAY - offsets)
        assert np.all(np.diff(right) > 0)
        assert np.all(np.diff(left) > 0)

    def test_unique_minimum_over_search_interval(self, cost_function):
        """Coarse sweep over (0, m): the global minimum lands at the true delay."""
        candidates = np.linspace(20e-12, cost_function.upper_bound * 0.95, 47)
        costs = cost_function.sweep(candidates)
        best = candidates[int(np.argmin(costs))]
        assert abs(best - DELAY) < (candidates[1] - candidates[0])

    def test_candidate_outside_interval_rejected(self, cost_function):
        with pytest.raises(CalibrationError):
            cost_function(cost_function.upper_bound * 1.1)

    def test_negative_candidate_rejected(self, cost_function):
        with pytest.raises(ValidationError):
            cost_function(-1e-12)


class TestVectorisedSweep:
    def test_sweep_matches_scalar_calls(self, cost_function):
        candidates = np.linspace(60e-12, 420e-12, 19)
        swept = cost_function.sweep(candidates)
        scalar = np.array([cost_function(delay) for delay in candidates])
        np.testing.assert_allclose(swept, scalar, rtol=1e-12)

    def test_evaluate_many_matches_sweep(self, cost_function):
        candidates = np.linspace(100e-12, 300e-12, 9)
        np.testing.assert_array_equal(
            cost_function.evaluate_many(candidates), cost_function.sweep(candidates)
        )

    def test_evaluate_many_inf_mode_flags_invalid(self, cost_function):
        bound = cost_function.upper_bound
        candidates = np.array([180e-12, bound * 1.2, 150e-12, -1e-12])
        costs = cost_function.evaluate_many(candidates, invalid="inf")
        assert np.isfinite(costs[0]) and np.isfinite(costs[2])
        assert np.isinf(costs[1]) and np.isinf(costs[3])

    def test_evaluate_many_raise_mode_propagates(self, cost_function):
        with pytest.raises(CalibrationError):
            cost_function.evaluate_many([180e-12, cost_function.upper_bound * 1.2])
        with pytest.raises(ValidationError):
            cost_function.evaluate_many([180e-12, -1e-12])

    def test_invalid_mode_name_rejected(self, cost_function):
        with pytest.raises(ValidationError):
            cost_function.evaluate_many([180e-12], invalid="nan")

    def test_plans_are_reused(self, cost_function):
        assert cost_function.plan_fast is cost_function.plan_fast
        assert cost_function.plan_fast.evaluation_times is cost_function.evaluation_times

    def test_frozen_against_silent_reconfiguration(self, cost_function):
        """Fields are compiled into the plans, so post-hoc mutation must fail."""
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            cost_function.num_taps = 80

    def test_scalar_call_dispatches_through_reconstruct_overrides(
        self, fast_sample_set, slow_sample_set
    ):
        class Doubled(SkewCostFunction):
            def reconstruct_fast(self, candidate_delay):
                return 2.0 * super().reconstruct_fast(candidate_delay)

            def reconstruct_slow(self, candidate_delay):
                return 2.0 * super().reconstruct_slow(candidate_delay)

        base = SkewCostFunction(fast_sample_set, slow_sample_set, seed=3)
        doubled = Doubled(
            fast_sample_set, slow_sample_set, evaluation_times=base.evaluation_times
        )
        assert doubled(180e-12) == pytest.approx(4.0 * base(180e-12), rel=1e-12)

    def test_batched_paths_honour_reconstruct_overrides(
        self, fast_sample_set, slow_sample_set
    ):
        """sweep/evaluate_many must not bypass overridden reconstruction hooks."""

        class Doubled(SkewCostFunction):
            def reconstruct_fast(self, candidate_delay):
                return 2.0 * super().reconstruct_fast(candidate_delay)

            def reconstruct_slow(self, candidate_delay):
                return 2.0 * super().reconstruct_slow(candidate_delay)

        doubled = Doubled(fast_sample_set, slow_sample_set, seed=3)
        candidates = np.array([150e-12, 180e-12, 210e-12])
        scalar = np.array([doubled(delay) for delay in candidates])
        np.testing.assert_allclose(doubled.sweep(candidates), scalar, rtol=1e-12)
        # The batched LMS mode therefore stays consistent with sequential
        # mode for subclasses too.
        from repro.calibration import LmsSkewEstimator

        batched = LmsSkewEstimator(doubled, initial_step_seconds=1e-12, batched=True)
        sequential = LmsSkewEstimator(doubled, initial_step_seconds=1e-12, batched=False)
        result_batched = batched.estimate(150e-12)
        result_sequential = sequential.estimate(150e-12)
        assert [i.estimate for i in result_batched.history] == [
            i.estimate for i in result_sequential.history
        ]

    def test_reconstructions_match_reference_path(self, cost_function):
        """The plan-backed reconstructions agree with the pre-plan oracle."""
        from repro.sampling import reference_evaluate

        for delay in (120e-12, 180e-12, 250e-12):
            np.testing.assert_allclose(
                cost_function.reconstruct_fast(delay),
                reference_evaluate(
                    cost_function.sample_set_fast, cost_function.evaluation_times, delay
                ),
                rtol=1e-9,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                cost_function.reconstruct_slow(delay),
                reference_evaluate(
                    cost_function.sample_set_slow, cost_function.evaluation_times, delay
                ),
                rtol=1e-9,
                atol=1e-12,
            )


class TestCostFunctionConfiguration:
    def test_swapped_sample_sets_rejected(self, fast_sample_set, slow_sample_set):
        with pytest.raises(ValidationError):
            SkewCostFunction(slow_sample_set, fast_sample_set)

    def test_explicit_evaluation_times_used(self, fast_sample_set, slow_sample_set):
        times = np.linspace(1e-6, 3e-6, 64)
        cost = SkewCostFunction(fast_sample_set, slow_sample_set, evaluation_times=times)
        np.testing.assert_allclose(cost.evaluation_times, times)

    def test_too_few_explicit_times_rejected(self, fast_sample_set, slow_sample_set):
        with pytest.raises(ValidationError):
            SkewCostFunction(fast_sample_set, slow_sample_set, evaluation_times=[1e-6, 2e-6])

    def test_invalid_types_rejected(self, fast_sample_set):
        with pytest.raises(ValidationError):
            SkewCostFunction(fast_sample_set, "slow")
