"""Tests for repro.calibration.sine_fit (the Jamal-style baseline)."""

import numpy as np
import pytest

from repro.calibration import SineFitSkewEstimator, fit_sine_phase
from repro.errors import CalibrationError, ValidationError
from repro.sampling import BandpassBand, IdealNonuniformSampler
from repro.signals import single_tone


BAND = BandpassBand.from_centre(1.0e9, 90.0e6)
DELAY = 180e-12


def acquire_tone(tone_frequency, delay=DELAY, num_samples=400):
    tone = single_tone(tone_frequency, amplitude=0.9)
    sampler = IdealNonuniformSampler(BAND, delay=delay)
    return sampler.acquire(tone, num_samples=num_samples)


class TestSineFitPrimitive:
    def test_amplitude_and_phase_recovered(self):
        rate = 90e6
        n = np.arange(512)
        amplitude, phase = 0.7, 0.9
        samples = amplitude * np.cos(2 * np.pi * 7e6 * n / rate + phase)
        fit_amplitude, fit_phase = fit_sine_phase(samples, rate, 7e6)
        assert fit_amplitude == pytest.approx(amplitude, rel=1e-6)
        assert fit_phase == pytest.approx(phase, abs=1e-6)

    def test_dc_offset_ignored(self):
        rate = 90e6
        n = np.arange(512)
        samples = 0.5 * np.cos(2 * np.pi * 5e6 * n / rate) + 0.3
        amplitude, phase = fit_sine_phase(samples, rate, 5e6)
        assert amplitude == pytest.approx(0.5, rel=1e-6)
        assert phase == pytest.approx(0.0, abs=1e-6)

    def test_short_record_rejected(self):
        with pytest.raises(ValidationError):
            fit_sine_phase(np.ones(4), 1e6, 1e3)


class TestSineFitSkewEstimator:
    def test_folded_frequency_and_inversion(self):
        estimator = SineFitSkewEstimator(tone_frequency_hz=991e6)
        folded, inverted = estimator.folded_frequency(90e6)
        assert folded == pytest.approx(1e6)
        assert not inverted

    def test_folded_frequency_with_inversion(self):
        # 1.033 GHz mod 90 MHz = 43 MHz < 45 MHz... choose a tone that folds with inversion.
        estimator = SineFitSkewEstimator(tone_frequency_hz=1.037e9)
        folded, inverted = estimator.folded_frequency(90e6)
        assert folded == pytest.approx(90e6 - (1.037e9 % 90e6))
        assert inverted

    @pytest.mark.parametrize("fraction", [0.23, 0.4, 0.46])
    def test_estimates_delay_of_clean_tone(self, fraction):
        tone_frequency = BAND.f_low + fraction * BAND.bandwidth
        estimator = SineFitSkewEstimator(tone_frequency_hz=tone_frequency)
        sample_set = acquire_tone(tone_frequency)
        result = estimator.estimate(sample_set)
        assert result.estimate == pytest.approx(DELAY, abs=1e-12)

    def test_channel_amplitudes_reported(self):
        tone_frequency = BAND.f_low + 0.4 * BAND.bandwidth
        estimator = SineFitSkewEstimator(tone_frequency_hz=tone_frequency)
        result = estimator.estimate(acquire_tone(tone_frequency))
        assert result.channel_amplitudes[0] == pytest.approx(0.9, rel=0.05)
        assert result.channel_amplitudes[1] == pytest.approx(0.9, rel=0.05)

    def test_requires_known_tone_fails_on_wrong_frequency(self):
        """Assuming the wrong tone frequency corrupts the estimate - the known-stimulus
        requirement the paper criticises."""
        true_tone = BAND.f_low + 0.40 * BAND.bandwidth
        assumed_tone = BAND.f_low + 0.45 * BAND.bandwidth
        estimator = SineFitSkewEstimator(tone_frequency_hz=assumed_tone)
        result = estimator.estimate(acquire_tone(true_tone))
        assert abs(result.estimate - DELAY) > 5e-12

    def test_tone_folding_to_dc_rejected(self):
        # A tone at an exact multiple of the sample rate folds to DC.
        tone_frequency = 90e6 * 11.0
        estimator = SineFitSkewEstimator(tone_frequency_hz=tone_frequency)
        sample_set = acquire_tone(tone_frequency + 100.0)  # fold to ~100 Hz << 1/record
        with pytest.raises(CalibrationError):
            estimator.estimate(sample_set)

    def test_invalid_sample_set_type(self):
        estimator = SineFitSkewEstimator(tone_frequency_hz=1e9)
        with pytest.raises(ValidationError):
            estimator.estimate("samples")

    def test_modulated_signal_breaks_the_method(self, fast_sample_set):
        """Fed the operational (modulated) signal instead of a known tone, the
        sine-fit estimate is far off - unlike the LMS method."""
        tone_frequency = BAND.f_low + 0.4 * BAND.bandwidth
        estimator = SineFitSkewEstimator(tone_frequency_hz=tone_frequency)
        result = estimator.estimate(fast_sample_set)
        assert abs(result.estimate - DELAY) > 2e-12
