"""Tests for repro.calibration.gain_offset."""

import numpy as np
import pytest

from repro.adc import AdcChannel, BpTiadc, ChannelMismatch, DigitallyControlledDelayElement, UniformQuantizer
from repro.calibration import correct_gain_offset, estimate_gain_offset
from repro.errors import CalibrationError, ValidationError
from repro.sampling import BandpassBand
from repro.signals import multitone_in_band


BAND = BandpassBand.from_centre(1.0e9, 90.0e6)
SIGNAL = multitone_in_band(BAND.centre - 7e6, BAND.centre + 7e6, 7, amplitude=0.25, seed=9)


def acquire_with_mismatch(offset1=0.08, gain_error1=0.05, num_samples=2048):
    adc = BpTiadc(
        sample_rate=90e6,
        dcde=DigitallyControlledDelayElement(),
        channel0=AdcChannel(quantizer=UniformQuantizer(14, 2.0), seed=1),
        channel1=AdcChannel(
            quantizer=UniformQuantizer(14, 2.0),
            mismatch=ChannelMismatch(offset=offset1, gain_error=gain_error1),
            seed=2,
        ),
        seed=11,
    )
    adc.program_delay(180e-12)
    return adc.acquire(SIGNAL, BAND, num_samples=num_samples)


class TestEstimation:
    def test_offsets_recovered(self):
        sample_set = acquire_with_mismatch(offset1=0.08)
        estimate = estimate_gain_offset(sample_set)
        assert estimate.offset0 == pytest.approx(0.0, abs=5e-3)
        assert estimate.offset1 == pytest.approx(0.08, abs=5e-3)

    def test_relative_gain_recovered(self):
        sample_set = acquire_with_mismatch(gain_error1=0.05)
        estimate = estimate_gain_offset(sample_set)
        assert estimate.relative_gain == pytest.approx(1.05, rel=0.01)

    def test_matched_channels_report_unity(self):
        sample_set = acquire_with_mismatch(offset1=0.0, gain_error1=0.0)
        estimate = estimate_gain_offset(sample_set)
        assert estimate.relative_gain == pytest.approx(1.0, rel=0.01)
        assert estimate.offset1 == pytest.approx(0.0, abs=5e-3)

    def test_silent_channel_rejected(self, fast_sample_set):
        silent = fast_sample_set.with_channels(
            np.zeros_like(fast_sample_set.on_grid), fast_sample_set.delayed
        )
        with pytest.raises(CalibrationError):
            estimate_gain_offset(silent)

    def test_invalid_type(self):
        with pytest.raises(ValidationError):
            estimate_gain_offset("samples")


class TestCorrection:
    def test_correction_removes_mismatch(self):
        sample_set = acquire_with_mismatch(offset1=0.08, gain_error1=0.05)
        corrected = correct_gain_offset(sample_set)
        assert abs(np.mean(corrected.delayed)) < 5e-3
        assert np.std(corrected.delayed) == pytest.approx(np.std(corrected.on_grid), rel=0.02)

    def test_correction_preserves_metadata(self):
        sample_set = acquire_with_mismatch()
        corrected = correct_gain_offset(sample_set)
        assert corrected.delay == pytest.approx(sample_set.delay)
        assert corrected.sample_period == pytest.approx(sample_set.sample_period)

    def test_explicit_estimate_honoured(self):
        sample_set = acquire_with_mismatch(offset1=0.08, gain_error1=0.0)
        estimate = estimate_gain_offset(sample_set)
        corrected = correct_gain_offset(sample_set, estimate)
        assert abs(np.mean(corrected.delayed)) < 5e-3
