"""Tests for repro.transmitter.config."""

import json
import pickle

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.rf import DcOffset, IqImbalance, PolynomialAmplifier, RappAmplifier
from repro.signals import get_profile
from repro.transmitter import ImpairmentConfig, TransmitterConfig


class TestImpairmentConfig:
    def test_ideal_default(self):
        config = ImpairmentConfig.ideal()
        assert config.iq_imbalance.is_ideal
        assert config.dc_offset.is_ideal
        assert config.phase_noise.is_ideal
        assert config.output_snr_db is None

    def test_with_amplifier(self):
        amplifier = RappAmplifier(gain_db=0.0, saturation_amplitude=0.5)
        config = ImpairmentConfig().with_amplifier(amplifier)
        assert config.amplifier is amplifier
        # Other fields untouched
        assert config.iq_imbalance.is_ideal

    def test_dac_override_field(self):
        from repro.transmitter import TransmitDac

        config = ImpairmentConfig(dac=TransmitDac(resolution_bits=6))
        assert config.dac.resolution_bits == 6
        assert ImpairmentConfig().dac is None

    def test_bad_dac_rejected(self):
        with pytest.raises(ConfigurationError):
            ImpairmentConfig(dac="not a dac")

    def test_bad_filter_scale_rejected(self):
        with pytest.raises(ReproError):
            ImpairmentConfig(output_filter_bandwidth_scale=0.0)


class TestTransmitterConfig:
    def test_paper_default_matches_section_v(self):
        config = TransmitterConfig.paper_default()
        assert config.carrier_frequency_hz == pytest.approx(1e9)
        assert config.symbol_rate_hz == pytest.approx(10e6)
        assert config.modulation == "qpsk"
        assert config.rolloff == pytest.approx(0.5)

    def test_envelope_sample_rate(self):
        config = TransmitterConfig.paper_default()
        assert config.envelope_sample_rate == pytest.approx(160e6)

    def test_occupied_bandwidth(self):
        config = TransmitterConfig.paper_default()
        assert config.occupied_bandwidth_hz == pytest.approx(15e6)

    def test_from_profile(self):
        profile = get_profile("uhf-8psk-400mhz")
        config = TransmitterConfig.from_profile(profile)
        assert config.carrier_frequency_hz == pytest.approx(profile.carrier_frequency_hz)
        assert config.modulation == profile.modulation
        assert config.rolloff == pytest.approx(profile.rolloff)

    def test_custom_impairments_carried(self):
        impairments = ImpairmentConfig(iq_imbalance=IqImbalance(gain_imbalance_db=1.0))
        config = TransmitterConfig.paper_default(impairments=impairments)
        assert config.impairments.iq_imbalance.gain_imbalance_db == pytest.approx(1.0)

    def test_invalid_rolloff(self):
        with pytest.raises(ReproError):
            TransmitterConfig(rolloff=1.5)

    def test_envelope_rate_above_carrier_rejected(self):
        with pytest.raises(ConfigurationError):
            TransmitterConfig(carrier_frequency_hz=50e6, symbol_rate_hz=10e6, samples_per_symbol=16)

    def test_invalid_samples_per_symbol(self):
        with pytest.raises(ReproError):
            TransmitterConfig(samples_per_symbol=1)


class TestSerialization:
    def test_impairment_json_roundtrip(self):
        config = ImpairmentConfig(
            amplifier=RappAmplifier(gain_db=0.0, saturation_amplitude=0.75, smoothness=1.2),
            iq_imbalance=IqImbalance(gain_imbalance_db=2.5, phase_imbalance_deg=15.0),
            dc_offset=DcOffset(i_offset=0.05),
            output_snr_db=30.0,
        )
        restored = ImpairmentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config

    def test_complex_amplifier_coefficients_roundtrip(self):
        config = ImpairmentConfig(amplifier=PolynomialAmplifier(a3=-0.5 + 0.05j))
        restored = ImpairmentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored.amplifier.a3 == config.amplifier.a3
        assert restored == config

    def test_dac_and_filter_scale_roundtrip(self):
        from repro.transmitter import TransmitDac

        config = ImpairmentConfig(
            dac=TransmitDac(resolution_bits=6, inl_fraction_lsb=0.5),
            output_filter_bandwidth_scale=0.25,
        )
        restored = ImpairmentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config

    def test_legacy_payload_without_new_fields(self):
        payload = ImpairmentConfig().to_dict()
        del payload["dac"]
        del payload["output_filter_bandwidth_scale"]
        restored = ImpairmentConfig.from_dict(payload)
        assert restored.dac is None
        assert restored.output_filter_bandwidth_scale == 1.0

    def test_unknown_amplifier_type_rejected(self):
        payload = ImpairmentConfig().to_dict()
        payload["amplifier"]["type"] = "FluxCapacitorAmplifier"
        with pytest.raises(ConfigurationError):
            ImpairmentConfig.from_dict(payload)

    def test_missing_amplifier_type_rejected(self):
        payload = ImpairmentConfig().to_dict()
        del payload["amplifier"]["type"]
        with pytest.raises(ConfigurationError):
            ImpairmentConfig.from_dict(payload)

    def test_transmitter_config_json_roundtrip(self):
        config = TransmitterConfig.from_profile(
            get_profile("uhf-8psk-400mhz"),
            impairments=ImpairmentConfig(iq_imbalance=IqImbalance(gain_imbalance_db=1.0)),
            seed=7,
        )
        restored = TransmitterConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config
        assert restored.envelope_sample_rate == pytest.approx(config.envelope_sample_rate)

    def test_transmitter_config_picklable(self):
        config = TransmitterConfig.paper_default(
            impairments=ImpairmentConfig().with_amplifier(RappAmplifier(saturation_amplitude=0.6))
        )
        assert pickle.loads(pickle.dumps(config)) == config
