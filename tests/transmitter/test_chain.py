"""Tests for repro.transmitter.chain (the homodyne transmitter)."""

import numpy as np
import pytest

from repro.dsp import welch_psd, band_power
from repro.errors import ConfigurationError, ValidationError
from repro.rf import IqImbalance, RappAmplifier
from repro.transmitter import HomodyneTransmitter, ImpairmentConfig, TransmitterConfig


class TestTransmission:
    def test_burst_metadata(self, paper_burst):
        assert paper_burst.carrier_frequency == pytest.approx(1e9)
        assert paper_burst.symbols.size == 64
        assert paper_burst.duration == pytest.approx(64 / 10e6)

    def test_output_power_close_to_configured(self, paper_burst):
        assert paper_burst.output_envelope.mean_power() == pytest.approx(1.0, rel=0.25)

    def test_ideal_envelope_is_unit_power(self, paper_burst):
        assert paper_burst.ideal_envelope.mean_power() == pytest.approx(1.0, rel=1e-6)

    def test_deterministic_with_seed(self):
        a = HomodyneTransmitter(TransmitterConfig.paper_default(seed=5)).transmit(32)
        b = HomodyneTransmitter(TransmitterConfig.paper_default(seed=5)).transmit(32)
        np.testing.assert_array_equal(a.symbol_indices, b.symbol_indices)
        np.testing.assert_allclose(a.output_envelope.samples, b.output_envelope.samples)

    def test_different_seeds_differ(self):
        a = HomodyneTransmitter(TransmitterConfig.paper_default(seed=1)).transmit(32)
        b = HomodyneTransmitter(TransmitterConfig.paper_default(seed=2)).transmit(32)
        assert not np.array_equal(a.symbol_indices, b.symbol_indices)

    def test_explicit_symbols(self):
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default())
        indices = np.tile(np.arange(4), 8)
        burst = transmitter.transmit(symbol_indices=indices)
        np.testing.assert_array_equal(burst.symbol_indices, indices)

    def test_too_few_symbols_rejected(self):
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default())
        with pytest.raises(ConfigurationError):
            transmitter.transmit(symbol_indices=np.zeros(4, dtype=int))

    def test_transmit_for_duration(self):
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default())
        burst = transmitter.transmit_for_duration(5e-6)
        assert burst.duration >= 5e-6

    def test_invalid_duration(self):
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default())
        with pytest.raises(ConfigurationError):
            transmitter.transmit_for_duration(0.0)

    def test_invalid_config_type(self):
        with pytest.raises(ValidationError):
            HomodyneTransmitter("config")


class TestImpairmentHooks:
    def test_impairment_dac_is_used(self):
        from repro.transmitter import TransmitDac

        config = TransmitterConfig.paper_default(
            impairments=ImpairmentConfig(dac=TransmitDac(resolution_bits=3, full_scale=4.0)),
            seed=7,
        )
        coarse = HomodyneTransmitter(config).transmit(64)
        clean = HomodyneTransmitter(TransmitterConfig.paper_default(seed=7)).transmit(64)
        # The 3-bit DAC visibly distorts the envelope relative to the ideal.
        error = coarse.output_envelope.samples - clean.output_envelope.samples
        assert np.sqrt(np.mean(np.abs(error) ** 2)) > 0.05

    def test_explicit_dac_argument_wins(self):
        from repro.transmitter import TransmitDac

        config = TransmitterConfig.paper_default(
            impairments=ImpairmentConfig(dac=TransmitDac(resolution_bits=3, full_scale=4.0)),
            seed=7,
        )
        explicit = HomodyneTransmitter(config, dac=TransmitDac()).transmit(64)
        clean = HomodyneTransmitter(TransmitterConfig.paper_default(seed=7)).transmit(64)
        np.testing.assert_allclose(
            explicit.output_envelope.samples, clean.output_envelope.samples
        )

    def test_filter_drift_narrows_output(self):
        drifted_config = TransmitterConfig.paper_default(
            impairments=ImpairmentConfig(output_filter_bandwidth_scale=0.06),
            seed=9,
        )
        clean_config = TransmitterConfig.paper_default(seed=9)
        drifted = HomodyneTransmitter(drifted_config).transmit(128)
        clean = HomodyneTransmitter(clean_config).transmit(128)
        # The narrowed filter removes part of the SRRC spectrum: the band-edge
        # power drops while the ideal pulse-shaped reference is unchanged.
        rate = drifted.output_envelope.sample_rate
        drifted_psd = welch_psd(drifted.output_envelope.samples, rate, segment_length=512)
        clean_psd = welch_psd(clean.output_envelope.samples, rate, segment_length=512)
        edge = band_power(drifted_psd, 5.0e6, 7.5e6)
        clean_edge = band_power(clean_psd, 5.0e6, 7.5e6)
        assert edge < 0.5 * clean_edge


class TestSpectralBehaviour:
    def test_spectrum_centred_on_envelope_baseband(self, paper_burst):
        """The complex envelope spectrum is centred near DC with ~15 MHz occupancy."""
        envelope = paper_burst.output_envelope
        estimate = welch_psd(envelope.samples, envelope.sample_rate, segment_length=1024)
        in_band = band_power(estimate, -8e6, 8e6)
        out_band = band_power(estimate, 20e6, 70e6) + band_power(estimate, -70e6, -20e6)
        assert in_band > 50.0 * out_band

    def test_pa_compression_creates_regrowth(self):
        saturated = ImpairmentConfig().with_amplifier(
            RappAmplifier(gain_db=0.0, saturation_amplitude=1.05, smoothness=2.0)
        )
        clean_tx = HomodyneTransmitter(TransmitterConfig.paper_default(seed=3))
        dirty_tx = HomodyneTransmitter(TransmitterConfig.paper_default(impairments=saturated, seed=3))
        clean = clean_tx.transmit(256).output_envelope
        dirty = dirty_tx.transmit(256).output_envelope
        clean_psd = welch_psd(clean.samples, clean.sample_rate, segment_length=2048)
        dirty_psd = welch_psd(dirty.samples, dirty.sample_rate, segment_length=2048)
        clean_oob = band_power(clean_psd, 15e6, 40e6)
        dirty_oob = band_power(dirty_psd, 15e6, 40e6)
        assert dirty_oob > 3.0 * clean_oob

    def test_iq_imbalance_degrades_constellation(self):
        impaired_config = ImpairmentConfig(
            iq_imbalance=IqImbalance(gain_imbalance_db=1.5, phase_imbalance_deg=8.0)
        )
        transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(impairments=impaired_config, seed=4))
        burst = transmitter.transmit(128)
        # The impaired envelope differs from the ideal one significantly.
        difference = np.mean(
            np.abs(burst.output_envelope.samples - burst.ideal_envelope.samples) ** 2
        )
        assert difference > 1e-3

    def test_rf_output_band_contains_carrier(self, paper_burst):
        low, high = paper_burst.rf_output.band
        assert low < 1e9 < high
