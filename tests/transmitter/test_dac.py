"""Tests for repro.transmitter.dac."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.signals import ComplexEnvelope
from repro.transmitter import TransmitDac


def ramp_envelope(num=1024, rate=100e6, amplitude=1.0):
    ramp = np.linspace(-amplitude, amplitude, num)
    return ComplexEnvelope(ramp + 1j * ramp[::-1], rate)


class TestQuantisation:
    def test_high_resolution_nearly_transparent(self):
        envelope = ramp_envelope()
        converted = TransmitDac(resolution_bits=14, full_scale=2.0).convert(envelope)
        error = np.max(np.abs(converted.samples - envelope.samples))
        assert error < 2.0 * 2.0 * 2.0 / 2**14

    def test_coarse_resolution_visible(self):
        envelope = ramp_envelope()
        converted = TransmitDac(resolution_bits=4, full_scale=2.0).convert(envelope)
        unique_levels = np.unique(np.round(converted.samples.real, 9))
        assert unique_levels.size <= 2**4

    def test_clipping_at_full_scale(self):
        envelope = ramp_envelope(amplitude=5.0)
        dac = TransmitDac(resolution_bits=12, full_scale=1.0)
        converted = dac.convert(envelope)
        assert np.max(converted.samples.real) <= 1.0
        assert np.min(converted.samples.real) >= -1.0

    def test_step_size(self):
        dac = TransmitDac(resolution_bits=10, full_scale=1.0)
        assert dac.step_size == pytest.approx(2.0 / 1024)

    def test_type_check(self):
        with pytest.raises(ValidationError):
            TransmitDac().convert(np.ones(16))


class TestInl:
    def test_inl_bow_shape(self):
        dac = TransmitDac(resolution_bits=12, full_scale=1.0, inl_fraction_lsb=2.0)
        ideal = TransmitDac(resolution_bits=12, full_scale=1.0)
        envelope = ramp_envelope(amplitude=0.9)
        error = dac.convert(envelope).samples.real - ideal.convert(envelope).samples.real
        # The bow peaks near mid scale and vanishes at zero input.
        peak = np.max(np.abs(error))
        assert peak == pytest.approx(2.0 * dac.step_size, rel=0.05)
        mid_index = np.argmin(np.abs(envelope.samples.real))
        assert abs(error[mid_index]) < 0.1 * dac.step_size

    def test_zero_inl_is_pure_quantisation(self):
        dac = TransmitDac(resolution_bits=10, full_scale=1.0, inl_fraction_lsb=0.0)
        converted = dac.convert(ramp_envelope(amplitude=0.9)).samples.real
        assert np.allclose(converted / dac.step_size, np.round(converted / dac.step_size))

    def test_inl_creates_odd_order_distortion(self):
        # A pure tone through the bow gains a visible third harmonic; the
        # tone sits exactly on an FFT bin so the harmonics do too.
        rate = 100e6
        num = 4096
        cycles = 25
        t = np.arange(num) / rate
        tone = 0.8 * np.cos(2 * np.pi * (cycles * rate / num) * t)
        envelope = ComplexEnvelope(tone + 0j * tone, rate)
        bowed = TransmitDac(resolution_bits=14, full_scale=1.0, inl_fraction_lsb=8.0)
        clean = TransmitDac(resolution_bits=14, full_scale=1.0)
        spectrum = np.abs(np.fft.rfft(bowed.convert(envelope).samples.real))
        clean_spectrum = np.abs(np.fft.rfft(clean.convert(envelope).samples.real))
        assert spectrum[3 * cycles] > 10.0 * clean_spectrum[3 * cycles]
        assert spectrum[3 * cycles] < spectrum[cycles]


class TestAnalogStages:
    def test_reconstruction_filter_removes_high_frequency(self):
        rate = 100e6
        t = np.arange(4096) / rate
        wanted = np.exp(2j * np.pi * 2e6 * t)
        spurious = 0.5 * np.exp(2j * np.pi * 45e6 * t)
        envelope = ComplexEnvelope(wanted + spurious, rate)
        dac = TransmitDac(resolution_bits=14, full_scale=4.0, reconstruction_cutoff_hz=10e6)
        converted = dac.convert(envelope)
        # The 45 MHz image is suppressed; wanted tone power (1.0) remains.
        assert converted.mean_power() == pytest.approx(1.0, rel=0.05)

    def test_zero_order_hold_droop_attenuates_band_edge(self):
        rate = 100e6
        t = np.arange(4096) / rate
        edge_tone = ComplexEnvelope(np.exp(2j * np.pi * 45e6 * t), rate)
        dac = TransmitDac(resolution_bits=14, full_scale=4.0, apply_zero_order_hold_droop=True)
        converted = dac.convert(edge_tone)
        assert converted.mean_power() < 0.75 * edge_tone.mean_power()

    def test_droop_negligible_at_low_frequency(self):
        rate = 100e6
        t = np.arange(4096) / rate
        low_tone = ComplexEnvelope(np.exp(2j * np.pi * 1e6 * t), rate)
        dac = TransmitDac(resolution_bits=14, full_scale=4.0, apply_zero_order_hold_droop=True)
        converted = dac.convert(low_tone)
        assert converted.mean_power() == pytest.approx(low_tone.mean_power(), rel=0.01)
