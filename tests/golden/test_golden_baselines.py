"""Golden-baseline regression vectors for the full BIST.

``campaign_baseline.json`` is a committed :class:`CampaignExecution`
archive: full BIST reports (PSD arrays included) for two waveform profiles
plus one injected-fault scenario, produced with a fixed seed.  The tier-1
test re-runs the identical campaign and gates the fresh reports against the
stored ones through :class:`repro.store.BaselineComparator` — the software
equivalent of the paper's repeatable stored-reference loopback measurement.

``ofdm_baseline.json`` is the multicarrier counterpart: full EVM-enabled
reports (per-subcarrier EVM and spectral flatness included) for both OFDM
profiles plus one injected IQ-imbalance fault under OFDM.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/golden/test_golden_baselines.py

and review the diff of the committed JSON like any other code change.
"""

import copy
import json
import pathlib

import pytest

from repro.bist import BistConfig, CampaignRunner, CampaignScenario
from repro.bist.runner import CampaignExecution, ScenarioOutcome
from repro.faults import IqImbalanceFault
from repro.store import BaselineComparator
from repro.transmitter import ImpairmentConfig

GOLDEN_DIR = pathlib.Path(__file__).parent
BASELINE_PATH = GOLDEN_DIR / "campaign_baseline.json"
OFDM_BASELINE_PATH = GOLDEN_DIR / "ofdm_baseline.json"

#: Reduced-but-complete engine settings (EVM measured, all checks active).
GOLDEN_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
    measure_evm_enabled=True,
)


def golden_scenarios() -> tuple:
    """The committed campaign: 2 nominal profiles + 1 fault scenario."""
    fault = IqImbalanceFault(severity=1.0)
    nominal = CampaignScenario(profile="paper-qpsk-1ghz")
    return (
        nominal,
        CampaignScenario(profile="uhf-8psk-400mhz"),
        fault.apply_scenario(nominal, label="paper-qpsk-1ghz/iq-imbalance-s1"),
    )


def build_execution() -> CampaignExecution:
    """Run the golden campaign fresh (deterministic under the fixed seed)."""
    return CampaignRunner(bist_config=GOLDEN_CONFIG).run(golden_scenarios())


def load_baseline() -> CampaignExecution:
    """The committed golden execution."""
    return CampaignExecution.from_dict(json.loads(BASELINE_PATH.read_text()))


def ofdm_golden_scenarios() -> tuple:
    """The committed OFDM campaign: 2 nominal OFDM profiles + 1 fault."""
    fault = IqImbalanceFault(severity=1.0)
    nominal = CampaignScenario(profile="ofdm-uhf-qpsk-400mhz")
    return (
        nominal,
        CampaignScenario(profile="ofdm-lband-16qam-1p5ghz"),
        fault.apply_scenario(nominal, label="ofdm-uhf-qpsk-400mhz/iq-imbalance-s1"),
    )


def build_ofdm_execution() -> CampaignExecution:
    """Run the OFDM golden campaign fresh (deterministic under the seed)."""
    return CampaignRunner(bist_config=GOLDEN_CONFIG).run(ofdm_golden_scenarios())


def load_ofdm_baseline() -> CampaignExecution:
    """The committed OFDM golden execution."""
    return CampaignExecution.from_dict(json.loads(OFDM_BASELINE_PATH.read_text()))


@pytest.mark.smoke
class TestGoldenBaselines:
    def test_baseline_loads_and_round_trips(self):
        baseline = load_baseline()
        assert [outcome.label for outcome in baseline.outcomes] == [
            "paper-qpsk-1ghz",
            "uhf-8psk-400mhz",
            "paper-qpsk-1ghz/iq-imbalance-s1",
        ]
        assert all(outcome.ok for outcome in baseline.outcomes)
        rebuilt = CampaignExecution.from_dict(baseline.to_dict())
        assert rebuilt.to_dict() == baseline.to_dict()

    def test_fresh_run_agrees_with_golden_baseline(self):
        comparison = BaselineComparator().compare(load_baseline(), build_execution())
        assert comparison.passed, comparison.to_text()
        # Every scenario contributed its metric set (6 numeric + verdict for
        # the EVM-measured profiles; the 8PSK profile also measures EVM).
        assert comparison.num_compared >= 3 * 6

    def test_comparator_flags_injected_drift_against_golden(self):
        baseline = load_baseline()
        data = copy.deepcopy(baseline.to_dict())
        measurements = data["outcomes"][0]["report"]["measurements"]
        measurements["occupied_bandwidth_hz"] += 5.0e6
        drifted = CampaignExecution.from_dict(data)
        comparison = BaselineComparator().compare(baseline, drifted)
        assert not comparison.passed
        assert [(entry.label, entry.metric) for entry in comparison.drifted] == [
            ("paper-qpsk-1ghz", "occupied_bandwidth_hz")
        ]


@pytest.mark.smoke
class TestOfdmGoldenBaselines:
    def test_ofdm_baseline_loads_and_round_trips(self):
        baseline = load_ofdm_baseline()
        assert [outcome.label for outcome in baseline.outcomes] == [
            "ofdm-uhf-qpsk-400mhz",
            "ofdm-lband-16qam-1p5ghz",
            "ofdm-uhf-qpsk-400mhz/iq-imbalance-s1",
        ]
        assert all(outcome.ok for outcome in baseline.outcomes)
        # The archived OFDM reports carry the per-subcarrier measurements.
        for outcome in baseline.outcomes:
            measurements = outcome.report.measurements
            assert measurements.per_subcarrier_evm_percent is not None
            assert measurements.spectral_flatness_db is not None
        rebuilt = CampaignExecution.from_dict(baseline.to_dict())
        assert rebuilt.to_dict() == baseline.to_dict()

    def test_fresh_ofdm_run_agrees_with_golden_baseline(self):
        comparison = BaselineComparator().compare(load_ofdm_baseline(), build_ofdm_execution())
        assert comparison.passed, comparison.to_text()
        # Seven gated metrics per scenario (flatness included) plus verdict.
        assert comparison.num_compared >= 3 * 7

    def test_comparator_flags_flatness_drift_against_ofdm_golden(self):
        baseline = load_ofdm_baseline()
        data = copy.deepcopy(baseline.to_dict())
        measurements = data["outcomes"][0]["report"]["measurements"]
        measurements["spectral_flatness_db"] += 3.0
        drifted = CampaignExecution.from_dict(data)
        comparison = BaselineComparator().compare(baseline, drifted)
        assert not comparison.passed
        assert [(entry.label, entry.metric) for entry in comparison.drifted] == [
            ("ofdm-uhf-qpsk-400mhz", "spectral_flatness_db")
        ]


def regenerate() -> None:
    """Rewrite the committed baselines from fresh runs."""
    for path, build in (
        (BASELINE_PATH, build_execution),
        (OFDM_BASELINE_PATH, build_ofdm_execution),
    ):
        execution = build()
        for outcome in execution.outcomes:
            assert outcome.ok, f"golden scenario {outcome.label!r} errored: {outcome.error}"
        path.write_text(
            json.dumps(execution.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
        )
        print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    regenerate()
