"""Tests for repro.mimo.matrix: the per-TX×RX full-BIST verdict grid.

The acceptance scenario of the 2T2R campaign: a fault injected into chain 1
only (TX2) must fail every TX2 combination while TX1 stays green, and a
matrix replayed through recorded captures must be bit-identical to the
simulated run it recorded.
"""

import pytest

from repro.adc.acquisition import (
    CapturedSamplesSource,
    RecordingSource,
    SimulatedTiadcSource,
)
from repro.bist import BistConfig, ConverterSpec
from repro.bist.report import CampaignSummary
from repro.errors import ConfigurationError, ValidationError
from repro.mimo import (
    ChannelMatrixReport,
    MimoSpec,
    MimoTransmitter,
    derive_matrix_seed,
    run_channel_matrix,
)
from repro.rf import RappAmplifier
from repro.transmitter import ImpairmentConfig, TransmitterConfig

#: Reduced-size engine configuration: large enough for reliable spectral
#: estimation, small enough to keep a 4-combination matrix around a second.
FAST = BistConfig(
    num_samples_fast=512,
    num_samples_slow=256,
    lms_max_iterations=40,
    num_cost_points=120,
    measure_evm_enabled=False,
)

#: Receive-path spec with low skew jitter, so healthy margins clear the
#: spectral mask for every derived per-combination converter seed.
QUIET = ConverterSpec(skew_jitter_rms_seconds=1.0e-12)


def faulty_transmitter() -> MimoTransmitter:
    """A 2T2R array with a saturating PA on chain 1 (TX2) only."""
    impaired = ImpairmentConfig().with_amplifier(
        RappAmplifier(gain_db=0.0, saturation_amplitude=0.75, smoothness=1.2)
    )
    return MimoTransmitter(
        base_config=TransmitterConfig.paper_default(),
        spec=MimoSpec(num_chains=2),
        chain_overrides=[None, {"impairments": impaired}],
    )


@pytest.fixture(scope="module")
def healthy_matrix() -> ChannelMatrixReport:
    transmitter = MimoTransmitter(
        base_config=TransmitterConfig.paper_default(), spec=MimoSpec(num_chains=2)
    )
    return run_channel_matrix(transmitter, config=FAST, rx_specs=QUIET, seed=7)


@pytest.fixture(scope="module")
def recorded_faulty_run() -> tuple:
    """One faulty-TX2 matrix run recorded at the acquisition seam."""
    recorders = {}

    def recording_factory(tx_index, rx_index, spec, bandwidth):
        source = RecordingSource(SimulatedTiadcSource(spec.build(bandwidth)))
        recorders[(tx_index, rx_index)] = source
        return source

    report = run_channel_matrix(
        faulty_transmitter(),
        config=FAST,
        rx_specs=QUIET,
        seed=7,
        source_factory=recording_factory,
    )
    captures = {key: source.capture() for key, source in recorders.items()}
    return report, captures


class TestHealthyMatrix:
    def test_all_four_combinations_pass(self, healthy_matrix):
        assert healthy_matrix.num_tx == 2
        assert healthy_matrix.num_rx == 2
        assert healthy_matrix.all_passed
        assert healthy_matrix.failures() == []

    def test_entries_cover_every_combination(self, healthy_matrix):
        labels = {entry.label for entry in healthy_matrix.entries}
        assert labels == {"TX1/RX1", "TX1/RX2", "TX2/RX1", "TX2/RX2"}

    def test_entries_carry_power_and_margins(self, healthy_matrix):
        for entry in healthy_matrix.entries:
            assert entry.output_power > 0.0
            assert entry.worst_margin is not None
            assert entry.worst_margin[1] > 0.0

    def test_table_renders_the_grid(self, healthy_matrix):
        table = healthy_matrix.to_table()
        assert "channel matrix (2 TX x 2 RX)" in table
        assert "TX1" in table and "RX2" in table
        assert "FAIL" not in table

    def test_round_trips_through_dict(self, healthy_matrix):
        rebuilt = ChannelMatrixReport.from_dict(healthy_matrix.to_dict())
        assert rebuilt.to_dict() == healthy_matrix.to_dict()


class TestFaultyTx2Matrix:
    def test_tx2_fails_tx1_passes(self, recorded_faulty_run):
        report, _ = recorded_faulty_run
        assert not report.all_passed
        assert set(report.failures()) == {"TX2/RX1", "TX2/RX2"}
        assert report.entry(1, 1).passed and report.entry(1, 2).passed
        assert not report.entry(2, 1).passed and not report.entry(2, 2).passed

    def test_summary_feeds_the_campaign_report_section(self, recorded_faulty_run):
        report, _ = recorded_faulty_run
        summary = CampaignSummary.from_entries(
            [(entry.label, entry.report) for entry in report.entries],
            channel_matrix=report.summary(),
        )
        text = summary.to_text()
        assert "channel matrix: 2 TX x 2 RX (4 combination(s))" in text
        assert "FAIL at TX2/RX1, TX2/RX2" in text

    def test_replay_is_bit_identical_to_the_recorded_run(self, recorded_faulty_run):
        report, captures = recorded_faulty_run

        def replay_factory(tx_index, rx_index, spec, bandwidth):
            return CapturedSamplesSource(captures[(tx_index, rx_index)])

        replayed = run_channel_matrix(
            faulty_transmitter(),
            config=FAST,
            rx_specs=QUIET,
            seed=7,
            source_factory=replay_factory,
        )
        assert replayed.to_dict() == report.to_dict()


class TestMatrixSeeds:
    def test_every_cell_draws_a_distinct_seed(self):
        seeds = {
            derive_matrix_seed(7, tx, rx) for tx in range(2) for rx in range(2)
        }
        assert len(seeds) == 4

    def test_none_base_seed_stays_none(self):
        assert derive_matrix_seed(None, 1, 1) is None


class TestValidation:
    def test_transmitter_type_is_checked(self):
        with pytest.raises(ValidationError, match="MimoTransmitter"):
            run_channel_matrix("not-a-transmitter")

    def test_rx_specs_length_must_match_num_rx(self):
        transmitter = MimoTransmitter(spec=MimoSpec(num_chains=2))
        with pytest.raises(ConfigurationError, match="rx_specs"):
            run_channel_matrix(transmitter, rx_specs=[QUIET, QUIET], num_rx=3)

    def test_rx_specs_entries_are_type_checked(self):
        transmitter = MimoTransmitter(spec=MimoSpec(num_chains=2))
        with pytest.raises(ValidationError, match="ConverterSpec"):
            run_channel_matrix(transmitter, rx_specs=["not-a-spec"])
