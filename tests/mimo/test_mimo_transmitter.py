"""Tests for repro.mimo.transmitter: multi-chain coupling and fault hooks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.faults import ChannelSpreadFault, SharedLoCorrelationFault, TxLeakageFault
from repro.mimo import MimoSpec, MimoTransmitter, derive_chain_seed
from repro.rf import RappAmplifier
from repro.transmitter import HomodyneTransmitter, ImpairmentConfig, TransmitterConfig

BASE = TransmitterConfig.paper_default(seed=11)


class TestMimoSpec:
    def test_defaults_describe_an_uncoupled_2t2r_array(self):
        spec = MimoSpec()
        assert spec.num_chains == 2
        assert spec.leakage_coefficient == 0.0
        assert not np.any(spec.chain_gain_offsets_db())
        assert not np.any(spec.chain_skew_offsets_seconds())

    def test_validation(self):
        with pytest.raises(ValidationError):
            MimoSpec(num_chains=0)
        with pytest.raises(ConfigurationError):
            MimoSpec(shared_lo_correlation=1.5)
        with pytest.raises(ConfigurationError):
            MimoSpec(tx_leakage_db=float("inf"))

    def test_leakage_coefficient_magnitude_and_phase(self):
        spec = MimoSpec(tx_leakage_db=-20.0, tx_leakage_phase_deg=90.0)
        coefficient = spec.leakage_coefficient
        assert np.isclose(abs(coefficient), 0.1)
        assert np.isclose(coefficient.imag, 0.1)

    def test_spread_offsets_are_symmetric(self):
        spec = MimoSpec(num_chains=3, gain_spread_db=6.0)
        offsets = spec.chain_gain_offsets_db()
        assert np.allclose(offsets, [-3.0, 0.0, 3.0])

    def test_round_trips_through_dict(self):
        spec = MimoSpec(tx_leakage_db=-25.0, gain_spread_db=2.0, seed=3)
        assert MimoSpec.from_dict(spec.to_dict()) == spec


class TestChainSeeds:
    def test_chain_zero_keeps_the_base_seed(self):
        assert derive_chain_seed(42, 0) == 42

    def test_chains_draw_distinct_deterministic_seeds(self):
        seeds = [derive_chain_seed(42, index) for index in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [derive_chain_seed(42, index) for index in range(4)]

    def test_none_base_seed_stays_none(self):
        assert derive_chain_seed(None, 3) is None


class TestMimoTransmitter:
    def test_default_spec_is_bit_identical_to_independent_chains(self):
        mimo = MimoTransmitter(base_config=BASE, spec=MimoSpec(num_chains=2))
        transmission = mimo.transmit(num_symbols=64)
        for index in range(2):
            config = mimo.configs[index]
            solo = HomodyneTransmitter(config).transmit(num_symbols=64)
            np.testing.assert_array_equal(
                transmission.chain(index).output_envelope.samples,
                solo.output_envelope.samples,
            )

    def test_chains_transmit_independent_symbol_streams(self):
        mimo = MimoTransmitter(base_config=BASE, spec=MimoSpec(num_chains=2))
        transmission = mimo.transmit(num_symbols=64)
        assert not np.array_equal(
            transmission.chain(0).symbols, transmission.chain(1).symbols
        )

    def test_dict_override_patches_one_chain_and_derives_its_seed(self):
        impaired = ImpairmentConfig().with_amplifier(
            RappAmplifier(gain_db=0.0, saturation_amplitude=0.75, smoothness=1.2)
        )
        mimo = MimoTransmitter(
            base_config=BASE,
            spec=MimoSpec(num_chains=2),
            chain_overrides=[None, {"impairments": impaired}],
        )
        assert mimo.configs[0].impairments != impaired
        assert mimo.configs[1].impairments == impaired
        assert mimo.configs[1].seed == derive_chain_seed(BASE.seed, 1)

    def test_too_many_overrides_are_rejected(self):
        with pytest.raises(ConfigurationError, match="override"):
            MimoTransmitter(spec=MimoSpec(num_chains=2), chain_overrides=[None] * 3)

    def test_gain_spread_scales_chain_power(self):
        spread = MimoSpec(num_chains=2, gain_spread_db=6.0)
        coupled = MimoTransmitter(base_config=BASE, spec=spread).transmit(num_symbols=64)
        flat = MimoTransmitter(base_config=BASE, spec=MimoSpec(num_chains=2)).transmit(
            num_symbols=64
        )
        ratios = [
            np.mean(np.abs(coupled.chain(i).output_envelope.samples) ** 2)
            / np.mean(np.abs(flat.chain(i).output_envelope.samples) ** 2)
            for i in range(2)
        ]
        # -3 dB on chain 0, +3 dB on chain 1.
        assert np.isclose(ratios[0], 10.0 ** (-3.0 / 10.0))
        assert np.isclose(ratios[1], 10.0 ** (+3.0 / 10.0))

    def test_leakage_mixes_the_other_chain_in(self):
        leaky = MimoSpec(num_chains=2, tx_leakage_db=-20.0)
        coupled = MimoTransmitter(base_config=BASE, spec=leaky).transmit(num_symbols=64)
        clean = MimoTransmitter(base_config=BASE, spec=MimoSpec(num_chains=2)).transmit(
            num_symbols=64
        )
        residual = (
            coupled.chain(0).output_envelope.samples
            - clean.chain(0).output_envelope.samples
        )
        expected = leaky.leakage_coefficient * clean.chain(1).output_envelope.samples
        np.testing.assert_allclose(residual, expected, rtol=1e-12, atol=1e-12)

    def test_shared_lo_rotation_is_common_mode(self):
        spec = MimoSpec(
            num_chains=2, shared_lo_correlation=1.0, shared_lo_linewidth_hz=50e3, seed=9
        )
        coupled = MimoTransmitter(base_config=BASE, spec=spec).transmit(num_symbols=64)
        clean = MimoTransmitter(base_config=BASE, spec=MimoSpec(num_chains=2)).transmit(
            num_symbols=64
        )
        rotations = [
            coupled.chain(i).output_envelope.samples
            / clean.chain(i).output_envelope.samples
            for i in range(2)
        ]
        # Both chains see the same unit-magnitude phase realisation.
        np.testing.assert_allclose(np.abs(rotations[0]), 1.0, rtol=1e-9)
        np.testing.assert_allclose(rotations[0], rotations[1], rtol=1e-9)


class TestMimoFaultHooks:
    def test_zero_severity_is_identity(self):
        spec = MimoSpec()
        for fault in (
            TxLeakageFault(severity=0.0),
            SharedLoCorrelationFault(severity=0.0),
            ChannelSpreadFault(severity=0.0),
        ):
            assert fault.apply_mimo(spec) == spec

    def test_tx_leakage_fault_patches_coupling(self):
        patched = TxLeakageFault(severity=1.0, phase_deg=45.0).apply_mimo(MimoSpec())
        assert patched.tx_leakage_db == -12.0
        assert patched.tx_leakage_phase_deg == 45.0

    def test_shared_lo_fault_patches_correlation(self):
        patched = SharedLoCorrelationFault(severity=0.5).apply_mimo(MimoSpec())
        assert patched.shared_lo_correlation == 0.5
        assert patched.shared_lo_linewidth_hz == 40.0e3

    def test_channel_spread_fault_patches_spreads(self):
        patched = ChannelSpreadFault(severity=0.5).apply_mimo(MimoSpec())
        assert patched.gain_spread_db == 3.0
        assert patched.skew_spread_seconds == 40.0e-12

    def test_faults_compose_onto_one_spec(self):
        spec = MimoSpec()
        for fault in (
            TxLeakageFault(severity=1.0),
            SharedLoCorrelationFault(severity=1.0),
            ChannelSpreadFault(severity=1.0),
        ):
            spec = fault.apply_mimo(spec)
        assert spec.tx_leakage_db == -12.0
        assert spec.shared_lo_correlation == 1.0
        assert spec.gain_spread_db == 6.0
