"""Metamorphic tests: streaming Welch accumulation is bit-identical to batch.

The central claim of :class:`repro.monitor.StreamingAccumulator` is not
"close": it is *equality* with :func:`repro.dsp.welch_psd` for every
partition of the record into blocks.  These tests assert `np.array_equal`
(no tolerance) over randomised seeded block partitions, both domains, and
several segment-length / overlap combinations — plus the tail-accounting
ledger and the short-record clamp fallback.
"""

import numpy as np
import pytest

from repro.dsp import welch_psd
from repro.errors import MeasurementError, MeasurementWarning, ValidationError
from repro.monitor import StreamingAccumulator

RATE = 1.0e6


def random_record(size: int, seed: int, complex_domain: bool) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if complex_domain:
        return rng.standard_normal(size) + 1j * rng.standard_normal(size)
    return rng.standard_normal(size)


def random_partition(record: np.ndarray, seed: int, max_block: int = 700):
    """Split a record into random-size consecutive blocks (seeded)."""
    rng = np.random.default_rng(seed)
    start = 0
    while start < record.size:
        size = int(rng.integers(1, max_block + 1))
        yield record[start : start + size]
        start += size


class TestBitIdentity:
    @pytest.mark.parametrize("complex_domain", [False, True])
    @pytest.mark.parametrize(
        "segment_length,overlap", [(64, 0.5), (128, 0.0), (256, 0.75)]
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_block_partitions_equal_batch(
        self, complex_domain, segment_length, overlap, seed
    ):
        record = random_record(5000, seed=100 + seed, complex_domain=complex_domain)
        accumulator = StreamingAccumulator(
            RATE, segment_length=segment_length, overlap_fraction=overlap
        )
        accumulator.extend(random_partition(record, seed=seed))
        streamed = accumulator.finalize()
        batch = welch_psd(
            record, RATE, segment_length=segment_length, overlap_fraction=overlap
        )
        assert np.array_equal(streamed.psd, batch.psd)
        assert np.array_equal(streamed.frequencies_hz, batch.frequencies_hz)
        assert streamed.resolution_hz == batch.resolution_hz
        assert streamed.two_sided == batch.two_sided

    def test_single_sample_blocks_equal_whole_record(self):
        record = random_record(1200, seed=7, complex_domain=True)
        one_shot = StreamingAccumulator(RATE, segment_length=128)
        one_shot.ingest(record)
        dribbled = StreamingAccumulator(RATE, segment_length=128)
        dribbled.extend(record[i : i + 1] for i in range(record.size))
        assert np.array_equal(one_shot.spectrum().psd, dribbled.spectrum().psd)

    def test_snapshot_matches_batch_of_covered_prefix(self):
        # A mid-stream spectrum() equals batch over the samples covered by
        # the segments accumulated so far.
        record = random_record(1000, seed=3, complex_domain=False)
        accumulator = StreamingAccumulator(RATE, segment_length=256, overlap_fraction=0.5)
        accumulator.ingest(record)
        covered = (accumulator.segments_accumulated - 1) * accumulator.step + 256
        batch = welch_psd(record[:covered], RATE, segment_length=256)
        assert np.array_equal(accumulator.spectrum().psd, batch.psd)

    def test_non_dyadic_segment_and_overlap(self):
        record = random_record(3000, seed=11, complex_domain=True)
        accumulator = StreamingAccumulator(RATE, segment_length=100, overlap_fraction=0.3)
        accumulator.extend(random_partition(record, seed=11, max_block=137))
        batch = welch_psd(record, RATE, segment_length=100, overlap_fraction=0.3)
        assert np.array_equal(accumulator.finalize().psd, batch.psd)


class TestTailAccounting:
    def test_counters_track_segments_and_tail(self):
        accumulator = StreamingAccumulator(RATE, segment_length=64, overlap_fraction=0.5)
        assert accumulator.step == 32
        accumulator.ingest(np.zeros(100))
        # one segment (64), buffer keeps 100 - 32 = 68 ≥ 64 → second segment,
        # buffer keeps 36 < 64.
        assert accumulator.segments_accumulated == 2
        assert accumulator.pending_samples == 36
        # covered = (2-1)*32 + 64 = 96; tail = 100 - 96 = 4
        assert accumulator.tail_samples == 4
        assert accumulator.samples_ingested == 100

    def test_tail_before_first_segment_is_everything(self):
        accumulator = StreamingAccumulator(RATE, segment_length=64)
        accumulator.ingest(np.zeros(10))
        assert accumulator.tail_samples == 10
        assert accumulator.pending_samples == 10

    def test_tail_matches_what_batch_would_drop(self):
        record = random_record(777, seed=5, complex_domain=False)
        accumulator = StreamingAccumulator(RATE, segment_length=128, overlap_fraction=0.5)
        accumulator.ingest(record)
        segments = accumulator.segments_accumulated
        covered = (segments - 1) * accumulator.step + 128
        assert accumulator.tail_samples == record.size - covered
        assert accumulator.tail_samples < accumulator.step + 128

    def test_reset_clears_everything(self):
        accumulator = StreamingAccumulator(RATE, segment_length=64)
        accumulator.ingest(random_record(200, seed=1, complex_domain=False))
        accumulator.reset()
        assert accumulator.samples_ingested == 0
        assert accumulator.segments_accumulated == 0
        assert accumulator.pending_samples == 0
        with pytest.raises(MeasurementError, match="no complete Welch segment"):
            accumulator.spectrum()


class TestClampFallback:
    def test_short_stream_finalize_matches_batch_including_warning(self):
        record = random_record(50, seed=9, complex_domain=True)
        accumulator = StreamingAccumulator(RATE, segment_length=256)
        accumulator.extend((record[:20], record[20:]))
        with pytest.warns(MeasurementWarning, match="clamp"):
            streamed = accumulator.finalize()
        with pytest.warns(MeasurementWarning, match="clamp"):
            batch = welch_psd(record, RATE, segment_length=256)
        assert np.array_equal(streamed.psd, batch.psd)
        assert np.array_equal(streamed.frequencies_hz, batch.frequencies_hz)

    def test_too_short_stream_raises(self):
        accumulator = StreamingAccumulator(RATE, segment_length=64)
        accumulator.ingest(np.zeros(4))
        with pytest.raises(MeasurementError, match="too short"):
            accumulator.finalize()

    def test_empty_stream_raises(self):
        accumulator = StreamingAccumulator(RATE, segment_length=64)
        with pytest.raises(MeasurementError):
            accumulator.finalize()


class TestValidation:
    def test_mixed_domains_rejected(self):
        accumulator = StreamingAccumulator(RATE, segment_length=64)
        accumulator.ingest(np.zeros(10))
        with pytest.raises(ValidationError, match="share one domain"):
            accumulator.ingest(np.zeros(10, dtype=complex))

    def test_two_dimensional_blocks_rejected(self):
        accumulator = StreamingAccumulator(RATE, segment_length=64)
        with pytest.raises(ValidationError, match="one-dimensional"):
            accumulator.ingest(np.zeros((4, 4)))

    def test_empty_block_is_a_no_op(self):
        accumulator = StreamingAccumulator(RATE, segment_length=64)
        assert accumulator.ingest(np.array([])) == 0
        assert accumulator.samples_ingested == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            StreamingAccumulator(0.0, segment_length=64)
        with pytest.raises(ValidationError):
            StreamingAccumulator(RATE, segment_length=4)
        with pytest.raises(ValidationError):
            StreamingAccumulator(RATE, overlap_fraction=1.0)
