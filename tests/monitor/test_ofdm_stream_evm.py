"""Tests for OFDM streaming EVM and the ``evm_skipped_reason`` contract.

The streaming monitor used to drop EVM silently for OFDM bursts (the
single-carrier reference refused them) and for any window that was too
short — ``evm_percent=None`` with no explanation.  These tests pin the fix:
every unmeasured window carries an explicit reason, and OFDM windows large
enough for whole symbols are demodulated through the batch OFDM path.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.monitor import (
    OfdmSymbolReference,
    StreamingMonitor,
    SymbolReference,
    iter_blocks,
    windowed_ofdm_evm,
)
from repro.signals.standards import get_profile
from repro.transmitter import HomodyneTransmitter, TransmitterConfig


@pytest.fixture(scope="module")
def ofdm_burst():
    config = TransmitterConfig.from_profile(get_profile("ofdm-uhf-qpsk-400mhz"), seed=3)
    return HomodyneTransmitter(config).transmit(num_symbols=512)


class TestOfdmSymbolReference:
    def test_from_transmission_captures_the_grid(self, ofdm_burst):
        reference = OfdmSymbolReference.from_transmission(ofdm_burst)
        params = ofdm_burst.config.ofdm
        assert reference.reference_grid.shape[1] == params.num_subcarriers
        assert reference.oversampling == ofdm_burst.config.samples_per_symbol
        assert reference.samples_per_symbol == params.symbol_length * reference.oversampling

    def test_single_carrier_bursts_are_refused(self):
        burst = HomodyneTransmitter(TransmitterConfig.paper_default(seed=4)).transmit(
            num_symbols=64
        )
        with pytest.raises(ValidationError, match="OFDM burst"):
            OfdmSymbolReference.from_transmission(burst)

    def test_symbol_reference_points_at_the_ofdm_variant(self, ofdm_burst):
        with pytest.raises(ValidationError, match="OfdmSymbolReference"):
            SymbolReference.from_transmission(ofdm_burst)


class TestWindowedOfdmEvm:
    def test_clean_envelope_demodulates_with_low_evm(self, ofdm_burst):
        reference = OfdmSymbolReference.from_transmission(ofdm_burst)
        envelope = ofdm_burst.output_envelope
        evm, reason = windowed_ofdm_evm(
            envelope.samples,
            envelope.sample_rate,
            float(envelope.start_time),
            reference,
        )
        assert reason is None
        assert evm is not None and evm < 1.0

    def test_short_window_returns_an_explicit_reason(self, ofdm_burst):
        reference = OfdmSymbolReference.from_transmission(ofdm_burst)
        envelope = ofdm_burst.output_envelope
        short = envelope.samples[: reference.samples_per_symbol]
        evm, reason = windowed_ofdm_evm(
            short, envelope.sample_rate, float(envelope.start_time), reference
        )
        assert evm is None
        assert "whole OFDM symbol" in reason

    def test_result_is_invariant_to_window_offset_bookkeeping(self, ofdm_burst):
        # A window starting mid-stream demodulates the same symbols it covers.
        reference = OfdmSymbolReference.from_transmission(ofdm_burst)
        envelope = ofdm_burst.output_envelope
        offset = 3 * reference.samples_per_symbol
        start = float(envelope.start_time) + offset / envelope.sample_rate
        evm, reason = windowed_ofdm_evm(
            envelope.samples[offset:], envelope.sample_rate, start, reference
        )
        assert reason is None
        assert evm < 1.0


class TestStreamingMonitorOfdm:
    @pytest.fixture(scope="class")
    def report(self, ofdm_burst):
        monitor = StreamingMonitor.from_transmission(
            ofdm_burst, window_samples=1024, segment_length=128
        )
        monitor.ingest_stream(iter_blocks(ofdm_burst.output_envelope.samples, 160))
        return monitor.report()

    def test_windows_measure_ofdm_evm(self, report):
        measured = [w for w in report.windows if w.evm_percent is not None]
        assert measured
        for window in measured:
            assert window.evm_percent < 1.0
            assert window.evm_skipped_reason is None

    def test_report_dict_carries_the_skip_reason_field(self, report):
        payload = report.to_dict()
        assert all("evm_skipped_reason" in window for window in payload["windows"])


class TestSkipReasons:
    def test_no_reference_is_an_explicit_reason(self, ofdm_burst):
        monitor = StreamingMonitor.from_transmission(
            ofdm_burst, window_samples=1024, segment_length=128, measure_evm=False
        )
        monitor.ingest(ofdm_burst.output_envelope.samples[:1024])
        (window,) = monitor.windows
        assert window.evm_percent is None
        assert window.evm_skipped_reason == "no symbol reference attached"

    def test_real_streams_report_why_evm_is_missing(self, ofdm_burst):
        monitor = StreamingMonitor.from_transmission(
            ofdm_burst, window_samples=1024, segment_length=128
        )
        monitor.ingest(np.real(ofdm_burst.output_envelope.samples[:1024]))
        (window,) = monitor.windows
        assert window.evm_percent is None
        assert "complex-envelope" in window.evm_skipped_reason

    def test_too_small_ofdm_window_reports_symbol_shortfall(self, ofdm_burst):
        reference = OfdmSymbolReference.from_transmission(ofdm_burst)
        window_samples = reference.samples_per_symbol  # one symbol: not enough
        monitor = StreamingMonitor.from_transmission(
            ofdm_burst, window_samples=window_samples, segment_length=32
        )
        monitor.ingest(ofdm_burst.output_envelope.samples[:window_samples])
        (window,) = monitor.windows
        assert window.evm_percent is None
        assert "whole OFDM symbol" in window.evm_skipped_reason

    def test_short_single_carrier_window_reports_symbol_shortfall(self):
        burst = HomodyneTransmitter(TransmitterConfig.paper_default(seed=4)).transmit(
            num_symbols=256
        )
        monitor = StreamingMonitor.from_transmission(
            burst, window_samples=64, segment_length=16
        )
        monitor.ingest(burst.output_envelope.samples[:64])
        (window,) = monitor.windows
        assert window.evm_percent is None
        assert "fewer than" in window.evm_skipped_reason
