"""Sequential drift-detector tests: latency, false alarms, chart mechanics.

Alarm latency and false-alarm rate are the detector's tested figures of
merit (not just documentation): a drift ramp must alarm within a bounded
number of windows past onset, and stationary seeded noise must raise zero
alarms across many independent streams.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.monitor import (
    MONITORED_METRICS,
    DriftDetector,
    DriftDetectorConfig,
)
from repro.store import BaselineTolerances


def feed_power(detector: DriftDetector, values) -> list:
    alarms = []
    for value in values:
        alarms.extend(detector.update({"output_power": float(value)}))
    return alarms


class TestConfig:
    def test_defaults_validate(self):
        config = DriftDetectorConfig()
        assert config.method == "cusum"
        assert config.warmup_windows == 5

    def test_round_trip_with_nested_tolerances(self):
        config = DriftDetectorConfig(
            method="ewma",
            threshold=2.5,
            ewma_alpha=0.2,
            tolerances=BaselineTolerances(output_power_rel=0.05),
        )
        rebuilt = DriftDetectorConfig.from_dict(config.to_dict())
        assert rebuilt == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"method": "sprt"},
            {"threshold": 0.0},
            {"drift_reference": -1.0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"warmup_windows": -1},
            {"noise_multiplier": -0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            DriftDetectorConfig(**kwargs)


class TestWarmupAndBaselines:
    def test_baseline_learned_as_warmup_mean(self):
        detector = DriftDetector(DriftDetectorConfig(warmup_windows=4))
        feed_power(detector, [1.0, 1.2, 0.8, 1.0])
        assert detector.baselines()["output_power"] == pytest.approx(1.0)
        # Other metrics never saw a value and are still warming up.
        assert detector.baselines()["evm_percent"] is None

    def test_no_alarms_during_warmup_even_on_huge_values(self):
        detector = DriftDetector(DriftDetectorConfig(warmup_windows=5))
        alarms = feed_power(detector, [1.0, 100.0, 1.0, 50.0])
        assert alarms == []

    def test_explicit_baseline_skips_learning(self):
        detector = DriftDetector(
            DriftDetectorConfig(warmup_windows=0, threshold=3.0),
            baseline={"output_power": 1.0},
        )
        assert detector.baselines()["output_power"] == 1.0
        # With zero warm-up the scale is the pure one-shot tolerance, so a
        # large excursion alarms immediately once the CUSUM accumulates.
        alarms = feed_power(detector, [10.0, 10.0])
        assert len(alarms) == 1
        assert alarms[0].metric == "output_power"

    def test_unknown_baseline_metric_rejected(self):
        with pytest.raises(ValidationError, match="unknown baseline metric"):
            DriftDetector(baseline={"nonsense": 1.0})

    def test_none_values_are_skipped(self):
        detector = DriftDetector(DriftDetectorConfig(warmup_windows=2))
        detector.update({"output_power": 1.0, "evm_percent": None})
        detector.update({"output_power": 1.0})
        assert detector.baselines()["output_power"] == 1.0
        assert detector.baselines()["evm_percent"] is None
        assert detector.windows_observed == 2


class TestAlarmBehaviour:
    def make_detector(self, **config_overrides) -> DriftDetector:
        kwargs = dict(warmup_windows=5, threshold=5.0, noise_multiplier=3.0)
        kwargs.update(config_overrides)
        return DriftDetector(DriftDetectorConfig(**kwargs))

    def stationary(self, seed: int, n: int, scale: float = 0.01) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return 1.0 + scale * rng.standard_normal(n)

    def test_zero_false_alarms_over_stationary_seeds(self):
        # 20 independent stationary streams of 40 windows: no alarms at all.
        for seed in range(20):
            detector = self.make_detector()
            alarms = feed_power(detector, self.stationary(seed, 40))
            assert alarms == [], f"false alarm on stationary seed {seed}"

    @pytest.mark.parametrize("method,max_latency", [("cusum", 10), ("ewma", 15)])
    def test_alarm_latency_bounded_on_drift_ramp(self, method, max_latency):
        # Stationary for 15 windows, then a ramp of 2% per window: the alarm
        # must land within a bounded number of windows past onset (and never
        # before onset).  EWMA's smoothing trades latency for robustness, so
        # its bound is looser than CUSUM's.
        onset = 15
        for seed in range(5):
            detector = self.make_detector(method=method)
            values = list(self.stationary(100 + seed, onset))
            values += [1.0 + 0.02 * (i + 1) for i in range(25)]
            alarms = feed_power(detector, values)
            assert len(alarms) == 1
            latency = alarms[0].window_index - onset
            assert 0 <= latency <= max_latency, f"seed {seed}: latency {latency}"

    def test_one_alarm_latched_per_metric(self):
        detector = self.make_detector()
        values = list(self.stationary(0, 10)) + [5.0] * 20
        alarms = feed_power(detector, values)
        assert len(alarms) == 1
        assert len(detector.alarms) == 1

    def test_reset_metric_rearms_the_chart(self):
        detector = self.make_detector()
        feed_power(detector, list(self.stationary(0, 10)) + [5.0] * 10)
        assert len(detector.alarms) == 1
        detector.reset_metric("output_power")
        assert detector.statistics()["output_power"] == 0.0
        feed_power(detector, [5.0] * 10)
        assert len(detector.alarms) == 2

    def test_alarm_payload_is_complete_and_serializable(self):
        detector = self.make_detector(warmup_windows=2, threshold=1.0)
        alarms = feed_power(detector, [1.0, 1.0] + [10.0] * 5)
        assert alarms
        alarm = alarms[0]
        assert alarm.metric == "output_power"
        assert alarm.statistic >= alarm.threshold
        assert alarm.baseline == pytest.approx(1.0)
        payload = alarm.to_dict()
        assert payload["metric"] == "output_power"
        assert "DRIFT" in alarm.summary()

    def test_independent_metrics_chart_independently(self):
        detector = self.make_detector(warmup_windows=2, threshold=2.0)
        for _ in range(2):
            detector.update({"output_power": 1.0, "evm_percent": 3.0})
        for _ in range(10):
            detector.update({"output_power": 1.0, "evm_percent": 30.0})
        assert [alarm.metric for alarm in detector.alarms] == ["evm_percent"]

    def test_monitored_metrics_vocabulary(self):
        assert set(MONITORED_METRICS) == {
            "output_power",
            "acpr_worst_db",
            "occupied_bandwidth_hz",
            "evm_percent",
        }


class TestNoiseAdaptiveScale:
    def test_scale_widens_to_measured_noise(self):
        # Warm-up noise far wider than the one-shot tolerance: the learned
        # scale must be the noise, not the (tiny) tolerance floor.
        detector = DriftDetector(DriftDetectorConfig(warmup_windows=20))
        rng = np.random.default_rng(42)
        feed_power(detector, 1.0 + 0.1 * rng.standard_normal(20))
        scale = detector.scales()["output_power"]
        tolerance = 1e-3  # BaselineTolerances().output_power_rel around 1.0
        assert scale > tolerance
        assert scale == pytest.approx(0.3, rel=0.5)  # ≈ 3 × std

    def test_tolerance_is_the_floor_for_quiet_metrics(self):
        # Identical warm-up values → zero spread → scale falls back to the
        # one-shot tolerance, never to zero.
        detector = DriftDetector(DriftDetectorConfig(warmup_windows=5))
        feed_power(detector, [1.0] * 5)
        scale = detector.scales()["output_power"]
        assert scale > 0.0
