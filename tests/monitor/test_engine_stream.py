"""Engine integration: ``TransmitterBist.stream()`` drives the monitor.

The streaming layer plugs into the batch BIST engine — the reconstructed
envelope of one acquisition becomes the monitored stream — so the same
loopback path the paper evaluates offline gates continuously too.
"""

import pytest

from repro.bist import BistConfig, CampaignScenario, TransmitterBist, build_scenario_engine
from repro.bist.campaign import default_converter
from repro.monitor import MonitorReport
from repro.signals.standards import get_profile
from repro.transmitter import HomodyneTransmitter, TransmitterConfig


@pytest.fixture(scope="module")
def engine_and_burst():
    return build_scenario_engine(CampaignScenario(profile="paper-qpsk-1ghz"))


class TestEngineStream:
    def test_stream_returns_a_monitor_report(self, engine_and_burst):
        engine, burst = engine_and_burst
        report = engine.stream(burst)
        assert isinstance(report, MonitorReport)
        assert report.num_windows >= 1
        assert report.samples_ingested > 0
        # The windows carry real measurements of the reconstructed envelope.
        assert all(window.output_power > 0.0 for window in report.windows)

    def test_clean_acquisition_raises_no_alarms(self, engine_and_burst):
        engine, burst = engine_and_burst
        report = engine.stream(burst)
        assert report.alarms == ()

    def test_summary_feeds_the_campaign_report_section(self, engine_and_burst):
        from repro.bist.report import CampaignSummary

        engine, burst = engine_and_burst
        report = engine.stream(burst)
        summary = CampaignSummary.from_entries(
            [], errors=[("s", "synthetic")], monitor=report.summary()
        )
        assert "streaming monitor:" in summary.to_text()
        assert summary.to_dict()["monitor"]["windows"] == report.num_windows

    def test_ofdm_default_window_holds_whole_symbols(self):
        # The default window used to shrink below one OFDM symbol span, so
        # every window skipped EVM; it must now widen to fit whole symbols.
        profile = get_profile("ofdm-uhf-qpsk-400mhz")
        config = BistConfig(
            num_samples_fast=2048,
            num_samples_slow=1024,
            lms_max_iterations=40,
            num_cost_points=120,
        )
        transmitter = HomodyneTransmitter(TransmitterConfig.from_profile(profile, seed=3))
        converter = default_converter(
            config.acquisition_bandwidth_hz, skew_jitter_rms_seconds=1.0e-12, seed=5
        )
        engine = TransmitterBist(transmitter, converter, profile=profile, config=config)
        report = engine.stream()
        measured = [w for w in report.windows if w.evm_percent is not None]
        assert measured
        assert all(window.evm_percent < 5.0 for window in measured)

    def test_block_size_does_not_change_the_report(self, engine_and_burst):
        # Acquisition noise makes every prepare() a fresh realisation, so the
        # invariance claim needs one shared stage streamed twice.
        engine, burst = engine_and_burst
        stage = engine.prepare(burst)
        small = engine.stream(block_samples=64, stage=stage)
        large = engine.stream(block_samples=4096, stage=stage)
        assert small.to_dict() == large.to_dict()
