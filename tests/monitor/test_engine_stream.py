"""Engine integration: ``TransmitterBist.stream()`` drives the monitor.

The streaming layer plugs into the batch BIST engine — the reconstructed
envelope of one acquisition becomes the monitored stream — so the same
loopback path the paper evaluates offline gates continuously too.
"""

import pytest

from repro.bist import CampaignScenario, build_scenario_engine
from repro.monitor import MonitorReport


@pytest.fixture(scope="module")
def engine_and_burst():
    return build_scenario_engine(CampaignScenario(profile="paper-qpsk-1ghz"))


class TestEngineStream:
    def test_stream_returns_a_monitor_report(self, engine_and_burst):
        engine, burst = engine_and_burst
        report = engine.stream(burst)
        assert isinstance(report, MonitorReport)
        assert report.num_windows >= 1
        assert report.samples_ingested > 0
        # The windows carry real measurements of the reconstructed envelope.
        assert all(window.output_power > 0.0 for window in report.windows)

    def test_clean_acquisition_raises_no_alarms(self, engine_and_burst):
        engine, burst = engine_and_burst
        report = engine.stream(burst)
        assert report.alarms == ()

    def test_summary_feeds_the_campaign_report_section(self, engine_and_burst):
        from repro.bist.report import CampaignSummary

        engine, burst = engine_and_burst
        report = engine.stream(burst)
        summary = CampaignSummary.from_entries(
            [], errors=[("s", "synthetic")], monitor=report.summary()
        )
        assert "streaming monitor:" in summary.to_text()
        assert summary.to_dict()["monitor"]["windows"] == report.num_windows

    def test_block_size_does_not_change_the_report(self, engine_and_burst):
        # Acquisition noise makes every prepare() a fresh realisation, so the
        # invariance claim needs one shared stage streamed twice.
        engine, burst = engine_and_burst
        stage = engine.prepare(burst)
        small = engine.stream(block_samples=64, stage=stage)
        large = engine.stream(block_samples=4096, stage=stage)
        assert small.to_dict() == large.to_dict()
