"""StreamingMonitor tests: partition invariance, window metrics, reports.

The monitor's headline invariant is that re-blocking the same stream
changes *nothing*: every window metric, every alarm, and the full report
dictionary are bit-identical for any partition of the stream into ingest
blocks.  The end-to-end drift scenarios (injected gain/noise ramps against
a real transmitted burst) live here too.
"""

import numpy as np
import pytest

from repro.errors import MeasurementError, ValidationError
from repro.monitor import (
    ChannelSpec,
    DriftDetectorConfig,
    MonitorConfig,
    StreamingMonitor,
    apply_gain_drift,
    apply_noise_drift,
    gain_drift_profile,
    iter_blocks,
)
from repro.transmitter import HomodyneTransmitter, TransmitterConfig
from repro.signals import get_profile

RATE = 1.0e6


def tone_stream(size: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(size) / RATE
    tone = np.exp(2j * np.pi * 50e3 * t)
    return tone + 0.01 * (rng.standard_normal(size) + 1j * rng.standard_normal(size))


def basic_config(**overrides) -> MonitorConfig:
    kwargs = dict(
        sample_rate=RATE,
        window_samples=512,
        segment_length=128,
        channel=ChannelSpec(centre_hz=0.0, bandwidth_hz=200e3),
        detector=DriftDetectorConfig(warmup_windows=3),
    )
    kwargs.update(overrides)
    return MonitorConfig(**kwargs)


class TestPartitionInvariance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reblocking_reproduces_the_report_bit_for_bit(self, seed):
        stream = tone_stream(6000, seed=seed)

        whole = StreamingMonitor(basic_config())
        whole.ingest(stream)

        rng = np.random.default_rng(1000 + seed)
        blocked = StreamingMonitor(basic_config())
        start = 0
        while start < stream.size:
            size = int(rng.integers(1, 700))
            blocked.ingest(stream[start : start + size])
            start += size

        assert whole.report().to_dict() == blocked.report().to_dict()

    def test_window_metrics_identical_under_reblocking(self):
        stream = tone_stream(4096)
        a = StreamingMonitor(basic_config())
        a.ingest_stream(iter_blocks(stream, 333))
        b = StreamingMonitor(basic_config())
        b.ingest_stream(iter_blocks(stream, 512))
        assert [w.to_dict() for w in a.windows] == [w.to_dict() for w in b.windows]


class TestWindowMetrics:
    def test_output_power_is_mean_square_of_the_window(self):
        config = basic_config(channel=None)
        monitor = StreamingMonitor(config)
        stream = tone_stream(1024)
        monitor.ingest(stream)
        assert monitor.windows_completed == 2
        first = monitor.windows[0]
        expected = float(np.mean(np.abs(stream[:512]) ** 2))
        assert first.output_power == expected
        assert first.start_sample == 0
        assert first.num_samples == 512

    def test_channel_metrics_present_with_a_channel_spec(self):
        monitor = StreamingMonitor(basic_config())
        monitor.ingest(tone_stream(2048))
        window = monitor.windows[0]
        assert window.acpr_worst_db is not None
        assert window.occupied_bandwidth_hz is not None
        # No symbol reference → EVM is not measurable.
        assert window.evm_percent is None

    def test_partial_window_is_not_measured(self):
        monitor = StreamingMonitor(basic_config())
        monitor.ingest(tone_stream(700))  # 512 + 188 leftover
        assert monitor.windows_completed == 1
        assert monitor.samples_ingested == 700

    def test_cumulative_spectrum_covers_the_whole_stream(self):
        monitor = StreamingMonitor(basic_config())
        stream = tone_stream(4096)
        monitor.ingest(stream)
        spectrum = monitor.cumulative_spectrum()
        peak = spectrum.frequencies_hz[int(np.argmax(spectrum.psd))]
        assert peak == pytest.approx(50e3, abs=2 * spectrum.resolution_hz)
        with pytest.raises(MeasurementError):
            StreamingMonitor(basic_config()).cumulative_spectrum()


class TestValidation:
    def test_config_type_checked(self):
        with pytest.raises(ValidationError, match="MonitorConfig"):
            StreamingMonitor({"sample_rate": RATE})

    def test_window_must_hold_a_segment(self):
        with pytest.raises(ValidationError):
            MonitorConfig(sample_rate=RATE, window_samples=64, segment_length=128)

    def test_config_round_trip(self):
        config = basic_config()
        rebuilt = MonitorConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_channel_spec_round_trip_and_validation(self):
        spec = ChannelSpec(centre_hz=0.0, bandwidth_hz=1e6, spacing_hz=1.5e6)
        assert ChannelSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValidationError):
            ChannelSpec(centre_hz=0.0, bandwidth_hz=-1.0)


class TestDriftInjection:
    def test_gain_profile_is_unity_before_onset(self):
        profile = gain_drift_profile(100, 40, -6.0)
        assert np.all(profile[:40] == 1.0)
        assert profile[-1] == pytest.approx(10 ** (-6.0 / 20.0))
        assert np.all(np.diff(profile[40:]) < 0.0)

    def test_apply_gain_drift_leaves_input_untouched(self):
        samples = np.ones(50, dtype=complex)
        drifted = apply_gain_drift(samples, 10, -3.0)
        assert np.all(samples == 1.0)
        assert drifted[0] == 1.0
        assert abs(drifted[-1]) == pytest.approx(10 ** (-3.0 / 20.0))

    def test_noise_drift_is_seeded_and_domain_matched(self):
        samples = np.zeros(1000, dtype=complex)
        a = apply_noise_drift(samples, 0, 0.1, seed=3)
        b = apply_noise_drift(samples, 0, 0.1, seed=3)
        assert np.array_equal(a, b)
        assert np.iscomplexobj(a)
        real = apply_noise_drift(np.zeros(1000), 0, 0.1, seed=3)
        assert not np.iscomplexobj(real)
        # Power ramps: the last tenth is much louder than the first tenth.
        assert np.mean(np.abs(a[-100:]) ** 2) > 5 * np.mean(np.abs(a[100:200]) ** 2)


class TestEndToEnd:
    """Transmitted-burst scenarios: the monitor sees what the paper's BIST sees."""

    @pytest.fixture(scope="class")
    def burst(self):
        profile = get_profile("paper-qpsk-1ghz")
        transmitter = HomodyneTransmitter(
            TransmitterConfig.from_profile(profile, seed=2014)
        )
        return transmitter.transmit(num_symbols=2048)

    def test_clean_stream_raises_no_alarms(self, burst):
        monitor = StreamingMonitor.from_transmission(
            burst, window_samples=1024, segment_length=256
        )
        monitor.ingest_stream(iter_blocks(burst.output_envelope.samples, 600))
        report = monitor.report()
        assert report.num_windows >= 10
        assert report.alarms == ()
        assert report.first_alarm_window is None
        # EVM was measurable on this single-carrier burst.
        assert any(w.evm_percent is not None for w in report.windows)

    def test_gain_drift_alarms_after_onset(self, burst):
        envelope = burst.output_envelope.samples
        onset = int(0.4 * envelope.size)
        stream = apply_gain_drift(envelope, onset, -3.0)
        monitor = StreamingMonitor.from_transmission(
            burst, window_samples=1024, segment_length=256
        )
        monitor.ingest_stream(iter_blocks(stream, 600))
        report = monitor.report()
        assert report.alarms, "gain drift must alarm"
        onset_window = onset // 1024
        assert report.first_alarm_window >= onset_window
        # Bounded latency: within 8 windows of the onset window.
        assert report.first_alarm_window - onset_window <= 8
        assert "output_power" in report.alarmed_metrics

    def test_noise_drift_alarms_on_quality_metrics(self, burst):
        envelope = burst.output_envelope.samples
        onset = int(0.4 * envelope.size)
        stream = apply_noise_drift(envelope, onset, 0.02, seed=2014)
        monitor = StreamingMonitor.from_transmission(
            burst, window_samples=1024, segment_length=256
        )
        monitor.ingest_stream(iter_blocks(stream, 600))
        report = monitor.report()
        assert report.alarms
        assert set(report.alarmed_metrics) & {"evm_percent", "acpr_worst_db"}

    def test_report_summary_shape(self, burst):
        monitor = StreamingMonitor.from_transmission(
            burst, window_samples=1024, segment_length=256
        )
        monitor.ingest_stream(iter_blocks(burst.output_envelope.samples, 600))
        summary = monitor.report().summary()
        assert summary["windows"] == monitor.windows_completed
        assert summary["window_samples"] == 1024
        assert summary["alarms"] == 0
        assert summary["alarmed_metrics"] == []
        payload = monitor.report().to_dict()
        assert payload["summary"] == summary
        assert len(payload["windows"]) == summary["windows"]
