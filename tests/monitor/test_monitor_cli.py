"""CLI tests for ``python -m repro.monitor``: JSON log, exit codes, files."""

import json

import pytest

from repro.monitor.cli import build_parser, main, run_session


def run_main(capsys, *argv) -> tuple[int, dict]:
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, json.loads(out)


BASE_ARGS = ("--num-symbols", "1024", "--warmup-windows", "3")


class TestExitCodes:
    def test_gain_drift_session_alarms_and_exits_zero(self, capsys):
        code, log = run_main(capsys, *BASE_ARGS, "--drift", "gain")
        assert code == 0
        assert log["session"]["alarm_expected"] is True
        assert log["session"]["outcome_consistent"] is True
        assert log["summary"]["alarms"] >= 1

    def test_clean_session_is_quiet_and_exits_zero(self, capsys):
        code, log = run_main(capsys, *BASE_ARGS, "--drift", "none")
        assert code == 0
        assert log["session"]["alarm_expected"] is False
        assert log["summary"]["alarms"] == 0

    def test_noise_drift_session(self, capsys):
        code, log = run_main(capsys, *BASE_ARGS, "--drift", "noise")
        assert code == 0
        assert log["summary"]["alarms"] >= 1

    def test_unknown_profile_is_an_argparse_error(self):
        with pytest.raises(SystemExit):
            main(["--profile", "no-such-profile"])


class TestLogShape:
    def test_log_is_json_round_trippable_and_complete(self, capsys):
        code, log = run_main(capsys, *BASE_ARGS)
        assert code == 0
        assert json.loads(json.dumps(log)) == log
        for key in ("config", "windows", "alarms", "summary", "session"):
            assert key in log
        session = log["session"]
        assert session["profile"] == "paper-qpsk-1ghz"
        assert session["drift"] == "gain"
        assert session["drift_onset_window"] * 1024 <= session["drift_onset_sample"]
        # Alarms land after the injected onset.
        for alarm in log["alarms"]:
            assert alarm["window_index"] >= session["drift_onset_window"]

    def test_summary_only_omits_windows(self, capsys):
        code, log = run_main(capsys, *BASE_ARGS, "--summary-only")
        assert code == 0
        assert "windows" not in log
        assert "summary" in log

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "log.json"
        code = main([*BASE_ARGS, "--output", str(target)])
        assert code == 0
        assert capsys.readouterr().out == ""
        log = json.loads(target.read_text())
        assert log["session"]["outcome_consistent"] is True


class TestRunSession:
    def test_deterministic_for_a_fixed_seed(self):
        args = build_parser().parse_args([*BASE_ARGS, "--seed", "7"])
        assert run_session(args) == run_session(args)

    def test_ewma_method_plumbs_through(self):
        args = build_parser().parse_args([*BASE_ARGS, "--method", "ewma"])
        log = run_session(args)
        assert log["config"]["detector"]["method"] == "ewma"
