"""Tests for repro.faults.models: fault families, registry, injection."""

import pickle

import pytest

from repro.bist import CampaignScenario, ConverterSpec
from repro.errors import ValidationError
from repro.faults import (
    FAULT_FAMILIES,
    DacResolutionFault,
    DcdeErrorFault,
    FaultModel,
    FilterDriftFault,
    IqImbalanceFault,
    LoLeakageFault,
    PaCompressionFault,
    PhaseNoiseFault,
    TiadcBandwidthFault,
    TiadcMismatchFault,
    TiadcSkewFault,
    fault_grid,
    get_fault_family,
    list_fault_families,
)
from repro.rf.amplifier import RappAmplifier
from repro.signals import get_profile
from repro.transmitter import ImpairmentConfig

ALL_FAMILIES = [
    PaCompressionFault,
    IqImbalanceFault,
    LoLeakageFault,
    PhaseNoiseFault,
    DacResolutionFault,
    FilterDriftFault,
    TiadcSkewFault,
    TiadcMismatchFault,
    TiadcBandwidthFault,
    DcdeErrorFault,
]


class TestRegistry:
    def test_all_families_registered(self):
        names = list_fault_families()
        assert len(names) >= 8
        for cls in ALL_FAMILIES:
            assert FAULT_FAMILIES[cls.family] is cls

    def test_lookup_by_name(self):
        assert get_fault_family("pa-compression") is PaCompressionFault

    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError):
            get_fault_family("gremlins")

    def test_family_names_unique(self):
        assert len(set(cls.family for cls in ALL_FAMILIES)) == len(ALL_FAMILIES)


class TestSeverity:
    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_from_severity_and_label(self, cls):
        fault = cls.from_severity(0.5)
        assert fault.severity == 0.5
        assert fault.label == f"{cls.family}-s0.5"

    @pytest.mark.parametrize("severity", [-0.1, 1.5])
    def test_out_of_range_severity_rejected(self, severity):
        with pytest.raises(ValidationError):
            PaCompressionFault(severity=severity)

    def test_with_severity(self):
        fault = IqImbalanceFault(severity=0.2, max_gain_imbalance_db=6.0)
        hotter = fault.with_severity(1.0)
        assert hotter.max_gain_imbalance_db == 6.0
        assert hotter.severity == 1.0

    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_picklable(self, cls):
        fault = cls.from_severity(0.75)
        assert pickle.loads(pickle.dumps(fault)) == fault

    @pytest.mark.parametrize("cls", ALL_FAMILIES)
    def test_describe_is_json_friendly(self, cls):
        import json

        description = cls.from_severity(0.75).describe()
        assert description["family"] == cls.family
        assert description["params"]["severity"] == 0.75
        json.dumps(description)  # must not raise


class TestTransmitterInjection:
    def test_pa_compression_interpolates_saturation(self):
        fault = PaCompressionFault(severity=0.5, nominal_saturation=2.0, worst_saturation=1.0)
        assert fault.saturation_amplitude == pytest.approx(1.5)
        impaired = fault.apply_transmitter(ImpairmentConfig())
        assert isinstance(impaired.amplifier, RappAmplifier)
        assert impaired.amplifier.saturation_amplitude == pytest.approx(1.5)

    def test_iq_imbalance_scales_with_severity(self):
        impaired = IqImbalanceFault(severity=0.5).apply_transmitter(ImpairmentConfig())
        assert impaired.iq_imbalance.gain_imbalance_db == pytest.approx(1.5)
        assert impaired.iq_imbalance.phase_imbalance_deg == pytest.approx(10.0)

    def test_lo_leakage_sets_offsets(self):
        impaired = LoLeakageFault(severity=1.0, max_i_offset=0.3, max_q_offset=0.1).apply_transmitter(
            ImpairmentConfig()
        )
        assert impaired.dc_offset.i_offset == pytest.approx(0.3)
        assert impaired.dc_offset.q_offset == pytest.approx(0.1)

    def test_phase_noise_scales(self):
        impaired = PhaseNoiseFault(severity=0.5).apply_transmitter(ImpairmentConfig())
        assert impaired.phase_noise.linewidth_hz == pytest.approx(25.0e3)
        assert impaired.phase_noise.rms_jitter_seconds == pytest.approx(15.0e-12)

    def test_dac_resolution_interpolates_bits(self):
        fault = DacResolutionFault(severity=1.0)
        impaired = fault.apply_transmitter(ImpairmentConfig())
        assert impaired.dac.resolution_bits == 4
        mild = DacResolutionFault(severity=0.0).apply_transmitter(ImpairmentConfig())
        assert mild.dac.resolution_bits == 14

    def test_filter_drift_scales_bandwidth(self):
        impaired = FilterDriftFault(severity=1.0, worst_bandwidth_scale=0.1).apply_transmitter(
            ImpairmentConfig()
        )
        assert impaired.output_filter_bandwidth_scale == pytest.approx(0.1)

    def test_transmitter_faults_leave_converter_untouched(self):
        spec = ConverterSpec()
        assert PaCompressionFault().apply_converter(spec) == spec


class TestConverterInjection:
    def test_tiadc_skew(self):
        spec = TiadcSkewFault(severity=0.5, max_skew_seconds=40e-12).apply_converter(ConverterSpec())
        assert spec.channel1_skew_seconds == pytest.approx(20e-12)

    def test_tiadc_mismatch(self):
        spec = TiadcMismatchFault(severity=1.0).apply_converter(ConverterSpec())
        assert spec.channel1_gain_error == pytest.approx(0.15)
        assert spec.channel1_offset == pytest.approx(0.2)

    def test_tiadc_bandwidth_geometric_interpolation(self):
        fault = TiadcBandwidthFault(severity=0.5, nominal_bandwidth_hz=100e9, worst_bandwidth_hz=1e9)
        assert fault.bandwidth_hz == pytest.approx(10e9)
        spec = fault.apply_converter(ConverterSpec())
        assert spec.channel1_bandwidth_hz == pytest.approx(10e9)
        assert spec.bandwidth_reference_hz == fault.reference_frequency_hz

    def test_tiadc_bandwidth_zero_severity_is_identity(self):
        spec = ConverterSpec()
        assert TiadcBandwidthFault(severity=0.0).apply_converter(spec) == spec

    def test_tiadc_bandwidth_specialises_to_profile(self):
        profile = get_profile("uhf-8psk-400mhz")
        fault = TiadcBandwidthFault().for_profile(profile)
        assert fault.reference_frequency_hz == profile.carrier_frequency_hz

    def test_dcde_error(self):
        spec = DcdeErrorFault(severity=1.0, max_static_error_seconds=5e-12).apply_converter(
            ConverterSpec()
        )
        assert spec.dcde_static_error_seconds == pytest.approx(5e-12)

    def test_converter_faults_leave_transmitter_untouched(self):
        impairments = ImpairmentConfig()
        assert TiadcSkewFault().apply_transmitter(impairments) == impairments


class TestScenarioInjection:
    def test_transmitter_fault_keeps_campaign_converter(self):
        scenario = CampaignScenario(profile="paper-qpsk-1ghz")
        faulty = PaCompressionFault().apply_scenario(scenario)
        assert faulty.converter is None
        assert isinstance(faulty.impairments.amplifier, RappAmplifier)
        assert faulty.label == "paper-qpsk-1ghz/pa-compression-s1"

    def test_converter_fault_attaches_spec(self):
        scenario = CampaignScenario(profile="paper-qpsk-1ghz")
        faulty = TiadcSkewFault().apply_scenario(scenario, label="custom")
        assert faulty.converter is not None
        assert faulty.converter.channel1_skew_seconds == pytest.approx(40e-12)
        assert faulty.label == "custom"

    def test_existing_converter_used_as_base(self):
        base = ConverterSpec(resolution_bits=12)
        scenario = CampaignScenario(profile="paper-qpsk-1ghz", converter=base)
        faulty = TiadcSkewFault().apply_scenario(scenario)
        assert faulty.converter.resolution_bits == 12

    def test_non_scenario_rejected(self):
        with pytest.raises(ValidationError):
            PaCompressionFault().apply_scenario("not a scenario")


class TestFaultGrid:
    def test_names_times_severities(self):
        models = fault_grid(["pa-compression", "tiadc-skew"], [0.25, 0.5, 1.0])
        assert len(models) == 6
        assert [m.severity for m in models[:3]] == [0.25, 0.5, 1.0]
        assert all(isinstance(m, FaultModel) for m in models)

    def test_classes_and_instances(self):
        template = IqImbalanceFault(max_gain_imbalance_db=6.0)
        models = fault_grid([PaCompressionFault, template], [1.0])
        assert isinstance(models[0], PaCompressionFault)
        assert models[1].max_gain_imbalance_db == 6.0

    def test_empty_severities_rejected(self):
        with pytest.raises(ValidationError):
            fault_grid(["pa-compression"], [])

    def test_bad_entry_rejected(self):
        with pytest.raises(ValidationError):
            fault_grid([42], [1.0])
