"""Statistical acceptance tests for the adaptive threshold planner.

The synthetic sections sweep >= 20 seeds over >= 5 analytic fault
families and assert the subsystem's headline claims: the adaptively
located threshold agrees with the exhaustive-grid oracle to within one
severity step, the reported confidence bracket actually covers the true
threshold, the designed-undetectable control reports "no threshold
found", and the search spends >= 5x fewer scenarios than the grid.  The
final section repeats the oracle-agreement check against the real BIST
execution path on a coarse grid.

Every test is deterministic: the synthetic backend hashes (seed, family,
severity, repeat) into its verdicts and the BIST backend derives
per-scenario seeds from labels, so reruns are bit-identical.
"""

import math

import pytest

from repro.bist import BistConfig
from repro.faults import (
    AdaptiveConfig,
    AdaptivePlanner,
    CampaignProbeBackend,
    SyntheticFamily,
    SyntheticProbeBackend,
    TestLimits,
)

SEEDS = range(20)

#: Five step-like families spread over the severity axis ...
SHARP_FAMILIES = [
    SyntheticFamily("sharp-a", threshold=0.13, steepness=400.0),
    SyntheticFamily("sharp-b", threshold=0.28, steepness=400.0),
    SyntheticFamily("sharp-c", threshold=0.47, steepness=400.0),
    SyntheticFamily("sharp-d", threshold=0.66, steepness=400.0),
    SyntheticFamily("sharp-e", threshold=0.84, steepness=400.0),
]
#: ... a family with genuinely noisy verdicts near its threshold ...
NOISY = SyntheticFamily("noisy", threshold=0.47, steepness=25.0)
#: ... and a control whose threshold sits beyond the grid.
UNDETECTABLE = SyntheticFamily("undetectable", threshold=2.0, steepness=400.0)

CONFIG = AdaptiveConfig(num_steps=16)
STEP = (CONFIG.max_severity - CONFIG.min_severity) / CONFIG.num_steps


def backend(seed):
    return SyntheticProbeBackend(
        SHARP_FAMILIES + [NOISY, UNDETECTABLE], seed=seed
    )


@pytest.mark.statistical
class TestOracleAgreement:
    def test_five_families_match_oracle_over_seeds(self):
        for seed in SEEDS:
            synthetic = backend(seed)
            planner = AdaptivePlanner(synthetic, CONFIG)
            report = planner.run([family.name for family in SHARP_FAMILIES]).report
            for family in SHARP_FAMILIES:
                oracle = synthetic.grid_oracle(family.name, CONFIG)
                found = report.threshold_for(family.name)
                assert found.found, (seed, family.name)
                assert abs(found.threshold - oracle) <= STEP + 1e-12, (
                    seed,
                    family.name,
                    found.threshold,
                    oracle,
                )

    def test_noisy_family_within_one_step_over_seeds(self):
        for seed in SEEDS:
            synthetic = backend(seed)
            planner = AdaptivePlanner(synthetic, CONFIG)
            found = planner.find_threshold("synthetic", "noisy")
            oracle = synthetic.grid_oracle("noisy", CONFIG)
            assert found.found, seed
            assert abs(found.threshold - oracle) <= STEP + 1e-12, (
                seed,
                found.threshold,
                oracle,
            )

    def test_probabilistic_strategy_within_one_step_over_seeds(self):
        # The noisy family flips verdicts ~30% of the time one step off its
        # threshold, so the Horstein posterior must assume a matching
        # verdict error rate (and gets a larger query budget to pay for it).
        config = AdaptiveConfig(
            num_steps=16,
            strategy="probabilistic",
            verdict_error_rate=0.3,
            pba_max_queries=40,
        )
        for seed in SEEDS:
            synthetic = backend(seed)
            planner = AdaptivePlanner(synthetic, config)
            found = planner.find_threshold("synthetic", "noisy")
            oracle = synthetic.grid_oracle("noisy", config)
            assert found.found, seed
            assert abs(found.threshold - oracle) <= STEP + 1e-12, (
                seed,
                found.threshold,
                oracle,
            )


@pytest.mark.statistical
class TestConfidenceCoverage:
    def test_bracket_covers_true_threshold(self):
        """The (ci_low, ci_high] bracket must cover the true (continuous)
        threshold in at least 80% of seeds for the noisy family and always
        for the step-like ones."""
        noisy_hits = 0
        for seed in SEEDS:
            planner = AdaptivePlanner(backend(seed), CONFIG)
            for family in SHARP_FAMILIES:
                found = planner.find_threshold("synthetic", family.name)
                assert found.ci_low < family.threshold <= found.ci_high, (
                    seed,
                    family.name,
                )
            found = planner.find_threshold("synthetic", "noisy")
            if found.found and found.ci_low < NOISY.threshold <= found.ci_high:
                noisy_hits += 1
        assert noisy_hits >= 0.8 * len(SEEDS), noisy_hits


@pytest.mark.statistical
class TestUndetectableControl:
    def test_no_threshold_found_for_every_seed(self):
        for seed in SEEDS:
            for strategy in ("bisection", "probabilistic"):
                config = AdaptiveConfig(num_steps=16, strategy=strategy)
                planner = AdaptivePlanner(backend(seed), config)
                found = planner.find_threshold("synthetic", "undetectable")
                assert not found.found, (seed, strategy)
                assert found.threshold is None


@pytest.mark.statistical
class TestEfficiency:
    def test_five_times_fewer_scenarios_than_grid(self):
        config = AdaptiveConfig(num_steps=32)
        for seed in SEEDS:
            planner = AdaptivePlanner(backend(seed), config)
            report = planner.run([family.name for family in SHARP_FAMILIES]).report
            assert report.scenarios_saved_vs_grid >= 5.0, (
                seed,
                report.scenarios_saved_vs_grid,
            )

    def test_search_cost_is_logarithmic(self):
        for num_steps in (8, 16, 32, 64):
            planner = AdaptivePlanner(backend(0), AdaptiveConfig(num_steps=num_steps))
            found = planner.find_threshold("synthetic", "sharp-c")
            assert found.num_probed_severities <= 1 + math.ceil(math.log2(num_steps))


# --------------------------------------------------------------------------- #
# Real execution path
# --------------------------------------------------------------------------- #
#: >= 5 fault families, incl. the known-undetectable DCDE control.
REAL_FAMILIES = [
    "pa-compression",
    "iq-imbalance",
    "lo-leakage",
    "tiadc-skew",
    "filter-drift",
    "dcde-error",
]

FAST_CONFIG = BistConfig(
    num_samples_fast=192,
    num_samples_slow=96,
    lms_max_iterations=20,
    num_cost_points=40,
    measure_evm_enabled=False,
    seed=99,
)

#: Explicit metric bounds instead of the BIST's own verdict: at these tiny
#: engine settings the verdict is marginal enough to flip with the noise
#: realisation, which would violate the monotone-detection assumption the
#: bisection (and the grid oracle) relies on.
LIMITS = TestLimits(
    use_bist_verdict=False,
    max_acpr_db=-35.0,
    max_occupied_bandwidth_hz=15.0e6,
    max_skew_deviation_ps=20.0,
)

#: Coarse grid so each family costs a handful of real BIST runs.
REAL_CONFIG = AdaptiveConfig(num_steps=4, repeats_per_round=2, max_rounds_per_probe=1)
REAL_STEP = 1.0 / REAL_CONFIG.num_steps


def real_backend():
    return CampaignProbeBackend(
        ["paper-qpsk-1ghz"],
        bist_config=FAST_CONFIG,
        limits=LIMITS,
        max_workers=1,
    )


@pytest.fixture(scope="module")
def real_search():
    search_backend = real_backend()
    planner = AdaptivePlanner(search_backend, REAL_CONFIG)
    result = planner.run(REAL_FAMILIES)
    # Exhaustive-grid oracle through the *same* backend: identical labels
    # derive identical per-scenario seeds, so shared severities reproduce
    # the search's verdicts exactly.
    oracle = {}
    for family in REAL_FAMILIES:
        oracle[family] = None
        for severity in REAL_CONFIG.severities():
            flags = search_backend.probe(
                "paper-qpsk-1ghz",
                family,
                severity,
                REAL_CONFIG.repeats_per_round,
                start=0,
            )
            rate = sum(flags) / len(flags)
            if oracle[family] is None and rate >= REAL_CONFIG.detection_threshold:
                oracle[family] = severity
    return result, oracle


@pytest.mark.slow
@pytest.mark.statistical
class TestRealBackendAcceptance:
    def test_adaptive_matches_exhaustive_grid(self, real_search):
        result, oracle = real_search
        for family in REAL_FAMILIES:
            found = result.report.threshold_for(family)
            if oracle[family] is None:
                assert not found.found, family
            else:
                assert found.found, family
                assert abs(found.threshold - oracle[family]) <= REAL_STEP + 1e-12, (
                    family,
                    found.threshold,
                    oracle[family],
                )

    def test_dcde_control_reports_no_threshold(self, real_search):
        result, _ = real_search
        found = result.report.threshold_for("dcde-error")
        assert not found.found
        assert found.threshold is None

    def test_cheaper_than_exhaustive_grid(self, real_search):
        result, _ = real_search
        grid_cost = (
            len(REAL_FAMILIES) * REAL_CONFIG.num_steps * REAL_CONFIG.repeats_per_round
        )
        assert result.report.scenarios_spent < grid_cost

    def test_campaign_summary_carries_efficiency(self, real_search):
        result, _ = real_search
        summary = result.summary()
        assert summary.num_errors == 0
        assert summary.scenarios_saved_vs_grid == pytest.approx(
            result.report.scenarios_saved_vs_grid
        )
