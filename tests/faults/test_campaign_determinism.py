"""Acceptance tests: a real FaultCampaign over >= 5 families x 3 severities.

The campaign executes genuine (small) BIST runs; the tests pin down the
subsystem's headline contract:

* the FaultDictionary and every derived number (coverage, test escape,
  yield loss) is deterministic under a fixed seed;
* serial and process-pool execution produce the identical dictionary;
* a known-undetectable fault (the DCDE static error the LMS calibration is
  designed to absorb) is reported as uncovered.
"""

import json

import pytest

from repro.bist import BistConfig
from repro.faults import (
    FaultCampaign,
    FaultCoverageReport,
    FaultDictionary,
    TestLimits,
    fault_grid,
)

#: >= 5 fault families...
FAMILIES = [
    "pa-compression",
    "iq-imbalance",
    "lo-leakage",
    "tiadc-skew",
    "dcde-error",
]
#: ... x >= 3 severities.
SEVERITIES = [0.25, 0.5, 1.0]

#: Small-but-real engine configuration so the campaign stays fast.
FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=20,
    num_cost_points=40,
    measure_evm_enabled=False,
)

LIMITS = TestLimits(max_skew_deviation_ps=20.0)


def build_campaign():
    return FaultCampaign(
        ["paper-qpsk-1ghz"],
        fault_grid(FAMILIES, SEVERITIES),
        bist_config=FAST_CONFIG,
        num_repeats=1,
        num_reference=2,
    )


@pytest.fixture(scope="module")
def serial_dictionary():
    return build_campaign().run(max_workers=1).dictionary()


@pytest.mark.slow
class TestAcceptance:
    def test_campaign_shape(self, serial_dictionary):
        assert len(serial_dictionary.records) == len(FAMILIES) * len(SEVERITIES)
        assert len(serial_dictionary.references) == 2
        families = {record.point.fault.family for record in serial_dictionary.records}
        assert families == set(FAMILIES)

    def test_every_scenario_executed(self, serial_dictionary):
        for record in serial_dictionary.records:
            for signature in record.signatures:
                assert signature.executed, signature.error

    def test_deterministic_under_fixed_seed(self, serial_dictionary):
        repeat = build_campaign().run(max_workers=1).dictionary()
        assert repeat.to_dict() == serial_dictionary.to_dict()
        assert repeat.monte_carlo(LIMITS) == serial_dictionary.monte_carlo(LIMITS)

    def test_parallel_identical_to_serial(self, serial_dictionary):
        parallel = build_campaign().run(max_workers=2).dictionary()
        assert parallel.to_dict() == serial_dictionary.to_dict()
        assert (
            parallel.coverage(LIMITS).to_dict() == serial_dictionary.coverage(LIMITS).to_dict()
        )
        assert parallel.monte_carlo(LIMITS) == serial_dictionary.monte_carlo(LIMITS)

    def test_known_undetectable_fault_uncovered(self, serial_dictionary):
        """The LMS calibration absorbs the DCDE static error by design."""
        coverage = serial_dictionary.coverage(LIMITS)
        for severity in SEVERITIES:
            label = f"paper-qpsk-1ghz/dcde-error-s{severity:g}"
            assert coverage.probabilities[label] == 0.0
            assert label in coverage.uncovered

    def test_detectable_fault_covered(self, serial_dictionary):
        """Deep PA compression must trip the ACPR/mask screen."""
        coverage = serial_dictionary.coverage(LIMITS)
        assert coverage.probabilities["paper-qpsk-1ghz/pa-compression-s1"] == 1.0
        # The severe TIADC skew is flagged through the skew-deviation bound.
        assert coverage.probabilities["paper-qpsk-1ghz/tiadc-skew-s1"] == 1.0

    def test_report_numbers_deterministic_and_archivable(self, serial_dictionary):
        a = FaultCoverageReport.from_dictionary(serial_dictionary, LIMITS, num_trials=4000)
        b = FaultCoverageReport.from_dictionary(serial_dictionary, LIMITS, num_trials=4000)
        assert a.to_dict() == b.to_dict()
        # The whole analysis survives a JSON archive cycle.
        payload = json.loads(json.dumps(serial_dictionary.to_dict()))
        rebuilt = FaultDictionary.from_dict(payload)
        assert (
            FaultCoverageReport.from_dictionary(rebuilt, LIMITS, num_trials=4000).to_dict()
            == a.to_dict()
        )
