"""Unit tests for repro.faults.adaptive and repro.faults.stats.

Everything here runs against the synthetic probe backend (or hand-built
dictionaries), so the search logic, the interval arithmetic and the
importance-sampled Monte Carlo are pinned down exactly without touching
the (slow) BIST execution path.  The end-to-end campaign-backend tests
live in test_adaptive_determinism.py and test_adaptive_acceptance.py.
"""

import json
import math

import pytest

from repro.bist.runner import ExecutionBudget
from repro.errors import BudgetExhaustedError, ValidationError
from repro.faults import (
    AdaptiveCampaignResult,
    AdaptiveConfig,
    AdaptivePlanner,
    DcdeErrorFault,
    FaultCoverageReport,
    FaultDictionary,
    FaultPoint,
    FaultRecord,
    FaultSignature,
    PaCompressionFault,
    SyntheticFamily,
    SyntheticProbeBackend,
    TestLimits,
    ThresholdReport,
    importance_monte_carlo,
)
from repro.faults.stats import (
    binomial_interval,
    beta_quantile,
    clopper_pearson_interval,
    normal_quantile,
    regularized_incomplete_beta,
    wilson_interval,
)

PROFILE = "paper-qpsk-1ghz"


# --------------------------------------------------------------------------- #
# Shared builders (mirrors tests/faults/test_coverage.py)
# --------------------------------------------------------------------------- #
def signature(label, failed=False, executed=True, error=None):
    return FaultSignature(
        label=label,
        profile_name=PROFILE if executed else None,
        executed=executed,
        bist_failed=failed,
        evm_percent=3.0,
        acpr_worst_db=-43.0,
        occupied_bandwidth_hz=14e6,
        mask_margin_db=5.0,
        skew_deviation_ps=2.0,
        error=error,
    )


def record(fault, label, flags):
    return FaultRecord(
        point=FaultPoint(label=f"{PROFILE}/{label}", profile_name=PROFILE, fault=fault),
        signatures=tuple(
            signature(f"{PROFILE}/{label}/r{i}", failed=flag)
            for i, flag in enumerate(flags)
        ),
    )


def make_dictionary():
    """3 faults: always detected, marginal (1/2), never detected."""
    return FaultDictionary(
        records=(
            record(PaCompressionFault(severity=1.0), "pa-compression-s1", [True, True]),
            record(PaCompressionFault(severity=0.5), "pa-compression-s0.5", [True, False]),
            record(DcdeErrorFault(severity=1.0), "dcde-error-s1", [False, False]),
        ),
        references=tuple(signature(f"{PROFILE}/reference/r{i}") for i in range(4)),
    )


def sharp_backend(seed=0):
    """Families whose logistic curves are step-like between grid points."""
    return SyntheticProbeBackend(
        [
            SyntheticFamily("step-low", threshold=0.22, steepness=400.0),
            SyntheticFamily("step-mid", threshold=0.47, steepness=400.0),
            SyntheticFamily("step-high", threshold=0.91, steepness=400.0),
            SyntheticFamily("never", threshold=4.0, steepness=400.0),
        ],
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Statistics primitives
# --------------------------------------------------------------------------- #
class TestStats:
    def test_normal_quantile_reference_values(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_quantile(0.975) == pytest.approx(1.959963984540054, abs=1e-9)
        assert normal_quantile(0.025) == pytest.approx(-1.959963984540054, abs=1e-9)
        assert normal_quantile(0.9995) == pytest.approx(3.290526731491926, abs=1e-8)

    def test_normal_quantile_rejects_boundaries(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValidationError):
                normal_quantile(bad)

    def test_incomplete_beta_uniform_identity(self):
        # I_x(1, 1) is the uniform CDF.
        for x in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert regularized_incomplete_beta(x, 1.0, 1.0) == pytest.approx(x, abs=1e-12)

    def test_incomplete_beta_symmetry(self):
        # I_x(a, b) = 1 - I_{1-x}(b, a)
        value = regularized_incomplete_beta(0.3, 4.0, 9.0)
        mirror = regularized_incomplete_beta(0.7, 9.0, 4.0)
        assert value == pytest.approx(1.0 - mirror, abs=1e-12)

    def test_beta_quantile_inverts_cdf(self):
        for p, a, b in ((0.1, 2.0, 5.0), (0.5, 3.5, 1.5), (0.95, 8.0, 2.0)):
            x = beta_quantile(p, a, b)
            assert regularized_incomplete_beta(x, a, b) == pytest.approx(p, abs=1e-9)

    def test_wilson_reference_values(self):
        # Canonical 6/6 and 0/6 cases that drive the n=6 early stop.
        low, high = wilson_interval(6, 6)
        assert low == pytest.approx(0.60967, abs=1e-4)
        assert high == 1.0
        low, high = wilson_interval(0, 6)
        assert low == 0.0
        assert high == pytest.approx(0.39033, abs=1e-4)

    def test_clopper_pearson_edges_and_ordering(self):
        low, high = clopper_pearson_interval(0, 10)
        assert low == 0.0 and 0.0 < high < 0.5
        low, high = clopper_pearson_interval(10, 10)
        assert 0.5 < low < 1.0 and high == 1.0
        # Clopper-Pearson is conservative: it contains the Wilson interval.
        cp = clopper_pearson_interval(3, 12)
        wilson = wilson_interval(3, 12)
        assert cp[0] <= wilson[0] and cp[1] >= wilson[1]

    def test_interval_contains_point_estimate(self):
        for method in ("wilson", "clopper-pearson"):
            for successes, trials in ((0, 5), (2, 7), (7, 7), (13, 40)):
                low, high = binomial_interval(successes, trials, method=method)
                assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_binomial_interval_validation(self):
        with pytest.raises(ValidationError):
            binomial_interval(1, 0)
        with pytest.raises(ValidationError):
            binomial_interval(5, 3)
        with pytest.raises(ValidationError):
            binomial_interval(-1, 3)
        with pytest.raises(ValidationError):
            binomial_interval(1, 3, method="bayes")


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
class TestAdaptiveConfig:
    def test_severity_grid_excludes_lower_anchor(self):
        config = AdaptiveConfig(num_steps=4, min_severity=0.2, max_severity=1.0)
        assert config.severities() == pytest.approx((0.4, 0.6, 0.8, 1.0))

    def test_validation(self):
        with pytest.raises(ValidationError):
            AdaptiveConfig(num_steps=1)
        with pytest.raises(ValidationError):
            AdaptiveConfig(min_severity=0.8, max_severity=0.8)
        with pytest.raises(ValidationError):
            AdaptiveConfig(strategy="random-walk")
        with pytest.raises(ValidationError):
            AdaptiveConfig(interval_method="jeffreys")
        with pytest.raises(ValidationError):
            AdaptiveConfig(verdict_error_rate=0.5)
        with pytest.raises(ValidationError):
            AdaptiveConfig(detection_threshold=1.0)

    def test_round_trip(self):
        config = AdaptiveConfig(num_steps=32, strategy="probabilistic")
        assert AdaptiveConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config


# --------------------------------------------------------------------------- #
# Bisection search on the synthetic backend
# --------------------------------------------------------------------------- #
class TestBisection:
    def test_thresholds_match_grid_oracle(self):
        backend = sharp_backend()
        config = AdaptiveConfig(num_steps=16)
        planner = AdaptivePlanner(backend, config)
        result = planner.run(["step-low", "step-mid", "step-high"])
        for family in ("step-low", "step-mid", "step-high"):
            found = result.report.threshold_for(family)
            oracle = backend.grid_oracle(family, config)
            assert found.found
            assert found.threshold == pytest.approx(oracle)

    def test_log_cost_vs_grid(self):
        backend = sharp_backend()
        config = AdaptiveConfig(num_steps=16)
        planner = AdaptivePlanner(backend, config)
        threshold = planner.find_threshold("synthetic", "step-mid")
        # Virtual lower bracket: 1 top-endpoint probe + ceil(log2(16)) splits.
        assert threshold.num_probed_severities <= 1 + math.ceil(math.log2(16))
        assert threshold.grid_size == 16
        assert threshold.scenarios_spent < 16 * config.repeats_per_round

    def test_undetectable_family_reports_no_threshold(self):
        planner = AdaptivePlanner(sharp_backend(), AdaptiveConfig(num_steps=16))
        threshold = planner.find_threshold("synthetic", "never")
        assert not threshold.found
        assert threshold.threshold is None
        assert threshold.ci_low is None and threshold.ci_high is None
        # Deciding "undetectable" costs exactly one probed severity (the top).
        assert threshold.num_probed_severities == 1

    def test_ci_brackets_the_threshold(self):
        planner = AdaptivePlanner(sharp_backend(), AdaptiveConfig(num_steps=16))
        threshold = planner.find_threshold("synthetic", "step-mid")
        assert threshold.ci_low < 0.47 <= threshold.ci_high
        assert threshold.ci_high == pytest.approx(threshold.threshold)

    def test_unknown_family_rejected(self):
        planner = AdaptivePlanner(sharp_backend())
        with pytest.raises(ValidationError):
            planner.find_threshold("synthetic", "no-such-family")

    def test_run_validates_family_list(self):
        planner = AdaptivePlanner(sharp_backend())
        with pytest.raises(ValidationError):
            planner.run([])
        with pytest.raises(ValidationError):
            planner.run(["step-mid", "step-mid"])

    def test_report_round_trip(self):
        planner = AdaptivePlanner(sharp_backend(), AdaptiveConfig(num_steps=16))
        report = planner.run(["step-low", "never"]).report
        rebuilt = ThresholdReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report
        assert rebuilt.to_dict() == report.to_dict()


# --------------------------------------------------------------------------- #
# Probabilistic bisection
# --------------------------------------------------------------------------- #
class TestProbabilisticBisection:
    def test_agrees_with_oracle_within_one_step(self):
        config = AdaptiveConfig(num_steps=16, strategy="probabilistic")
        step = 1.0 / 16
        for seed in range(5):
            backend = sharp_backend(seed=seed)
            planner = AdaptivePlanner(backend, config)
            threshold = planner.find_threshold("synthetic", "step-mid")
            oracle = backend.grid_oracle("step-mid", config)
            assert threshold.found
            assert abs(threshold.threshold - oracle) <= step + 1e-12

    def test_undetectable_family_reports_no_threshold(self):
        config = AdaptiveConfig(num_steps=16, strategy="probabilistic")
        planner = AdaptivePlanner(sharp_backend(), config)
        threshold = planner.find_threshold("synthetic", "never")
        assert not threshold.found
        assert threshold.posterior_confidence is not None

    def test_query_budget_is_respected(self):
        config = AdaptiveConfig(
            num_steps=16, strategy="probabilistic", pba_max_queries=10
        )
        planner = AdaptivePlanner(sharp_backend(), config)
        threshold = planner.find_threshold("synthetic", "step-mid")
        assert threshold.scenarios_spent <= 10


# --------------------------------------------------------------------------- #
# Execution budgets
# --------------------------------------------------------------------------- #
class TestExecutionBudget:
    def test_charge_is_all_or_nothing(self):
        budget = ExecutionBudget(5)
        budget.charge(3)
        assert budget.spent == 3 and budget.remaining == 2
        with pytest.raises(BudgetExhaustedError):
            budget.charge(3)
        # The refused batch must not be partially charged.
        assert budget.spent == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            ExecutionBudget(0)
        with pytest.raises(ValidationError):
            ExecutionBudget(4).charge(-1)

    def test_planner_stops_before_overspending(self):
        backend = sharp_backend()
        config = AdaptiveConfig(num_steps=16)  # 3 repeats per round
        planner = AdaptivePlanner(backend, config)
        budget = ExecutionBudget(4)
        with pytest.raises(BudgetExhaustedError):
            planner.find_threshold("synthetic", "step-mid", budget=budget)
        assert budget.spent == 3  # one full round, second round refused
        assert backend.scenarios_spent == 3


# --------------------------------------------------------------------------- #
# Report plumbing
# --------------------------------------------------------------------------- #
class TestThresholdReport:
    def build(self):
        planner = AdaptivePlanner(sharp_backend(), AdaptiveConfig(num_steps=16))
        return planner.run(["step-low", "step-mid", "never"])

    def test_lookup_and_ambiguity(self):
        report = self.build().report
        assert report.threshold_for("step-low").family == "step-low"
        with pytest.raises(ValidationError):
            report.threshold_for("unknown-family")

    def test_efficiency_accounting(self):
        report = self.build().report
        assert report.scenarios_spent == sum(
            threshold.scenarios_spent for threshold in report.thresholds
        )
        assert report.scenarios_saved_vs_grid == pytest.approx(
            report.grid_equivalent_scenarios / report.scenarios_spent
        )
        assert report.scenarios_saved_vs_grid > 1.0

    def test_to_text_lists_missing_families(self):
        text = self.build().report.to_text()
        assert "adaptive thresholds" in text
        assert "no detectable severity on the grid: never" in text

    def test_synthetic_result_has_no_campaign_summary(self):
        result = self.build()
        assert result.outcomes == ()
        with pytest.raises(ValidationError):
            result.summary()

    def test_attaches_to_coverage_report(self):
        coverage = FaultCoverageReport.from_dictionary(make_dictionary(), num_trials=2000)
        assert coverage.thresholds is None
        combined = coverage.with_thresholds(self.build().report)
        assert combined.thresholds is not None
        assert "adaptive thresholds" in combined.to_text()
        payload = json.loads(json.dumps(combined.to_dict()))
        assert payload["thresholds"]["scenarios_spent"] > 0
        with pytest.raises(ValidationError):
            coverage.with_thresholds("not-a-report")


# --------------------------------------------------------------------------- #
# Importance-sampled escape / yield Monte Carlo
# --------------------------------------------------------------------------- #
class TestImportanceMonteCarlo:
    def test_deterministic_under_seed(self):
        dictionary = make_dictionary()
        a = importance_monte_carlo(dictionary, seed=7, num_trials=4000)
        b = importance_monte_carlo(dictionary, seed=7, num_trials=4000)
        assert a == b
        assert a != importance_monte_carlo(dictionary, seed=8, num_trials=4000)

    def test_unbiased_on_mixed_dictionary(self):
        # Records pass the screen at rates 0, 0.5 and 1 → the uniform-over-
        # records truth is a faulty pass rate of 0.5.
        estimate = importance_monte_carlo(
            make_dictionary(), num_trials=20000, seed=11
        )
        assert estimate.faulty_pass_rate == pytest.approx(0.5, abs=0.03)
        assert abs(estimate.faulty_pass_rate - 0.5) <= 4 * estimate.standard_error
        # Yield loss is exact (computed from the reference flags, no MC error).
        assert estimate.yield_loss_rate == 0.0
        assert 0.0 < estimate.effective_sample_size <= estimate.num_trials

    def test_degenerate_homogeneous_records(self):
        # All-detected and never-detected records carry zero variance; the
        # proposal degrades to uniform and the estimate stays unbiased.
        dictionary = FaultDictionary(
            records=(
                record(PaCompressionFault(severity=1.0), "pa-compression-s1", [True, True]),
                record(DcdeErrorFault(severity=1.0), "dcde-error-s1", [False, False]),
            ),
            references=tuple(signature(f"r{i}") for i in range(4)),
        )
        estimate = importance_monte_carlo(dictionary, num_trials=20000, seed=3)
        assert estimate.faulty_pass_rate == pytest.approx(0.5, abs=0.03)

    def test_validation(self):
        dictionary = make_dictionary()
        with pytest.raises(ValidationError):
            importance_monte_carlo(dictionary, fault_probability=1.5)
        with pytest.raises(ValidationError):
            importance_monte_carlo(dictionary, num_trials=0)
        with pytest.raises(ValidationError):
            importance_monte_carlo(dictionary, proposal_floor=0.0)

    def test_round_trip(self):
        estimate = importance_monte_carlo(make_dictionary(), num_trials=2000, seed=5)
        rebuilt = type(estimate).from_dict(json.loads(json.dumps(estimate.to_dict())))
        assert rebuilt == estimate
