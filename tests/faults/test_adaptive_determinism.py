"""Seeded-determinism and interrupt/resume tests for the adaptive planner.

The planner's trajectory is a deterministic function of the verdicts, the
verdicts derive from per-scenario seeds computed from labels, and the
labels carry persistent per-severity repeat counters — so the same seed
must produce a bit-identical :class:`ThresholdReport` whether the probe
rounds run serially or on a process pool, and a budget-interrupted search
resumed through the :class:`CampaignStore` must replay its archived
prefix as cache hits into the identical report.
"""

import pytest

from repro.bist import BistConfig
from repro.bist.runner import ExecutionBudget
from repro.errors import BudgetExhaustedError
from repro.faults import (
    AdaptiveConfig,
    AdaptivePlanner,
    CampaignProbeBackend,
    SyntheticFamily,
    SyntheticProbeBackend,
    ThresholdReport,
)
from repro.store import CampaignStore

PROFILE = "paper-qpsk-1ghz"
FAMILY = "pa-compression"

FAST_CONFIG = BistConfig(
    num_samples_fast=192,
    num_samples_slow=96,
    lms_max_iterations=20,
    num_cost_points=40,
    measure_evm_enabled=False,
    seed=99,
)

SEARCH_CONFIG = AdaptiveConfig(num_steps=4, repeats_per_round=2, max_rounds_per_probe=1)


def backend(max_workers=1, store=None):
    return CampaignProbeBackend(
        [PROFILE],
        bist_config=FAST_CONFIG,
        max_workers=max_workers,
        store=store,
    )


def run_search(max_workers=1, store=None, budget=None):
    planner = AdaptivePlanner(backend(max_workers, store), SEARCH_CONFIG)
    return planner.run([FAMILY], budget=budget)


class TestSyntheticDeterminism:
    """Fast checks on the synthetic backend: seed in, trajectory out."""

    def build(self, seed):
        synthetic = SyntheticProbeBackend(
            [SyntheticFamily("noisy", threshold=0.47, steepness=25.0)], seed=seed
        )
        return AdaptivePlanner(synthetic, AdaptiveConfig(num_steps=16))

    def test_same_seed_same_report(self):
        first = self.build(seed=3).run(["noisy"]).report
        second = self.build(seed=3).run(["noisy"]).report
        assert first == second
        assert first.to_dict() == second.to_dict()

    def test_seed_reaches_the_verdicts(self):
        reports = {self.build(seed=seed).run(["noisy"]).report for seed in range(8)}
        # Noisy verdicts: at least some seeds must follow different
        # trajectories (identical ones would mean the seed is ignored).
        assert len(reports) > 1


@pytest.mark.slow
class TestSerialParallelIdentity:
    def test_parallel_trajectory_bit_identical_to_serial(self):
        serial = run_search(max_workers=1)
        parallel = run_search(max_workers=2)
        assert serial.report == parallel.report
        assert serial.report.to_dict() == parallel.report.to_dict()
        # The scenario trajectories match label-for-label, report-for-report.
        assert [o.label for o in serial.outcomes] == [o.label for o in parallel.outcomes]
        for ours, theirs in zip(serial.outcomes, parallel.outcomes):
            assert ours.report.to_dict() == theirs.report.to_dict()


@pytest.mark.slow
class TestInterruptResume:
    def test_budget_interrupt_then_resume_reproduces_report(self, tmp_path):
        reference = run_search()

        # Interrupt: the budget refuses the probe that would overspend,
        # after the store has archived every completed round.
        store = CampaignStore(tmp_path / "store")
        with pytest.raises(BudgetExhaustedError):
            run_search(store=store, budget=ExecutionBudget(3))
        archived = len(store)
        assert 0 < archived < len(reference.outcomes)

        # Resume: the archived prefix replays as cache hits and the search
        # continues into the identical report.
        resumed = run_search(store=CampaignStore(tmp_path / "store"))
        assert resumed.report == reference.report
        summary = resumed.summary()
        assert summary.cache_hits == archived
        assert summary.cache_misses == len(reference.outcomes) - archived

    def test_full_replay_costs_no_budget(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        first = run_search(store=store)

        budget = ExecutionBudget(1)
        replay = run_search(store=CampaignStore(tmp_path / "store"), budget=budget)
        assert replay.report == first.report
        assert budget.spent == 0
        assert replay.summary().cache_hits == len(first.outcomes)

    def test_report_survives_json_archive(self, tmp_path):
        import json

        report = run_search().report
        rebuilt = ThresholdReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report
