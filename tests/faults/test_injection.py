"""Tests for repro.faults.injection: campaign expansion and plumbing."""

import pytest

from repro.bist import BistConfig, ConverterSpec
from repro.errors import ValidationError
from repro.faults import (
    FaultCampaign,
    PaCompressionFault,
    TiadcBandwidthFault,
    TiadcSkewFault,
    fault_grid,
)
from repro.signals import get_profile
from repro.transmitter import ImpairmentConfig


def two_family_campaign(**kwargs):
    defaults = dict(num_repeats=2, num_reference=3)
    defaults.update(kwargs)
    return FaultCampaign(
        ["paper-qpsk-1ghz"],
        fault_grid(["pa-compression", "tiadc-skew"], [0.5, 1.0]),
        **defaults,
    )


class TestExpansion:
    def test_scenario_count(self):
        campaign = two_family_campaign()
        # 3 references + 2 families x 2 severities x 2 repeats = 11
        assert len(campaign) == 11
        assert len(campaign.build_scenarios()) == 11

    def test_labels_unique_and_structured(self):
        scenarios = two_family_campaign().build_scenarios()
        labels = [scenario.label for scenario in scenarios]
        assert len(set(labels)) == len(labels)
        assert "paper-qpsk-1ghz/reference/r0" in labels
        assert "paper-qpsk-1ghz/pa-compression-s0.5/r1" in labels

    def test_points_bound_per_profile(self):
        campaign = FaultCampaign(
            ["paper-qpsk-1ghz", "uhf-8psk-400mhz"],
            [TiadcBandwidthFault()],
            num_repeats=1,
            num_reference=1,
        )
        points = campaign.points
        assert len(points) == 2
        # The bandwidth fault specialises to each profile's carrier.
        by_profile = {point.profile_name: point.fault for point in points}
        assert by_profile["paper-qpsk-1ghz"].reference_frequency_hz == pytest.approx(1.0e9)
        assert by_profile["uhf-8psk-400mhz"].reference_frequency_hz == pytest.approx(
            get_profile("uhf-8psk-400mhz").carrier_frequency_hz
        )

    def test_fault_scenarios_carry_injected_state(self):
        scenarios = two_family_campaign().build_scenarios()
        by_label = {scenario.label: scenario for scenario in scenarios}
        skew = by_label["paper-qpsk-1ghz/tiadc-skew-s1/r0"]
        assert skew.converter.channel1_skew_seconds == pytest.approx(40e-12)
        reference = by_label["paper-qpsk-1ghz/reference/r0"]
        assert reference.converter == ConverterSpec()

    def test_base_impairments_and_converter_respected(self):
        base_impairments = ImpairmentConfig(output_snr_db=30.0)
        base_converter = ConverterSpec(resolution_bits=12)
        campaign = FaultCampaign(
            ["paper-qpsk-1ghz"],
            [PaCompressionFault()],
            base_impairments=base_impairments,
            base_converter=base_converter,
            num_repeats=1,
            num_reference=1,
        )
        scenarios = campaign.build_scenarios()
        by_label = {scenario.label: scenario for scenario in scenarios}
        faulty = by_label["paper-qpsk-1ghz/pa-compression-s1/r0"]
        assert faulty.impairments.output_snr_db == pytest.approx(30.0)
        assert faulty.converter.resolution_bits == 12

    def test_num_symbols_propagates(self):
        campaign = FaultCampaign(
            ["paper-qpsk-1ghz"],
            [PaCompressionFault()],
            num_repeats=1,
            num_reference=1,
            num_symbols=128,
        )
        for scenario in campaign.build_scenarios():
            assert scenario.num_symbols == 128


class TestValidation:
    def test_empty_profiles_rejected(self):
        with pytest.raises(ValidationError):
            FaultCampaign([], [PaCompressionFault()])

    def test_empty_faults_rejected(self):
        with pytest.raises(ValidationError):
            FaultCampaign(["paper-qpsk-1ghz"], [])

    def test_non_fault_rejected(self):
        with pytest.raises(ValidationError):
            FaultCampaign(["paper-qpsk-1ghz"], ["pa-compression"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValidationError):
            FaultCampaign(["nope"], [PaCompressionFault()])

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValidationError):
            FaultCampaign(["paper-qpsk-1ghz"], [PaCompressionFault()], num_repeats=0)
        with pytest.raises(ValidationError):
            FaultCampaign(["paper-qpsk-1ghz"], [PaCompressionFault()], num_reference=0)

    def test_duplicate_fault_points_rejected(self):
        campaign = FaultCampaign(
            ["paper-qpsk-1ghz"],
            [TiadcSkewFault(), TiadcSkewFault()],
        )
        with pytest.raises(ValidationError, match="duplicate fault point"):
            campaign.points
