"""Tests for repro.faults.coverage and repro.faults.report.

These tests build the dictionary from synthetic signatures, so the
detection / coverage / escape / yield arithmetic is pinned down exactly and
independently of the (slow) BIST execution path.
"""

import json

import pytest

from repro.errors import ValidationError
from repro.faults import (
    CoverageResult,
    DcdeErrorFault,
    FaultCoverageReport,
    FaultDictionary,
    FaultPoint,
    FaultRecord,
    FaultSignature,
    PaCompressionFault,
    TestLimits,
    TiadcSkewFault,
)

PROFILE = "paper-qpsk-1ghz"


def signature(label, failed=False, evm=3.0, acpr=-43.0, obw=14e6, mask=5.0, skew=2.0, executed=True, error=None):
    return FaultSignature(
        label=label,
        profile_name=PROFILE if executed else None,
        executed=executed,
        bist_failed=failed,
        evm_percent=evm,
        acpr_worst_db=acpr,
        occupied_bandwidth_hz=obw,
        mask_margin_db=mask,
        skew_deviation_ps=skew,
        error=error,
    )


def record(fault, label, flags):
    """A record whose repeats fail the BIST according to ``flags``."""
    return FaultRecord(
        point=FaultPoint(label=f"{PROFILE}/{label}", profile_name=PROFILE, fault=fault),
        signatures=tuple(
            signature(f"{PROFILE}/{label}/r{i}", failed=flag) for i, flag in enumerate(flags)
        ),
    )


def make_dictionary():
    """3 faults: always detected, marginal (1/2), never detected."""
    return FaultDictionary(
        records=(
            record(PaCompressionFault(severity=1.0), "pa-compression-s1", [True, True]),
            record(PaCompressionFault(severity=0.5), "pa-compression-s0.5", [True, False]),
            record(DcdeErrorFault(severity=1.0), "dcde-error-s1", [False, False]),
        ),
        references=tuple(signature(f"{PROFILE}/reference/r{i}") for i in range(4)),
    )


class TestTestLimits:
    def test_default_uses_bist_verdict(self):
        limits = TestLimits()
        assert limits.flags(signature("x", failed=True))
        assert not limits.flags(signature("x", failed=False))

    def test_explicit_bounds_tighten(self):
        limits = TestLimits(max_evm_percent=2.0)
        assert limits.flags(signature("x", evm=3.0))
        limits = TestLimits(max_acpr_db=-45.0)
        assert limits.flags(signature("x", acpr=-43.0))
        limits = TestLimits(max_occupied_bandwidth_hz=10e6)
        assert limits.flags(signature("x", obw=14e6))
        limits = TestLimits(min_mask_margin_db=6.0)
        assert limits.flags(signature("x", mask=5.0))
        limits = TestLimits(max_skew_deviation_ps=1.0)
        assert limits.flags(signature("x", skew=2.0))

    def test_missing_measurements_do_not_flag(self):
        limits = TestLimits(max_evm_percent=2.0)
        assert not limits.flags(signature("x", evm=None))

    def test_errored_scenarios_flagged_by_default(self):
        errored = signature("x", executed=False, error="boom")
        assert TestLimits().flags(errored)
        assert not TestLimits(flag_errors=False).flags(errored)

    def test_round_trip(self):
        limits = TestLimits(max_skew_deviation_ps=20.0, max_evm_percent=8.0)
        assert TestLimits.from_dict(json.loads(json.dumps(limits.to_dict()))) == limits


class TestDetectionAndCoverage:
    def test_detection_probability(self):
        dictionary = make_dictionary()
        assert dictionary.detection_probability(f"{PROFILE}/pa-compression-s1") == 1.0
        assert dictionary.detection_probability(f"{PROFILE}/pa-compression-s0.5") == 0.5
        assert dictionary.detection_probability(f"{PROFILE}/dcde-error-s1") == 0.0

    def test_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            make_dictionary().detection_probability("nope")

    def test_coverage_classification(self):
        coverage = make_dictionary().coverage(detection_threshold=0.5)
        assert isinstance(coverage, CoverageResult)
        assert set(coverage.covered) == {
            f"{PROFILE}/pa-compression-s1",
            f"{PROFILE}/pa-compression-s0.5",
        }
        assert set(coverage.uncovered) == {f"{PROFILE}/dcde-error-s1"}
        assert set(coverage.marginal) == {f"{PROFILE}/pa-compression-s0.5"}
        assert coverage.coverage == pytest.approx(2.0 / 3.0)
        assert coverage.weighted_coverage == pytest.approx((1.0 + 0.5 + 0.0) / 3.0)

    def test_undetectable_fault_reported_uncovered_at_any_threshold(self):
        dictionary = make_dictionary()
        for threshold in (0.0, 0.5, 1.0):
            coverage = dictionary.coverage(detection_threshold=threshold)
            assert f"{PROFILE}/dcde-error-s1" in coverage.uncovered

    def test_false_alarm_rate(self):
        dictionary = FaultDictionary(
            records=(record(PaCompressionFault(), "pa-compression-s1", [True]),),
            references=(
                signature("r0"),
                signature("r1", failed=True),
                signature("r2"),
                signature("r3"),
            ),
        )
        assert dictionary.false_alarm_rate() == pytest.approx(0.25)

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValidationError):
            FaultDictionary(records=(), references=(signature("r0"),))
        with pytest.raises(ValidationError):
            FaultDictionary(
                records=(record(PaCompressionFault(), "pa", [True]),), references=()
            )


class TestMonteCarlo:
    def test_deterministic_under_seed(self):
        dictionary = make_dictionary()
        a = dictionary.monte_carlo(seed=7)
        b = dictionary.monte_carlo(seed=7)
        assert a == b
        c = dictionary.monte_carlo(seed=8)
        assert c != a

    def test_perfect_screen_has_no_escapes(self):
        dictionary = FaultDictionary(
            records=(record(PaCompressionFault(), "pa-compression-s1", [True, True]),),
            references=tuple(signature(f"r{i}") for i in range(4)),
        )
        estimate = dictionary.monte_carlo(fault_probability=0.2, num_trials=5000)
        assert estimate.test_escape_rate == 0.0
        assert estimate.yield_loss_rate == 0.0
        assert estimate.num_faulty + estimate.num_good == 5000

    def test_blind_screen_escapes_at_prevalence(self):
        dictionary = FaultDictionary(
            records=(record(DcdeErrorFault(), "dcde-error-s1", [False, False]),),
            references=tuple(signature(f"r{i}") for i in range(4)),
        )
        estimate = dictionary.monte_carlo(fault_probability=0.1, num_trials=20000)
        # Nothing is ever flagged: every faulty unit ships, so the escape
        # rate equals the realised prevalence and no yield is lost.
        assert estimate.faulty_pass_rate == 1.0
        assert estimate.yield_loss_rate == 0.0
        assert estimate.test_escape_rate == pytest.approx(0.1, abs=0.02)

    def test_false_alarms_cost_yield(self):
        dictionary = FaultDictionary(
            records=(record(PaCompressionFault(), "pa-compression-s1", [True]),),
            references=(signature("r0", failed=True), signature("r1"), signature("r2"), signature("r3")),
        )
        estimate = dictionary.monte_carlo(fault_probability=0.0, num_trials=20000)
        assert estimate.yield_loss_rate == pytest.approx(0.25, abs=0.02)

    def test_validation(self):
        dictionary = make_dictionary()
        with pytest.raises(ValidationError):
            dictionary.monte_carlo(fault_probability=1.5)
        with pytest.raises(ValidationError):
            dictionary.monte_carlo(num_trials=0)

    def test_zero_detected_family_short_circuits_exactly(self):
        # Regression: a family with zero detected scenarios must not
        # re-derive its detection from the flag grid — every unit carrying
        # it escapes, with no Monte Carlo noise on that contribution.
        dictionary = FaultDictionary(
            records=(record(DcdeErrorFault(), "dcde-error-s1", [False] * 3),),
            references=tuple(signature(f"r{i}") for i in range(4)),
        )
        estimate = dictionary.monte_carlo(fault_probability=0.3, num_trials=5000)
        assert estimate.faulty_pass_rate == 1.0

    def test_homogeneous_short_circuit_is_draw_identical(self):
        # The short-circuit skips the per-trial repeat lookup for
        # homogeneous families, so the *number* of archived repeats of such
        # a family must not perturb any random stream: estimates over
        # dictionaries differing only in that count are bit-identical.
        def build(num_dcde_repeats):
            return FaultDictionary(
                records=(
                    record(PaCompressionFault(severity=0.5), "pa-compression-s0.5", [True, False]),
                    record(DcdeErrorFault(), "dcde-error-s1", [False] * num_dcde_repeats),
                ),
                references=tuple(signature(f"r{i}") for i in range(4)),
            )

        short = build(2).monte_carlo(fault_probability=0.4, num_trials=8000, seed=5)
        long = build(6).monte_carlo(fault_probability=0.4, num_trials=8000, seed=5)
        assert short == long


class TestSerialization:
    def test_dictionary_round_trip(self):
        dictionary = make_dictionary()
        payload = json.loads(json.dumps(dictionary.to_dict()))
        rebuilt = FaultDictionary.from_dict(payload)
        assert rebuilt == dictionary

    def test_signature_round_trip(self):
        original = signature("x", failed=True, evm=None)
        assert FaultSignature.from_dict(json.loads(json.dumps(original.to_dict()))) == original


class TestCoverageReport:
    def test_ranking_and_statuses(self):
        report = FaultCoverageReport.from_dictionary(make_dictionary(), num_trials=2000)
        labels = [entry.label for entry in report.entries]
        assert labels == [
            f"{PROFILE}/pa-compression-s1",
            f"{PROFILE}/pa-compression-s0.5",
            f"{PROFILE}/dcde-error-s1",
        ]
        statuses = {entry.label: entry.status for entry in report.entries}
        assert statuses[f"{PROFILE}/pa-compression-s1"] == "covered"
        # Detected on 1 of 2 repeats: covered at threshold 0.5 but marginal.
        assert statuses[f"{PROFILE}/pa-compression-s0.5"] == "covered"
        assert statuses[f"{PROFILE}/dcde-error-s1"] == "uncovered"
        marginal = {entry.label: entry.marginal for entry in report.entries}
        assert marginal == {
            f"{PROFILE}/pa-compression-s1": False,
            f"{PROFILE}/pa-compression-s0.5": True,
            f"{PROFILE}/dcde-error-s1": False,
        }
        assert [entry.label for entry in report.uncovered_faults()] == [
            f"{PROFILE}/dcde-error-s1"
        ]
        assert [entry.label for entry in report.marginal_faults()] == [
            f"{PROFILE}/pa-compression-s0.5"
        ]

    def test_uncovered_list_reconciles_with_coverage_fraction(self):
        # A marginal-but-undetected point (P = 0.25 at threshold 0.5) must
        # appear in the uncovered list, so headline coverage and the lists
        # in the serialized artifact always agree.
        dictionary = FaultDictionary(
            records=(
                record(PaCompressionFault(severity=1.0), "pa-compression-s1", [True] * 4),
                record(
                    PaCompressionFault(severity=0.5),
                    "pa-compression-s0.5",
                    [True, False, False, False],
                ),
                record(DcdeErrorFault(severity=1.0), "dcde-error-s1", [False] * 4),
            ),
            references=tuple(signature(f"{PROFILE}/reference/r{i}") for i in range(4)),
        )
        report = FaultCoverageReport.from_dictionary(dictionary, num_trials=2000)
        uncovered = [entry.label for entry in report.uncovered_faults()]
        assert set(uncovered) == set(report.coverage_result.uncovered)
        assert f"{PROFILE}/pa-compression-s0.5" in uncovered
        assert report.coverage == pytest.approx(1.0 - len(uncovered) / 3.0)
        payload = report.to_dict()
        assert set(payload["uncovered"]) == set(report.coverage_result.uncovered)
        assert f"{PROFILE}/pa-compression-s0.5" in payload["marginal"]

    def test_to_text_mentions_holes(self):
        report = FaultCoverageReport.from_dictionary(make_dictionary(), num_trials=2000)
        text = report.to_text()
        assert "fault coverage" in text
        assert "uncovered (test holes)" in text
        assert "dcde-error-s1" in text

    def test_to_dict_is_json_friendly(self):
        report = FaultCoverageReport.from_dictionary(make_dictionary(), num_trials=2000)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["coverage"] == pytest.approx(2.0 / 3.0)
        assert payload["uncovered"] == [f"{PROFILE}/dcde-error-s1"]
        assert payload["escape"]["num_trials"] == 2000

    def test_same_seed_same_escape_numbers(self):
        a = FaultCoverageReport.from_dictionary(make_dictionary(), seed=3, num_trials=2000)
        b = FaultCoverageReport.from_dictionary(make_dictionary(), seed=3, num_trials=2000)
        assert a.escape == b.escape
        assert a.to_dict() == b.to_dict()
