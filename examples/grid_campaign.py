"""Parallel scenario-grid campaign: profiles x faults on a process pool.

This example demonstrates the campaign orchestration subsystem:

* :class:`~repro.bist.runner.ScenarioGrid` expands a cartesian product of
  waveform profiles x transmitter faults (PA compression, IQ imbalance)
  x converter faults (channel skew) into a scenario list;
* :class:`~repro.bist.runner.CampaignRunner` executes the scenarios on a
  ``concurrent.futures`` process pool (``--workers 1`` runs serially and
  produces bit-identical reports), streaming per-scenario progress and
  isolating failures;
* :class:`~repro.bist.report.CampaignSummary` aggregates pass rates per
  profile, worst-case margins and skew-estimation error statistics.

Run with:  PYTHONPATH=src python examples/grid_campaign.py --workers 4
Use ``--fast`` for a quick smoke run (smaller acquisitions, ~10x faster).
"""

import argparse
import os
import time

from repro.bist import (
    BistConfig,
    CampaignRunner,
    ConverterSpec,
    ScenarioGrid,
    iq_imbalance_sweep,
    pa_saturation_sweep,
    skew_sweep,
)
from repro.transmitter import ImpairmentConfig


def build_scenarios():
    """2 profiles x 3 transmitter states x 2 converter skews = 12 scenarios."""
    grid = (
        ScenarioGrid()
        .add_profiles("paper-qpsk-1ghz", "uhf-8psk-400mhz")
        .add_impairment("nominal", ImpairmentConfig())
        .add_impairments(pa_saturation_sweep([0.75]))
        .add_impairments(iq_imbalance_sweep([(2.5, 15.0)]))
        .add_converters(skew_sweep([0.0, 2.0e-12]))
    )
    print(f"grid: {len(grid)} scenarios")
    return grid.build()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=max(1, os.cpu_count() or 1),
        help="process-pool size (1 = serial; default: CPU count)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="small acquisitions for a quick smoke run",
    )
    args = parser.parse_args()

    if args.fast:
        config = BistConfig(
            num_samples_fast=128,
            num_samples_slow=64,
            lms_max_iterations=25,
            num_cost_points=60,
            measure_evm_enabled=False,
        )
    else:
        config = BistConfig(
            num_samples_fast=320,
            num_samples_slow=160,
            num_cost_points=200,
            measure_evm_enabled=True,
        )

    runner = CampaignRunner(
        bist_config=config,
        converter_factory=ConverterSpec(dcde_static_error_seconds=5e-12, seed=123),
        max_workers=args.workers,
        progress_callback=lambda outcome: print(f"  done: {outcome.summary()}"),
    )
    scenarios = build_scenarios()
    print(f"running with {args.workers} worker(s)...")
    start = time.perf_counter()
    execution = runner.run(scenarios)
    wall = time.perf_counter() - start

    print()
    print(execution.summary().to_text())
    print()
    print(
        f"wall clock {wall:.1f} s for {execution.total_duration_seconds:.1f} s of "
        f"scenario work ({execution.total_duration_seconds / wall:.2f}x concurrency)"
    )
    for label, error in execution.errors:
        print(f"scenario {label!r} errored: {error}")


if __name__ == "__main__":
    main()
