"""Quickstart: run the paper's RF BIST end to end on one transmitter.

This script builds the behavioural platform of the paper (Section V):

* a homodyne transmitter sending 10 MHz QPSK shaped by an SRRC filter
  (roll-off 0.5) on a 1 GHz carrier;
* the receiver's two 10-bit ADCs reconfigured as a bandpass time-interleaved
  converter (BP-TIADC) running at B = 90 MHz per channel with a programmable
  inter-channel delay of nominally 180 ps and 3 ps rms time-skew jitter;

and then runs the complete BIST: acquisition at B and B/2, LMS time-skew
estimation, nonuniform reconstruction, and spectral-mask / ACPR / occupied
bandwidth / EVM checks against the built-in "paper-qpsk-1ghz" profile.

Run with:  python examples/quickstart.py
"""

from repro.bist import BistConfig, TransmitterBist, default_converter
from repro.transmitter import HomodyneTransmitter, TransmitterConfig


def main() -> None:
    # 1. The device under test: the paper's transmitter, impairment-free.
    transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=1))

    # 2. The acquisition hardware: the receiver ADCs plus the DCDE.  The DCDE
    #    static error and the channel-1 skew model the (unknown to the DSP)
    #    difference between the programmed and the physical delay.
    config = BistConfig()  # the paper's defaults: B = 90 MHz, D = 180 ps, 61 taps
    converter = default_converter(
        config.acquisition_bandwidth_hz,
        dcde_static_error_seconds=6e-12,
        channel1_skew_seconds=2e-12,
        seed=42,
    )

    # 3. Run the BIST.
    engine = TransmitterBist(transmitter, converter, profile="paper-qpsk-1ghz", config=config)
    report = engine.run()

    # 4. Inspect the outcome.
    print(report.to_text())
    print()
    calibration = report.calibration
    print(
        "time-skew calibration: programmed "
        f"{calibration.programmed_delay_seconds * 1e12:.1f} ps, physically realised "
        f"{calibration.true_delay_seconds * 1e12:.1f} ps, estimated "
        f"{calibration.estimated_delay_seconds * 1e12:.2f} ps "
        f"(error {calibration.estimation_error_seconds * 1e12:.3f} ps)"
    )
    print(f"overall verdict: {report.verdict.value.upper()}")


if __name__ == "__main__":
    main()
