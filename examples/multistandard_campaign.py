"""Multistandard BIST campaign: one DSP pipeline, many waveforms.

The key selling point of the paper's strategy is flexibility: the same
receiver ADCs, the same DCDE and the same reconstruction/calibration DSP test
the transmitter under *every* waveform the SDR supports, just by
re-parameterising the acquisition.  This example runs the BIST campaign
across several built-in waveform profiles (VHF narrowband BPSK up to L-band
64-QAM) and across fault-injection scenarios, then prints the campaign
summary table.

Run with:  python examples/multistandard_campaign.py
(The full campaign simulates several complete transmitter bursts and takes a
couple of minutes.)
"""

from repro.bist import BistCampaign, BistConfig, CampaignScenario, default_converter
from repro.rf import IqImbalance, RappAmplifier
from repro.transmitter import ImpairmentConfig


def build_scenarios() -> list[CampaignScenario]:
    saturated_pa = ImpairmentConfig().with_amplifier(
        RappAmplifier(gain_db=0.0, saturation_amplitude=0.75, smoothness=1.2)
    )
    iq_fault = ImpairmentConfig(
        iq_imbalance=IqImbalance(gain_imbalance_db=2.5, phase_imbalance_deg=15.0)
    )
    return [
        # Fault-free units under three different waveforms (UHF 8-PSK, the
        # paper's L-band QPSK, L-band 64-QAM).  The two remaining built-in
        # profiles are harder corners for this BIST instance and are left out
        # of the demo: "narrowband-vhf-bpsk" is limited by the transmitter's
        # own short (10-symbol) SRRC span rather than by the BIST, and
        # "wideband-16qam-2ghz" sits at a 2.03 GHz carrier where the 3 ps rms
        # skew jitter flattens the calibration cost function (see
        # EXPERIMENTS.md, "known limitations").
        CampaignScenario(profile="uhf-8psk-400mhz", label="uhf-8psk nominal"),
        CampaignScenario(profile="paper-qpsk-1ghz", label="paper-qpsk nominal"),
        CampaignScenario(profile="lband-64qam-1p5ghz", label="lband-64qam nominal"),
        # Fault injection on the paper's waveform.
        CampaignScenario(
            profile="paper-qpsk-1ghz", label="paper-qpsk saturated-PA", impairments=saturated_pa
        ),
        CampaignScenario(
            profile="paper-qpsk-1ghz", label="paper-qpsk IQ-imbalance", impairments=iq_fault
        ),
    ]


def main() -> None:
    config = BistConfig(
        num_samples_fast=320,
        num_samples_slow=160,
        num_cost_points=200,
        measure_evm_enabled=True,
    )
    campaign = BistCampaign(
        build_scenarios(),
        bist_config=config,
        converter_factory=lambda bandwidth: default_converter(
            bandwidth,
            dcde_static_error_seconds=5e-12,
            channel1_skew_seconds=2e-12,
            seed=123,
        ),
    )
    result = campaign.run()

    print(result.summary_table())
    print()
    if result.all_passed:
        print("all scenarios passed (unexpected: the fault-injection scenarios should fail)")
    else:
        print(f"failing scenarios (as expected for the injected faults): {result.failures()}")

    print("\nper-scenario time-skew calibration:")
    for label, report in result.entries:
        calibration = report.calibration
        print(
            f"  {label:<28} D_hat = {calibration.estimated_delay_seconds * 1e12:7.2f} ps, "
            f"error vs physical delay = {calibration.estimation_error_seconds * 1e12:6.3f} ps, "
            f"{calibration.iterations} LMS iterations"
        )


if __name__ == "__main__":
    main()
