"""Fault-coverage study: can the loopback BIST actually screen faulty units?

This example exercises the fault-injection subsystem end to end:

* :func:`~repro.faults.models.fault_grid` expands fault families x
  severities into parametric fault models (transmitter side: PA
  compression, IQ imbalance, LO leakage, DAC degradation, filter drift;
  acquisition side: TIADC skew/mismatch, DCDE error);
* :class:`~repro.faults.injection.FaultCampaign` replicates every fault
  point under decorrelated measurement noise, adds a fault-free reference
  population and runs everything through the parallel campaign runner;
* :class:`~repro.faults.coverage.FaultDictionary` +
  :class:`~repro.faults.report.FaultCoverageReport` turn the outcomes into
  detection probabilities, fault coverage, false-alarm rate and the Monte
  Carlo test-escape / yield-loss estimates.

The printed ranking shows which physical defects the paper's architecture
catches, which are marginal, and which are structurally invisible (the DCDE
static error — absorbed by the LMS calibration — is the expected test hole).

Run with:  PYTHONPATH=src python examples/fault_coverage_study.py --workers 4
Use ``--fast`` for a quick smoke run and ``--output coverage.json`` to
archive the full report + dictionary as a JSON artifact.
"""

import argparse
import json
import os
import time

from repro.bist import BistConfig
from repro.faults import FaultCampaign, FaultCoverageReport, TestLimits, fault_grid

FAMILIES = [
    "pa-compression",
    "iq-imbalance",
    "lo-leakage",
    "dac-resolution",
    "filter-drift",
    "tiadc-skew",
    "tiadc-mismatch",
    "dcde-error",
]

#: The production screen: the BIST's own per-profile verdict plus an
#: explicit bound on the estimated-vs-programmed delay deviation (the only
#: DSP-visible trace of acquisition-side timing faults).
LIMITS = TestLimits(max_skew_deviation_ps=20.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=max(1, os.cpu_count() or 1),
        help="process-pool size (1 = serial; default: CPU count)",
    )
    parser.add_argument("--fast", action="store_true", help="small acquisitions for a smoke run")
    parser.add_argument("--output", type=str, default=None, help="write the JSON artifact here")
    args = parser.parse_args()

    if args.fast:
        # 256 fast samples is the smallest acquisition whose reconstructed
        # interval still covers the >= 16 symbols the EVM demodulator needs;
        # anything shorter silently skips EVM and blinds the modulator-fault
        # families (IQ imbalance, LO leakage, filter drift).
        config = BistConfig(
            num_samples_fast=256,
            num_samples_slow=128,
            lms_max_iterations=25,
            num_cost_points=80,
            measure_evm_enabled=True,
        )
        severities, num_repeats, num_reference, num_trials = [0.5, 1.0], 2, 4, 5000
    else:
        config = BistConfig(
            num_samples_fast=320,
            num_samples_slow=160,
            num_cost_points=200,
            measure_evm_enabled=True,
        )
        severities, num_repeats, num_reference, num_trials = [0.25, 0.5, 1.0], 4, 12, 50000

    campaign = FaultCampaign(
        ["paper-qpsk-1ghz"],
        fault_grid(FAMILIES, severities),
        bist_config=config,
        num_repeats=num_repeats,
        num_reference=num_reference,
    )
    print(
        f"fault campaign: {len(FAMILIES)} families x {len(severities)} severities, "
        f"{num_repeats} repeats + {num_reference} references = {len(campaign)} scenarios"
    )
    print(f"running with {args.workers} worker(s)...")
    start = time.perf_counter()
    result = campaign.run(
        max_workers=args.workers,
        progress_callback=lambda outcome: print(f"  done: {outcome.summary()}"),
    )
    wall = time.perf_counter() - start

    dictionary = result.dictionary()
    report = FaultCoverageReport.from_dictionary(dictionary, LIMITS, num_trials=num_trials)
    print()
    print(report.to_text())
    print()
    print(
        f"wall clock {wall:.1f} s for "
        f"{result.execution.total_duration_seconds:.1f} s of scenario work "
        f"({result.execution.total_duration_seconds / wall:.2f}x concurrency)"
    )
    for label, error in result.execution.errors:
        print(f"scenario {label!r} errored: {error}")

    if args.output:
        artifact = {
            "report": report.to_dict(),
            "dictionary": dictionary.to_dict(),
            "config": {
                "families": FAMILIES,
                "severities": severities,
                "num_repeats": num_repeats,
                "num_reference": num_reference,
                "workers": args.workers,
            },
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle)
        print(f"coverage artifact written to {args.output}")


if __name__ == "__main__":
    main()
