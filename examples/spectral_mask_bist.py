"""Spectral-mask BIST: catching a compressing power amplifier.

The paper motivates the whole architecture with spectral-mask compliance:
"the most vexing post-manufacture test issue for tactical radio units".  This
example tests two units of the same transmitter design - one healthy, one
with a power amplifier that compresses (a realistic manufacturing/thermal
fault) - and shows how the BIST separates them via the reconstructed output
spectrum.

Run with:  python examples/spectral_mask_bist.py
"""

import numpy as np

from repro.bist import BistConfig, SpectralMask, TransmitterBist, default_converter
from repro.rf import RappAmplifier
from repro.signals import get_profile
from repro.transmitter import HomodyneTransmitter, ImpairmentConfig, TransmitterConfig


def run_unit(label: str, impairments: ImpairmentConfig, config: BistConfig):
    """Run the BIST on one unit and return its report."""
    transmitter = HomodyneTransmitter(
        TransmitterConfig.paper_default(impairments=impairments, seed=10)
    )
    converter = default_converter(
        config.acquisition_bandwidth_hz,
        dcde_static_error_seconds=5e-12,
        channel1_skew_seconds=2e-12,
        seed=77,
    )
    engine = TransmitterBist(transmitter, converter, profile="paper-qpsk-1ghz", config=config)
    report = engine.run()
    print(f"\n--- {label} ---")
    print(report.to_text())
    return report


def print_mask_table(report, profile) -> None:
    """Print measured PSD vs mask limit at a few representative offsets."""
    mask = SpectralMask.from_profile(profile)
    spectrum = report.measurements.spectrum
    relative_db = spectrum.normalised_db()
    print(f"{'offset [MHz]':>14} {'measured [dB]':>15} {'mask limit [dB]':>16}")
    for offset_mhz in (8.0, 10.0, 15.0, 20.0, 30.0, 40.0):
        frequency = profile.carrier_frequency_hz + offset_mhz * 1e6
        index = int(np.argmin(np.abs(spectrum.frequencies_hz - frequency)))
        print(
            f"{offset_mhz:>14.1f} {relative_db[index]:>15.1f} "
            f"{mask.limit_at(offset_mhz * 1e6):>16.1f}"
        )


def main() -> None:
    profile = get_profile("paper-qpsk-1ghz")
    config = BistConfig(measure_evm_enabled=True)

    healthy = run_unit("healthy unit", ImpairmentConfig.ideal(), config)
    faulty = run_unit(
        "unit with compressing PA",
        ImpairmentConfig.ideal().with_amplifier(
            RappAmplifier(gain_db=0.0, saturation_amplitude=0.75, smoothness=1.2)
        ),
        config,
    )

    print("\nspectral detail of the faulty unit (regrowth visible beyond +/-10 MHz):")
    print_mask_table(faulty, profile)

    print("\nsummary:")
    print(f"  healthy unit: {healthy.verdict.value.upper()}")
    print(f"  faulty unit : {faulty.verdict.value.upper()}")
    print(
        "  faulty-unit worst mask margin: "
        f"{faulty.check('spectral_mask').measured:.1f} dB at the reported offset; "
        f"ACPR {faulty.check('acpr').measured:.1f} dB vs limit {faulty.check('acpr').limit:.1f} dB"
    )


if __name__ == "__main__":
    main()
