"""Resumable campaigns and golden-baseline gating with the campaign store.

This example demonstrates the persistence subsystem end to end:

1. a grid campaign runs against a :class:`~repro.store.CampaignStore` and is
   *interrupted* halfway (simulated by a progress callback that raises);
2. the identical campaign is launched again with the same store: the
   finished scenarios are served as cache hits (no re-execution) and only
   the remainder runs — the merged result is bit-identical to an
   uninterrupted run;
3. the completed execution becomes a golden baseline archive, a second run
   is gated against it with :class:`~repro.store.BaselineComparator`, and
   an artificially drifted copy shows the gate failing.

Run with:  PYTHONPATH=src python examples/resumable_campaign.py [--workers 2]
Use ``--fast`` for a quick smoke run.
"""

import argparse
import copy
import json
import tempfile
import time
from pathlib import Path

from repro.bist import BistConfig, CampaignRunner, ScenarioGrid, skew_sweep
from repro.bist.runner import CampaignExecution
from repro.store import BaselineComparator, CampaignStore
from repro.transmitter import ImpairmentConfig


class SimulatedCrash(RuntimeError):
    """Raised mid-campaign to emulate a killed process."""


def build_scenarios():
    """2 profiles x 2 converter skews = 4 scenarios."""
    return (
        ScenarioGrid()
        .add_profiles("paper-qpsk-1ghz", "uhf-8psk-400mhz")
        .add_impairment("nominal", ImpairmentConfig())
        .add_converters(skew_sweep([0.0, 2e-12]))
        .build()
    )


def build_config(fast: bool) -> BistConfig:
    if fast:
        return BistConfig(
            num_samples_fast=128,
            num_samples_slow=64,
            lms_max_iterations=25,
            num_cost_points=60,
            measure_evm_enabled=False,
        )
    return BistConfig(num_samples_fast=256, num_samples_slow=128)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1, help="process-pool size")
    parser.add_argument("--fast", action="store_true", help="reduced engine settings")
    args = parser.parse_args()

    scenarios = build_scenarios()
    config = build_config(args.fast)
    root = Path(tempfile.mkdtemp(prefix="resumable-campaign-"))
    store_root = root / "store"

    print(f"campaign: {len(scenarios)} scenarios, store at {store_root}")

    # -- 1. interrupted run ------------------------------------------------ #
    completed = 0

    def crash_after_two(outcome):
        nonlocal completed
        completed += 1
        print(f"  [interrupted run] {outcome.summary()}")
        if completed == 2:
            raise SimulatedCrash("power cut after two scenarios")

    try:
        CampaignRunner(
            bist_config=config,
            store=CampaignStore(store_root),
            progress_callback=crash_after_two,
        ).run(scenarios)
    except SimulatedCrash as exc:
        print(f"  campaign interrupted: {exc}")
    print(f"  store survived with {len(CampaignStore(store_root))} archived scenario(s)")

    # -- 2. resume --------------------------------------------------------- #
    start = time.perf_counter()
    resumed = CampaignRunner(
        bist_config=config,
        store=CampaignStore(store_root),
        max_workers=args.workers,
        progress_callback=lambda outcome: print(f"  [resume] {outcome.summary()}"),
    ).run(scenarios)
    resume_seconds = time.perf_counter() - start
    summary = resumed.summary()
    print(
        f"  resumed in {resume_seconds:.2f} s: {summary.cache_hits} cache hit(s), "
        f"{summary.cache_misses} executed"
    )

    reference = CampaignRunner(bist_config=config).run(scenarios)
    identical = [o.report.to_dict() for o in resumed.outcomes] == [
        o.report.to_dict() for o in reference.outcomes
    ]
    print(f"  resumed == uninterrupted reports: {identical}")
    assert identical

    # -- 3. golden-baseline gating ----------------------------------------- #
    baseline_path = root / "baseline.json"
    baseline_path.write_text(json.dumps(resumed.to_dict()))
    warm = CampaignRunner(bist_config=config, store=CampaignStore(store_root)).run(scenarios)
    comparator = BaselineComparator()
    gate = comparator.compare(
        CampaignExecution.from_dict(json.loads(baseline_path.read_text())), warm
    )
    print(f"  baseline gate on a fresh run: {gate.to_text().splitlines()[0]}")
    assert gate.passed

    drifted_data = copy.deepcopy(warm.to_dict())
    drifted_data["outcomes"][0]["report"]["measurements"]["occupied_bandwidth_hz"] += 5e6
    drift = comparator.compare(warm, CampaignExecution.from_dict(drifted_data))
    print(f"  baseline gate on injected OBW drift: {drift.to_text().splitlines()[0]}")
    for entry in drift.drifted:
        print(f"    {entry.summary()}")
    assert not drift.passed

    print(f"artifacts kept under {root}")


if __name__ == "__main__":
    main()
