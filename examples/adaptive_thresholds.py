"""Adaptive threshold study: minimal detectable severity per fault family.

The exhaustive fault campaign (see ``fault_coverage_study.py``) sweeps
every family x severity grid point; most of those scenarios only confirm
what a handful already imply.  This example runs the
:class:`~repro.faults.adaptive.AdaptivePlanner` instead: per family, a
bisection over the severity grid — each probe an ordinary fingerprinted
BIST scenario with a CI-based early-stopping rule — locates the minimal
detectable severity in ``O(log2(grid))`` probes and reports it with a
confidence bracket and the scenarios-vs-grid saving.

Attach ``--store DIR`` to make the search resumable: interrupting and
re-running replays the archived probes as cache hits and continues the
search bit-identically; ``--budget N`` caps fresh scenario executions for
incremental runs.

Run with:  PYTHONPATH=src python examples/adaptive_thresholds.py --workers 4
Use ``--fast`` for a quick smoke run and ``--output thresholds.json`` to
archive the threshold report + campaign summary as a JSON artifact.
"""

import argparse
import json
import os
import time

from repro.bist import BistConfig
from repro.bist.runner import ExecutionBudget
from repro.errors import BudgetExhaustedError
from repro.faults import AdaptiveConfig, AdaptivePlanner, CampaignProbeBackend, TestLimits
from repro.store import CampaignStore

FAMILIES = [
    "pa-compression",
    "iq-imbalance",
    "lo-leakage",
    "tiadc-skew",
    "filter-drift",
    "dcde-error",  # the designed-undetectable control (absorbed by the LMS)
]

#: Explicit metric bounds instead of the per-profile BIST verdict: at the
#: small acquisition sizes used here the verdict is marginal enough to flip
#: with the noise realisation, which would break the monotone-detection
#: assumption the bisection relies on.  ACPR / OBW / skew deviation are
#: stable even at smoke sizes.
LIMITS = TestLimits(
    use_bist_verdict=False,
    max_acpr_db=-35.0,
    max_occupied_bandwidth_hz=15.0e6,
    max_skew_deviation_ps=20.0,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=max(1, os.cpu_count() or 1),
        help="process-pool size (1 = serial; default: CPU count)",
    )
    parser.add_argument("--fast", action="store_true", help="coarse grid for a smoke run")
    parser.add_argument(
        "--strategy",
        choices=("bisection", "probabilistic"),
        default="bisection",
        help="threshold-search strategy",
    )
    parser.add_argument("--store", type=str, default=None, help="campaign store directory (resumable)")
    parser.add_argument("--budget", type=int, default=None, help="cap on fresh scenario executions")
    parser.add_argument("--output", type=str, default=None, help="write the JSON artifact here")
    args = parser.parse_args()

    if args.fast:
        engine = BistConfig(
            num_samples_fast=192,
            num_samples_slow=96,
            lms_max_iterations=20,
            num_cost_points=40,
            measure_evm_enabled=False,
            seed=99,
        )
        config = AdaptiveConfig(
            num_steps=4, repeats_per_round=2, max_rounds_per_probe=1, strategy=args.strategy
        )
    else:
        engine = BistConfig(
            num_samples_fast=256,
            num_samples_slow=128,
            lms_max_iterations=40,
            num_cost_points=120,
            measure_evm_enabled=False,
            seed=99,
        )
        config = AdaptiveConfig(
            num_steps=16, repeats_per_round=2, max_rounds_per_probe=2, strategy=args.strategy
        )

    backend = CampaignProbeBackend(
        ["paper-qpsk-1ghz"],
        bist_config=engine,
        limits=LIMITS,
        max_workers=args.workers,
        store=None if args.store is None else CampaignStore(args.store),
        progress_callback=lambda outcome: print(f"  done: {outcome.summary()}"),
    )
    planner = AdaptivePlanner(backend, config)
    budget = None if args.budget is None else ExecutionBudget(args.budget)

    print(
        f"adaptive {config.strategy} over {len(FAMILIES)} families on a "
        f"{config.num_steps}-step severity grid "
        f"(exhaustive grid: {len(FAMILIES) * config.num_steps * config.repeats_per_round} scenarios)"
    )
    start = time.perf_counter()
    try:
        result = planner.run(FAMILIES, budget=budget)
    except BudgetExhaustedError as exc:
        print(f"\nbudget exhausted: {exc}")
        print("re-run with the same --store to resume the search from the archive")
        return 3
    wall = time.perf_counter() - start

    summary = result.summary()
    print()
    print(result.report.to_text())
    print()
    print(summary.to_text())
    print(f"\nwall clock {wall:.1f} s, {args.workers} worker(s)")

    if args.output:
        artifact = {
            "report": result.report.to_dict(),
            "summary": summary.to_dict(),
            "config": {
                "families": FAMILIES,
                "strategy": config.strategy,
                "num_steps": config.num_steps,
                "workers": args.workers,
                "wall_seconds": wall,
            },
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle)
        print(f"threshold artifact written to {args.output}")
    return 0 if summary.num_errors == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
