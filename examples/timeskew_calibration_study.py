"""Time-skew calibration study: Fig. 5 and Fig. 6 of the paper, as a script.

Builds the Section V platform, sweeps the reconstruction-disagreement cost
function over candidate delays (the data behind Fig. 5), then runs the LMS
estimator from the paper's four starting points and prints the convergence
trajectories (the data behind Fig. 6).  Finally it compares the result
against the sine-fit baseline driven by a dedicated test tone (Table I).

Run with:  python examples/timeskew_calibration_study.py
"""

import numpy as np

from repro.adc import AdcChannel, BpTiadc, DigitallyControlledDelayElement, UniformQuantizer
from repro.calibration import LmsSkewEstimator, SineFitSkewEstimator, SkewCostFunction
from repro.sampling import BandpassBand
from repro.signals import single_tone
from repro.transmitter import HomodyneTransmitter, TransmitterConfig

CARRIER_HZ = 1.0e9
BANDWIDTH_HZ = 90.0e6
TRUE_DELAY_S = 180.0e-12


def build_converter(sample_rate: float, seed: int = 7) -> BpTiadc:
    """The paper's BP-TIADC: two 10-bit channels, 3 ps rms skew jitter."""
    return BpTiadc(
        sample_rate=sample_rate,
        dcde=DigitallyControlledDelayElement(resolution_seconds=1e-13),
        channel0=AdcChannel(quantizer=UniformQuantizer(10, 3.0), seed=seed + 1),
        channel1=AdcChannel(quantizer=UniformQuantizer(10, 3.0), seed=seed + 2),
        skew_jitter_rms_seconds=3.0e-12,
        seed=seed,
    )


def main() -> None:
    band = BandpassBand.from_centre(CARRIER_HZ, BANDWIDTH_HZ)

    # The transmitter emits its operational modulated signal - no dedicated
    # test stimulus is needed for the LMS scheme.
    transmitter = HomodyneTransmitter(TransmitterConfig.paper_default(seed=3))
    burst = transmitter.transmit_for_duration(5.5e-6)

    fast_adc = build_converter(BANDWIDTH_HZ)
    fast_adc.program_delay(TRUE_DELAY_S)
    slow_adc = fast_adc.with_sample_rate(BANDWIDTH_HZ / 2.0)
    fast = fast_adc.acquire(burst.rf_output, band, num_samples=400)
    slow = slow_adc.acquire(burst.rf_output, band, num_samples=200)

    cost = SkewCostFunction(fast, slow, num_evaluation_points=300, seed=11)
    print(f"search interval for the delay estimate: (0, {cost.upper_bound * 1e12:.0f}) ps")

    # ---- Fig. 5: the cost function has a single minimum at the true delay ----
    candidates_ps = np.linspace(120.0, 260.0, 15)
    print("\ncost function vs candidate delay (Fig. 5):")
    for candidate_ps in candidates_ps:
        print(f"  D_hat = {candidate_ps:6.1f} ps   eps = {cost(candidate_ps * 1e-12):.5f}")

    # ---- Fig. 6: LMS convergence from several starting points ---------------
    print("\nLMS convergence (Fig. 6):")
    for start_ps in (50.0, 100.0, 350.0, 400.0):
        estimator = LmsSkewEstimator(cost, initial_step_seconds=1e-12, max_iterations=60)
        result = estimator.estimate(start_ps * 1e-12)
        print(
            f"  D_hat0 = {start_ps:5.0f} ps -> D_hat = {result.estimate * 1e12:7.2f} ps in "
            f"{result.iterations} iterations "
            f"(true D = {fast.delay * 1e12:.2f} ps, error "
            f"{abs(result.estimate - fast.delay) * 1e12:.3f} ps)"
        )

    # ---- Table I flavour: the sine-fit baseline needs a known tone ----------
    print("\nsine-fit baseline (needs a dedicated known tone):")
    for fraction in (0.40, 0.46):
        tone_frequency = band.f_low + fraction * BANDWIDTH_HZ
        tone_adc = build_converter(BANDWIDTH_HZ, seed=int(100 * fraction))
        tone_adc.program_delay(TRUE_DELAY_S)
        tone_set = tone_adc.acquire(single_tone(tone_frequency, 0.9), band, num_samples=400)
        estimate = SineFitSkewEstimator(tone_frequency_hz=tone_frequency).estimate(tone_set)
        print(
            f"  omega0 = {fraction:.2f} B -> D_hat = {estimate.estimate * 1e12:7.2f} ps "
            f"(error {abs(estimate.estimate - tone_set.delay) * 1e12:.3f} ps)"
        )


if __name__ == "__main__":
    main()
