"""Streaming BIST monitor: continuous drift detection on a live envelope.

The batch campaigns measure a complete acquisition after the fact; this
example runs the *online* counterpart end to end:

* transmit a burst on a built-in profile and stream its complex envelope
  block by block through a :class:`~repro.monitor.StreamingMonitor`
  (incremental Welch spectra, per-window output power / ACPR / occupied
  bandwidth / EVM, CUSUM drift charts per metric);
* inject a known slow degradation — a gain ramp (PA aging) and a noise
  ramp (degrading SNR) — at a chosen onset and show the drift alarms,
  their latency against the onset, and the quiet clean-stream control;
* assert the streaming layer's headline invariant: the cumulative
  streamed spectrum is **bit-identical** to the batch
  :func:`~repro.dsp.welch_psd` of the full record, for any block size.

Run with:  PYTHONPATH=src python examples/streaming_monitor.py --fast
``--output monitor_demo.json`` archives the per-scenario alarm logs.
"""

import argparse
import json

import numpy as np

from repro.dsp import welch_psd
from repro.monitor import (
    DriftDetectorConfig,
    StreamingMonitor,
    apply_gain_drift,
    apply_noise_drift,
    iter_blocks,
)
from repro.signals import get_profile
from repro.transmitter import HomodyneTransmitter, TransmitterConfig

WINDOW_SAMPLES = 1024
SEGMENT_LENGTH = 256


def transmit(profile_name: str, num_symbols: int):
    profile = get_profile(profile_name)
    transmitter = HomodyneTransmitter(TransmitterConfig.from_profile(profile, seed=2014))
    return transmitter.transmit(num_symbols=num_symbols)


def monitored_session(burst, stream, block_samples: int) -> dict:
    monitor = StreamingMonitor.from_transmission(
        burst,
        window_samples=WINDOW_SAMPLES,
        segment_length=SEGMENT_LENGTH,
        detector=DriftDetectorConfig(warmup_windows=5),
    )
    monitor.ingest_stream(iter_blocks(stream, block_samples))
    return monitor.report().to_dict()


def assert_bit_identity(burst, block_samples: int) -> None:
    """Streamed cumulative spectrum == batch welch_psd, byte for byte."""
    envelope = burst.output_envelope.samples
    monitor = StreamingMonitor.from_transmission(
        burst, window_samples=WINDOW_SAMPLES, segment_length=SEGMENT_LENGTH
    )
    monitor.ingest_stream(iter_blocks(envelope, block_samples))
    streamed = monitor.cumulative_spectrum()
    segments = monitor.report().segments_accumulated
    accumulator_step = SEGMENT_LENGTH // 2  # 0.5 overlap
    covered = (segments - 1) * accumulator_step + SEGMENT_LENGTH
    batch = welch_psd(
        envelope[:covered],
        burst.output_envelope.sample_rate,
        segment_length=SEGMENT_LENGTH,
    )
    assert np.array_equal(streamed.psd, batch.psd), "streaming != batch PSD"
    print(f"  bit-identity: streamed PSD == batch PSD over {segments} segments "
          f"(block size {block_samples})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="paper-qpsk-1ghz")
    parser.add_argument("--num-symbols", type=int, default=None)
    parser.add_argument("--block-samples", type=int, default=600)
    parser.add_argument("--fast", action="store_true", help="reduced sizes for CI")
    parser.add_argument("--output", default=None, help="write the JSON logs here")
    args = parser.parse_args()
    num_symbols = args.num_symbols or (2048 if args.fast else 8192)

    burst = transmit(args.profile, num_symbols)
    envelope = burst.output_envelope.samples
    onset = int(0.4 * envelope.size)
    onset_window = onset // WINDOW_SAMPLES
    print(f"profile {args.profile}: {envelope.size} envelope samples, "
          f"drift onset at sample {onset} (window {onset_window})")

    scenarios = {
        "clean": envelope,
        "gain-drift": apply_gain_drift(envelope, onset, -3.0),
        "noise-drift": apply_noise_drift(envelope, onset, 0.02, seed=2014),
    }
    logs = {}
    for name, stream in scenarios.items():
        log = monitored_session(burst, stream, args.block_samples)
        logs[name] = log
        summary = log["summary"]
        if summary["alarms"]:
            latency = summary["first_alarm_window"] - onset_window
            verdict = (f"{summary['alarms']} alarm(s) on {summary['alarmed_metrics']}, "
                       f"first at window {summary['first_alarm_window']} "
                       f"(latency {latency} windows past onset)")
        else:
            verdict = "no drift alarms"
        print(f"  {name:12s}: {summary['windows']} windows, {verdict}")

    assert not logs["clean"]["alarms"], "clean stream must stay quiet"
    assert logs["gain-drift"]["alarms"], "gain drift must alarm"
    assert logs["noise-drift"]["alarms"], "noise drift must alarm"
    for log in (logs["gain-drift"], logs["noise-drift"]):
        assert log["summary"]["first_alarm_window"] >= onset_window

    for block_samples in (1 + args.block_samples // 3, args.block_samples):
        assert_bit_identity(burst, block_samples)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(logs, handle, indent=2)
        print(f"wrote {args.output}")
    print("streaming monitor demo: all assertions passed")


if __name__ == "__main__":
    main()
