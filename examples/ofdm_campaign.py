"""OFDM multicarrier BIST campaign quickstart.

Runs the OFDM waveform family through the full loopback BIST: a small
profile x impairment grid through :class:`~repro.bist.CampaignRunner`
(optionally in parallel) with a :class:`~repro.store.CampaignStore`
attached, then resumes the identical campaign from the store to show the
archive round trip (every scenario served as a cache hit, bit-identical
reports).

Usage::

    PYTHONPATH=src python examples/ofdm_campaign.py [--fast] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.bist import BistConfig, CampaignRunner, ScenarioGrid
from repro.faults import IqImbalanceFault
from repro.signals import get_profile, list_profiles
from repro.store import CampaignStore
from repro.transmitter import ImpairmentConfig

FULL_CONFIG = BistConfig()
FAST_CONFIG = BistConfig(
    num_samples_fast=128,
    num_samples_slow=64,
    lms_max_iterations=25,
    num_cost_points=60,
)


def build_grid() -> ScenarioGrid:
    """Both OFDM profiles x (nominal, IQ-imbalance) — a 4-scenario grid."""
    ofdm_profiles = [name for name in list_profiles() if get_profile(name).family == "ofdm"]
    return (
        ScenarioGrid()
        .add_profiles(*ofdm_profiles)
        .add_impairment("nominal", ImpairmentConfig())
        .add_impairment(
            "iq-imbalance",
            IqImbalanceFault(severity=1.0).apply_transmitter(ImpairmentConfig()),
        )
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="reduced engine settings")
    parser.add_argument("--workers", type=int, default=1, help="process-pool width")
    parser.add_argument("--store", type=Path, default=None, help="campaign store directory")
    parser.add_argument("--output", type=Path, default=None, help="write the summary JSON here")
    args = parser.parse_args()

    config = FAST_CONFIG if args.fast else FULL_CONFIG
    store_dir = args.store if args.store is not None else Path(tempfile.mkdtemp()) / "store"
    scenarios = build_grid().build()

    store = CampaignStore(store_dir)
    runner = CampaignRunner(
        bist_config=config,
        max_workers=args.workers,
        seed_policy="per-scenario",
        store=store,
    )
    execution = runner.run(scenarios)
    print(execution.summary().to_text())
    for outcome in execution.outcomes:
        if not outcome.ok:
            print(f"  {outcome.label}: ERROR ({outcome.error})")
            continue
        per_subcarrier = outcome.report.measurements.per_subcarrier_evm_percent
        worst = max(per_subcarrier) if per_subcarrier else float("nan")
        print(
            f"  {outcome.label}: EVM {outcome.report.measurements.evm_percent:.2f}% "
            f"(worst subcarrier {worst:.2f}%), flatness "
            f"{outcome.report.measurements.spectral_flatness_db:.2f} dB"
        )

    # Resume from the store: every scenario must be served from the archive.
    resumed = CampaignRunner(
        bist_config=config,
        max_workers=args.workers,
        seed_policy="per-scenario",
        store=CampaignStore(store_dir),
    ).run(scenarios)
    hits = resumed.cache_hits
    print(f"resume: {hits}/{len(scenarios)} scenarios served from the store")
    assert hits == len(scenarios), "resume must be fully cached"
    assert json.dumps(
        [outcome.report.to_dict() for outcome in resumed.outcomes], sort_keys=True
    ) == json.dumps(
        [outcome.report.to_dict() for outcome in execution.outcomes], sort_keys=True
    ), "resumed reports must be bit-identical"
    print("store round trip: resumed reports bit-identical")

    if args.output is not None:
        args.output.write_text(json.dumps(execution.summary().to_dict(), indent=2))
        print(f"wrote {args.output}")
    return 0 if all(outcome.ok for outcome in execution.outcomes) else 1


if __name__ == "__main__":
    raise SystemExit(main())
