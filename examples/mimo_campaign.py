"""2T2R channel-matrix BIST: the full loop per TX x RX combination.

Hardware bring-up guides for 2T2R front ends (PlutoSDR/AD9363-class)
qualify every transmit chain against every receive path and tabulate the
verdicts — TX1/RX1 ... TX2/RX2.  This example mirrors that procedure in
simulation on three layers of ``repro.mimo``:

1. a :class:`~repro.mimo.MimoTransmitter` transmits one simultaneous burst
   on both chains, with a saturating power amplifier injected into chain 1
   (TX2) *only* via a per-chain configuration override;
2. every combination runs the complete BIST loop — acquisition through its
   own :class:`~repro.adc.acquisition.AcquisitionSource`, LMS skew
   calibration, nonuniform reconstruction, spectrum measurements, limit
   checks — and the verdicts land in a
   :class:`~repro.mimo.ChannelMatrixReport`;
3. the recorded acquisitions are replayed through
   :class:`~repro.adc.acquisition.CapturedSamplesSource` to demonstrate the
   hardware seam: the replayed matrix is bit-identical to the simulated one.

The expected outcome: TX1 passes on every receive path, TX2 fails on every
receive path (the PA fault travels with the chain, not the receiver).

Run with:  PYTHONPATH=src python examples/mimo_campaign.py [--fast] [--output matrix.json]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.adc.acquisition import (
    CapturedSamplesSource,
    RecordingSource,
    SimulatedTiadcSource,
)
from repro.bist import BistConfig, ConverterSpec
from repro.mimo import MimoSpec, MimoTransmitter, run_channel_matrix
from repro.rf import RappAmplifier
from repro.transmitter import ImpairmentConfig, TransmitterConfig


def build_transmitter() -> MimoTransmitter:
    """A 2T2R array: chain 0 nominal, chain 1 (TX2) driven into saturation."""
    impaired = ImpairmentConfig().with_amplifier(
        RappAmplifier(gain_db=0.0, saturation_amplitude=0.75, smoothness=1.2)
    )
    return MimoTransmitter(
        base_config=TransmitterConfig.paper_default(),
        spec=MimoSpec(num_chains=2),
        chain_overrides=[None, {"impairments": impaired}],
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true", help="smaller captures for a quick smoke run"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the channel-matrix JSON here"
    )
    args = parser.parse_args()

    config = BistConfig(
        num_samples_fast=512,
        num_samples_slow=256,
        lms_max_iterations=40 if args.fast else 60,
        num_cost_points=120 if args.fast else 200,
        measure_evm_enabled=False,
    )
    rx_spec = ConverterSpec(skew_jitter_rms_seconds=1.0e-12)

    # ---------------------------------------------------------------- #
    # Simulated run, recorded at the acquisition seam
    # ---------------------------------------------------------------- #
    recorders = {}

    def recording_factory(tx_index, rx_index, spec, bandwidth):
        source = RecordingSource(SimulatedTiadcSource(spec.build(bandwidth)))
        recorders[(tx_index, rx_index)] = source
        return source

    started = time.perf_counter()
    report = run_channel_matrix(
        build_transmitter(),
        config=config,
        rx_specs=rx_spec,
        seed=7,
        source_factory=recording_factory,
    )
    elapsed = time.perf_counter() - started

    print(report.to_table())
    print()
    print(f"matrix of {len(report.entries)} full BIST runs in {elapsed:.1f} s")
    failures = report.failures()
    assert set(failures) == {"TX2/RX1", "TX2/RX2"}, (
        f"expected the TX2-only fault to fail exactly the TX2 row, got {failures}"
    )
    print(f"TX2-only fault isolated: {', '.join(failures)} FAIL, TX1 row PASS")

    # ---------------------------------------------------------------- #
    # Replay through the hardware seam: bit-identical verdicts
    # ---------------------------------------------------------------- #
    captures = {key: source.capture() for key, source in recorders.items()}

    def replay_factory(tx_index, rx_index, spec, bandwidth):
        return CapturedSamplesSource(captures[(tx_index, rx_index)])

    replayed = run_channel_matrix(
        build_transmitter(),
        config=config,
        rx_specs=rx_spec,
        seed=7,
        source_factory=replay_factory,
    )
    assert replayed.to_dict() == report.to_dict(), (
        "replaying the recorded captures must reproduce the matrix bit-for-bit"
    )
    print("replay through CapturedSamplesSource is bit-identical to the simulated run")

    if args.output:
        payload = {
            "summary": report.summary(),
            "matrix": report.to_dict(),
            "elapsed_seconds": elapsed,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
