"""Distributed BIST-service campaign: partitioned workers, chaos, warm replay.

This example demonstrates the service subsystem end to end:

* :func:`~repro.service.partition.plan_partitions` (inside the
  :class:`~repro.service.Coordinator`) splits a profile x fault grid into
  fingerprint-adjacent partitions, one worker process per partition;
* every worker writes its own store shard, so the merged result is
  bit-identical to a serial :class:`~repro.bist.runner.CampaignRunner` run
  of the same grid — this script asserts it;
* ``--kill-worker N`` SIGKILLs the N-th spawned worker after its first
  completed scenario.  The coordinator re-queues the orphaned partition
  and the retry worker serves already-flushed outcomes from the dead
  worker's shard as cache hits — the merged result is still bit-identical;
* resubmitting the same grid replays entirely from the warm store:
  100% hit rate, zero executions.

Run with:  PYTHONPATH=src python examples/service_campaign.py --fast --workers 2
Add ``--kill-worker 0`` to watch the retry path heal a dead worker, and
``--stats service_stats.json`` to archive the flow metrics.
"""

import argparse
import json
import tempfile
import time

from repro.bist import (
    BistConfig,
    CampaignRunner,
    ScenarioGrid,
    iq_imbalance_sweep,
    pa_saturation_sweep,
)
from repro.service import Coordinator
from repro.transmitter import ImpairmentConfig


def build_scenarios():
    """2 profiles x 3 transmitter states = 6 scenarios."""
    grid = (
        ScenarioGrid()
        .add_profiles("paper-qpsk-1ghz", "uhf-8psk-400mhz")
        .add_impairment("nominal", ImpairmentConfig())
        .add_impairments(pa_saturation_sweep([0.75]))
        .add_impairments(iq_imbalance_sweep([(2.5, 15.0)]))
    )
    print(f"grid: {len(grid)} scenarios")
    return grid.build()


def report_dicts(outcomes) -> list:
    return [
        (outcome.label, None if outcome.report is None else outcome.report.to_dict())
        for outcome in outcomes
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    parser.add_argument(
        "--kill-worker",
        type=int,
        default=None,
        metavar="N",
        help="SIGKILL the N-th spawned worker mid-partition (retry demo)",
    )
    parser.add_argument("--store", default=None, help="store directory (default: temp)")
    parser.add_argument("--stats", default=None, help="write ServiceStats JSON here")
    parser.add_argument("--fast", action="store_true", help="small acquisitions")
    args = parser.parse_args()

    if args.fast:
        config = BistConfig(
            num_samples_fast=128,
            num_samples_slow=64,
            lms_max_iterations=25,
            num_cost_points=60,
            measure_evm_enabled=False,
        )
    else:
        config = BistConfig(num_samples_fast=256, num_samples_slow=128, measure_evm_enabled=False)

    scenarios = build_scenarios()
    store_root = args.store or tempfile.mkdtemp(prefix="service-campaign-")

    print("running the serial reference (no store)...")
    start = time.perf_counter()
    serial = CampaignRunner(bist_config=config, seed_policy="per-scenario").run(scenarios)
    print(f"  serial: {time.perf_counter() - start:.2f} s")

    kill_note = (
        f", killing worker #{args.kill_worker} mid-partition"
        if args.kill_worker is not None
        else ""
    )
    print(f"running the service campaign ({args.workers} worker(s){kill_note})...")
    coordinator = Coordinator(
        store_root,
        num_workers=args.workers,
        bist_config=config,
        seed_policy="per-scenario",
        retry_backoff_seconds=0.05,
        chaos_kill_worker=args.kill_worker,
    )
    start = time.perf_counter()
    result = coordinator.run(scenarios)
    print(f"  service: {time.perf_counter() - start:.2f} s")

    assert report_dicts(result.execution.outcomes) == report_dicts(serial.outcomes), (
        "merged service reports must be bit-identical to the serial reference"
    )
    if args.kill_worker is not None:
        assert result.stats.retries >= 1, "the killed worker's partition must retry"
        print(
            f"  worker killed and healed: {result.stats.retries} retry(ies), "
            f"{result.stats.worker_cache_hits} flushed outcome(s) reused from its shard"
        )
    print("merged result is bit-identical to the serial reference")
    print()
    print(result.summary().to_text())
    print()
    print(result.stats.to_text())

    print()
    print("resubmitting the same grid (warm store)...")
    replay = Coordinator(
        store_root,
        num_workers=args.workers,
        bist_config=config,
        seed_policy="per-scenario",
    ).run(scenarios)
    assert report_dicts(replay.execution.outcomes) == report_dicts(serial.outcomes)
    assert replay.stats.executed == 0, "warm replay must execute nothing"
    print(
        f"  warm hit rate {replay.stats.warm_hit_rate * 100.0:.1f}%, "
        f"0 executed, {replay.stats.num_partitions} partition(s) dispatched"
    )

    if args.stats:
        payload = {
            "cold": result.stats.to_dict(),
            "warm": replay.stats.to_dict(),
            "summary": result.summary().to_dict(),
        }
        with open(args.stats, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"service stats written to {args.stats}")


if __name__ == "__main__":
    main()
