"""Fig. 5 reproduction: the Eq. (8) cost surface over candidate delays.

Acquires one in-band multitone twice (per-channel rates B = 90 MHz and
B1 = 45 MHz, true delay D = 180 ps), then sweeps the reconstruction-
disagreement cost over the whole search interval (0, m) through the
vectorised ``SkewCostFunction.sweep`` — a single batched pass over the two
precompiled reconstruction plans.  Prints the cost surface as an ASCII
profile and reports where its minimum lands relative to the true delay.

Run with:  PYTHONPATH=src python examples/cost_surface.py [--fast] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.calibration import SkewCostFunction
from repro.sampling import BandpassBand, IdealNonuniformSampler
from repro.signals import multitone_in_band

CARRIER_HZ = 1.0e9
BANDWIDTH_HZ = 90.0e6
TRUE_DELAY_S = 180.0e-12


def build_cost_function(num_cost_points: int) -> SkewCostFunction:
    """The two-rate acquisition pair of Section IV at the paper's operating point."""
    band = BandpassBand.from_centre(CARRIER_HZ, BANDWIDTH_HZ)
    signal = multitone_in_band(
        CARRIER_HZ - 7.5e6, CARRIER_HZ + 7.5e6, num_tones=9, amplitude=0.3, seed=20140324
    )
    fast = IdealNonuniformSampler(band, delay=TRUE_DELAY_S, sample_rate=BANDWIDTH_HZ).acquire(
        signal, num_samples=360
    )
    slow = IdealNonuniformSampler(
        band, delay=TRUE_DELAY_S, sample_rate=BANDWIDTH_HZ / 2.0
    ).acquire(signal, num_samples=180)
    return SkewCostFunction(fast, slow, num_evaluation_points=num_cost_points, seed=11)


def ascii_profile(candidates_ps: np.ndarray, costs: np.ndarray, width: int = 56) -> str:
    """Log-scaled bar per candidate — the deep notch at D_hat = D is Fig. 5."""
    log_costs = np.log10(costs)
    lo, hi = log_costs.min(), log_costs.max()
    span = hi - lo if hi > lo else 1.0
    lines = []
    for candidate_ps, cost, log_cost in zip(candidates_ps, costs, log_costs):
        bar = "#" * max(1, int(round(width * (log_cost - lo) / span)))
        lines.append(f"  {candidate_ps:7.1f} ps  {cost:10.3e}  {bar}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description="Eq. (8) cost surface over candidate delays")
    parser.add_argument("--fast", action="store_true", help="coarser sweep for smoke runs")
    parser.add_argument("--candidates", type=int, default=None, help="number of candidate delays")
    parser.add_argument("--points", type=int, default=None, help="cost evaluation instants N")
    parser.add_argument("--json", default=None, help="also write the surface to this JSON path")
    args = parser.parse_args()

    num_candidates = args.candidates or (21 if args.fast else 97)
    num_cost_points = args.points or (100 if args.fast else 300)

    cost = build_cost_function(num_cost_points)
    bound = cost.upper_bound
    print(f"search interval for the delay estimate: (0, {bound * 1e12:.0f}) ps")

    # Stay clear of the interval edges, where the kernel denominators vanish.
    candidates = np.linspace(0.04 * bound, 0.96 * bound, num_candidates)
    start = time.perf_counter()
    costs = cost.sweep(candidates)
    elapsed = time.perf_counter() - start
    print(
        f"swept {num_candidates} candidate delays x {num_cost_points} instants "
        f"in {elapsed * 1e3:.1f} ms (vectorised evaluate_many)\n"
    )

    candidates_ps = candidates * 1e12
    print("cost surface (log-scale bars; the notch is the Fig. 5 minimum):")
    print(ascii_profile(candidates_ps, costs))

    best = candidates[int(np.argmin(costs))]
    step = candidates[1] - candidates[0]
    print(
        f"\nminimum at D_hat = {best * 1e12:.1f} ps "
        f"(true D = {TRUE_DELAY_S * 1e12:.0f} ps, sweep step {step * 1e12:.1f} ps)"
    )
    assert abs(best - TRUE_DELAY_S) <= step, "cost minimum did not land at the true delay"

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                {
                    "candidates_ps": candidates_ps.tolist(),
                    "costs": costs.tolist(),
                    "true_delay_ps": TRUE_DELAY_S * 1e12,
                    "upper_bound_ps": bound * 1e12,
                    "sweep_seconds": elapsed,
                },
                handle,
                indent=2,
            )
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
